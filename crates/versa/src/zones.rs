//! Delay-abstracted (zone-based) exploration.
//!
//! The concrete engine ([`crate::explore`]) materializes one state per
//! scheduling quantum, so the explored-state count of a periodic task model
//! scales with the hyperperiod — the source paper's own scalability wall
//! (§7). This module is the alternative frontier strategy behind
//! [`Options::zones`]: whenever a state has exactly one prioritized
//! successor, the whole *forced* chain — up to the next branch, deadlock,
//! cycle or the edge cap — becomes a single weighted *delay edge* of the
//! zone graph. Only branch points, deadlocks and run endpoints are
//! materialized as states; everything strictly inside a run has out-degree
//! exactly one, so it can neither deadlock nor offer behaviour the endpoint
//! doesn't already dominate (DESIGN.md §17 spells the argument out).
//!
//! # Two ways to walk a forced run
//!
//! [`Options::zone_advance`] selects how the chain is followed:
//!
//! * **`Replay`** — every quantum is re-derived through the memoized step
//!   relation ([`acsr::forced_run`]). This collapses *states* but still pays
//!   per-quantum *work*: the wall-clock win is only the fraction the
//!   frontier machinery cost.
//! * **`Closed`** (the default) — forced intervals are advanced through the
//!   per-shape derivative cache of [`acsr::advance`]: each state is factored
//!   into a structural *shape* plus a numeric *time vector*, the first visit
//!   to a shape derives (and verifies) how the vector moves per quantum, and
//!   every later visit jumps straight to the end of the interval in
//!   O(#parameters) — no per-quantum re-derivation at all (DESIGN.md §18).
//!   Non-linear shapes and unlearned boundaries fall back to concrete
//!   replay, so the mode is a pure optimisation.
//!
//! A delay edge therefore stores a list of *segments*: concretely replayed
//! unit steps, and closed-form spans that keep only their derivative and
//! length and re-materialize interior states syntactically on demand.
//!
//! # Shortest traces under weighted edges
//!
//! With unit edges BFS order *is* shortest-path order; delay edges have
//! weight = their per-quantum length, so the search here is a small
//! deterministic Dijkstra over a bucket queue keyed by concrete depth. A
//! state can be discovered at a long depth first and improved later; the
//! parent pointer, edge and depth are updated while the state is still
//! unexpanded, and stale queue entries are skipped on pop. Buckets are
//! processed in depth order, so the first deadlock expanded has minimal
//! concrete depth — exactly the concrete engine's shortest-counterexample
//! guarantee, which `tests/prop_zones.rs` and `tests/prop_advance.rs` pin
//! over random task fleets.
//!
//! # Identical results, fewer states, less work
//!
//! Verdicts, shortest-trace lengths and (for exhaustive runs) deadlock
//! counts are identical to the concrete engine in *both* advance modes:
//! every zone edge *is* a concrete step sequence (closed-form spans are
//! verified against the step relation when their derivative is learned, and
//! re-checked at the span ends on every use), and every deadlock state is
//! necessarily materialized (a deadlock has out-degree 0, an interior state
//! out-degree 1). [`Exploration::trace_to`] re-expands delay edges into the
//! same concrete timeline `diagnose` would get from the concrete engine.
//! [`Stats`] describes the zone graph (materialized states, delay edges,
//! buckets); the compression is reported through the `zone.delay_steps` /
//! `zone.quanta_collapsed` / `zone.singleton_steps` counters, and the
//! closed-form cache through `zone.closed_form_advances` /
//! `zone.replay_fallbacks` / `zone.shapes_derived` and the
//! `zone.shape_cache` gauge.

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, TryLockError};
use std::time::Instant;

use acsr::{
    forced_run_closed, skeleton, zone, AdvanceCache, Env, Interned, Label, MemoConfig, RunEnd,
    RunOutcome, RunSeg, StepSession, TermId, TermStore, P,
};

use crate::explore::{
    CancelToken, Exploration, Options, StateId, Stats, ZoneAdvance, ZoneEnd, ZoneSeg,
};

/// The pure, per-state result a worker computes during bucket expansion.
/// Workers never touch the visited set or the queue; the deterministic
/// merge on the coordinating thread does, in frontier order, so thread
/// count can never change results.
enum Expansion {
    /// No prioritized successors.
    Deadlock,
    /// Exactly one prioritized successor: the maximal forced chain,
    /// `steps` concrete steps across the segments. The final segment's end
    /// is always materialized (it becomes the edge's target state).
    Forced { segs: Vec<RunSeg>, steps: u64 },
    /// Two or more prioritized successors: ordinary weight-1 edges.
    Branch(Vec<(Label, Interned)>),
}

fn expand_state(
    session: &StepSession<'_>,
    cache: Option<&AdvanceCache>,
    t: &Interned,
    cap: u64,
) -> Expansion {
    // Closed mode: the vector-domain runner ([`acsr::runner`]) walks the
    // whole chain as (shape, vector) pairs — spans and learned unit macros
    // advance arithmetically, everything else derives concretely — and
    // materializes only the run endpoint.
    if let Some(cache) = cache {
        return match forced_run_closed(session, cache, t, cap) {
            RunOutcome::Deadlock => Expansion::Deadlock,
            RunOutcome::Branch(succs) => Expansion::Branch(succs),
            RunOutcome::Run { segs, steps } => Expansion::Forced { segs, steps },
        };
    }
    match zone::forced_run(session, t, cap as usize) {
        Some(run) => {
            let steps = run.steps.len() as u64;
            Expansion::Forced {
                segs: run
                    .steps
                    .into_iter()
                    .map(|(l, t)| RunSeg::Unit(l, t))
                    .collect(),
                steps,
            }
        }
        // Not forced: re-derive the successor list (a memo hit right after
        // the probe inside `forced_run`) to distinguish deadlock from branch.
        None => {
            let succs = session.prioritized_steps(t);
            if succs.is_empty() {
                Expansion::Deadlock
            } else {
                Expansion::Branch(succs)
            }
        }
    }
}

/// Convert an engine-side segment end into the term-level representation
/// stored on the final [`Exploration`] (virtual ends stay virtual — they
/// rebuild on demand during trace reconstruction).
fn zone_end(end: RunEnd) -> ZoneEnd {
    match end {
        RunEnd::Real(t) => ZoneEnd::Real(t.into_term()),
        RunEnd::Virt { template, values } => ZoneEnd::Virt {
            template: template.into_term(),
            values,
        },
    }
}

/// One worker's chunk of a bucket, expanded in frontier order.
fn expand_chunk(
    session: &StepSession<'_>,
    cache: Option<&AdvanceCache>,
    states: &[Interned],
    ids: &[StateId],
    cap: u64,
    cancel: &CancelToken,
) -> Vec<Expansion> {
    let mut out = Vec::with_capacity(ids.len());
    for id in ids {
        if cancel.is_cancelled() {
            break;
        }
        out.push(expand_state(session, cache, &states[id.index()], cap));
    }
    out
}

/// The growing zone graph plus the Dijkstra bookkeeping.
struct ZoneGraph {
    states: Vec<Interned>,
    /// Best known concrete depth per state.
    depths: Vec<u64>,
    /// Expanded states are settled: their depth is final.
    expanded: Vec<bool>,
    parents: Vec<Option<(StateId, Label)>>,
    /// Segments of the delay edge into each state (`None` for unit edges —
    /// exactly the concrete engine's representation).
    edges: Vec<Option<Vec<RunSeg>>>,
    visited: HashMap<TermId, StateId>,
}

enum EdgeOutcome {
    Recorded,
    Truncated,
}

impl ZoneGraph {
    fn new(root: Interned) -> ZoneGraph {
        let mut visited = HashMap::new();
        visited.insert(root.id(), StateId(0));
        ZoneGraph {
            states: vec![root],
            depths: vec![0],
            expanded: vec![false],
            parents: vec![None],
            edges: vec![None],
            visited,
        }
    }

    /// Record one delay edge (total weight 1 is an ordinary unit edge) out
    /// of `from`, relaxing the target's depth Dijkstra-style.
    fn record_edge(
        &mut self,
        from: StateId,
        segs: Vec<RunSeg>,
        queue: &mut BTreeMap<u64, Vec<StateId>>,
        stats: &mut Stats,
        id_limit: usize,
        max_states: usize,
    ) -> EdgeOutcome {
        let last = segs.last().expect("edges are non-empty");
        let last_label = last.label().clone();
        let target = last
            .end()
            .interned()
            .cloned()
            .expect("the final segment of an edge is always materialized");
        let weight: u64 = segs.iter().map(RunSeg::weight).sum();
        let depth = self.depths[from.index()] + weight;
        let timeline = if weight >= 2 { Some(segs) } else { None };
        stats.transitions += 1;
        match self.visited.entry(target.id()) {
            Entry::Occupied(e) => {
                let sid = *e.get();
                stats.dedup_hits += 1;
                // Relax: a shorter concrete route to a still-unexpanded
                // state replaces its parent edge. Expanded states are
                // settled — edge weights are ≥ 1, so nothing popped from an
                // earlier bucket can ever improve.
                if !self.expanded[sid.index()] && depth < self.depths[sid.index()] {
                    self.depths[sid.index()] = depth;
                    self.parents[sid.index()] = Some((from, last_label));
                    self.edges[sid.index()] = timeline;
                    queue.entry(depth).or_default().push(sid);
                }
                EdgeOutcome::Recorded
            }
            Entry::Vacant(v) => {
                if self.states.len() >= id_limit || self.states.len() >= max_states {
                    return EdgeOutcome::Truncated;
                }
                let sid = StateId(self.states.len() as u32);
                v.insert(sid);
                self.states.push(target);
                self.depths.push(depth);
                self.expanded.push(false);
                self.parents.push(Some((from, last_label)));
                self.edges.push(timeline);
                queue.entry(depth).or_default().push(sid);
                EdgeOutcome::Recorded
            }
        }
    }
}

/// The zone-mode engine behind [`crate::explore::explore`] (dispatched to
/// when [`Options::zones`] is set and no LTS is requested).
pub(crate) fn explore_zones(
    env: &Env,
    initial: &P,
    opts: &Options,
    id_limit: usize,
) -> Exploration {
    let start = Instant::now();
    let id_limit = id_limit.max(1);
    // Per-edge step cap: bounds the work between two cancellation polls and
    // the size of any one edge's stored timeline, and doubles as the cycle
    // horizon for closed idle loops. Longer forced runs simply become
    // several chained edges, so the value never changes verdicts.
    let cap = opts.zone_cap.max(1) as u64;

    // Cross-run artifact store, exactly as in the concrete engine — the key
    // commits to the zones flag (and, in zone mode, the cap and advance
    // strategy), so distinct configurations can never answer each other's
    // queries even though replayed artifacts would agree.
    let cas_key = crate::cache::key_for(env, initial, opts, id_limit);
    if let (Some(key), Some(artifacts)) = (&cas_key, &opts.cas) {
        match artifacts.get(key) {
            cas::Lookup::Hit(payload) => {
                let replayed = crate::cache::decode(&payload)
                    .and_then(|a| crate::cache::replay(env, initial, &a, opts, start));
                match replayed {
                    Some(ex) => {
                        opts.obs.counter("cas.hits").inc();
                        return ex;
                    }
                    None => opts.obs.counter("cas.invalidations").inc(),
                }
            }
            cas::Lookup::Miss => opts.obs.counter("cas.misses").inc(),
            cas::Lookup::Invalid => opts.obs.counter("cas.invalidations").inc(),
        }
    }

    let run_span = opts.obs.span("explore");
    run_span.set("zones", 1);
    let dedup_counter = opts.obs.counter("explore.dedup_hits");
    let states_gauge = opts.obs.gauge("explore.states");
    let threads = opts.threads.max(1);
    let store = opts
        .store
        .clone()
        .unwrap_or_else(|| Arc::new(TermStore::new()));
    let memo_config = if opts.memo {
        MemoConfig::with_capacity(opts.memo_capacity)
    } else {
        MemoConfig::disabled()
    };
    let session = StepSession::new(env, store.clone(), memo_config);
    let advance_cache: Option<AdvanceCache> =
        (opts.zone_advance == ZoneAdvance::Closed).then(AdvanceCache::new);

    let mut stats = Stats::default();
    let mut deadlocks: Vec<StateId> = Vec::new();
    let mut truncated = false;
    let mut cancelled = false;
    let mut delay_steps = 0u64;
    let mut quanta_collapsed = 0u64;
    let mut singleton_steps = 0u64;

    let mut g = ZoneGraph::new(session.intern(initial));
    let mut queue: BTreeMap<u64, Vec<StateId>> = BTreeMap::new();
    queue.insert(0, vec![StateId(0)]);

    'search: while let Some((depth, bucket)) = queue.pop_first() {
        if opts.cancel.is_cancelled() {
            cancelled = true;
            break;
        }
        // Settle the bucket: drop entries that were improved to a shallower
        // depth (re-queued there) or already expanded (duplicate pushes).
        let mut frontier: Vec<StateId> = Vec::with_capacity(bucket.len());
        for id in bucket {
            if !g.expanded[id.index()] && g.depths[id.index()] == depth {
                g.expanded[id.index()] = true;
                frontier.push(id);
            }
        }
        if frontier.is_empty() {
            continue;
        }
        stats.levels += 1;
        stats.peak_frontier = stats.peak_frontier.max(frontier.len());
        let level_span = run_span.child("explore.level");

        // Phase 1 — expansion. Per-state work is pure (successor lists and
        // forced runs from the shared memoized session; the advance cache
        // converges to the same derivatives under any interleaving), so wide
        // buckets fan out over scoped workers without any result-order
        // dependence.
        let expansions: Vec<Expansion> = if threads > 1 && frontier.len() >= 4 * threads {
            let chunk = frontier.len().div_ceil(threads);
            let collected: Mutex<Vec<(usize, Vec<Expansion>)>> =
                Mutex::new(Vec::with_capacity(threads));
            std::thread::scope(|s| {
                for (ci, ids) in frontier.chunks(chunk).enumerate() {
                    let collected = &collected;
                    let states = &g.states[..];
                    let session = &session;
                    let cache = advance_cache.as_ref();
                    let cancel = &opts.cancel;
                    s.spawn(move || {
                        let out = expand_chunk(session, cache, states, ids, cap, cancel);
                        let mut guard = match collected.try_lock() {
                            Ok(guard) => guard,
                            Err(TryLockError::WouldBlock) => {
                                collected.lock().expect("expansion lock poisoned")
                            }
                            Err(TryLockError::Poisoned(_)) => panic!("expansion lock poisoned"),
                        };
                        guard.push((ci, out));
                    });
                }
            });
            let mut chunks = collected.into_inner().expect("expansion lock poisoned");
            chunks.sort_unstable_by_key(|(ci, _)| *ci);
            chunks.into_iter().flat_map(|(_, out)| out).collect()
        } else {
            expand_chunk(
                &session,
                advance_cache.as_ref(),
                &g.states,
                &frontier,
                cap,
                &opts.cancel,
            )
        };

        // A token that fired mid-expansion leaves chunks cut short; discard
        // the bucket wholesale rather than merge a partial view.
        if opts.cancel.is_cancelled() {
            cancelled = true;
            level_span.end();
            break;
        }

        // Phase 2 — deterministic merge, in frontier order.
        let before_states = g.states.len();
        let before_transitions = stats.transitions;
        for (id, expansion) in frontier.iter().zip(expansions) {
            match expansion {
                Expansion::Deadlock => {
                    deadlocks.push(*id);
                    stats.deadlocks += 1;
                    if opts.stop_at_first_deadlock {
                        level_span.set("level", stats.levels as i64);
                        level_span
                            .set("transitions", (stats.transitions - before_transitions) as i64);
                        level_span.end();
                        break 'search;
                    }
                }
                Expansion::Forced { segs, steps } => {
                    if steps >= 2 {
                        delay_steps += 1;
                        quanta_collapsed += steps - 1;
                    } else {
                        singleton_steps += 1;
                    }
                    if let EdgeOutcome::Truncated = g.record_edge(
                        *id,
                        segs,
                        &mut queue,
                        &mut stats,
                        id_limit,
                        opts.max_states,
                    ) {
                        truncated = true;
                        level_span.end();
                        break 'search;
                    }
                }
                Expansion::Branch(succs) => {
                    singleton_steps += 1;
                    for (label, target) in succs {
                        if let EdgeOutcome::Truncated = g.record_edge(
                            *id,
                            vec![RunSeg::Unit(label, target)],
                            &mut queue,
                            &mut stats,
                            id_limit,
                            opts.max_states,
                        ) {
                            truncated = true;
                            level_span.end();
                            break 'search;
                        }
                    }
                }
            }
        }
        level_span.set("level", stats.levels as i64);
        level_span.set("frontier", frontier.len() as i64);
        level_span.set("discovered", (g.states.len() - before_states) as i64);
        level_span.set("transitions", (stats.transitions - before_transitions) as i64);
        level_span.set("states_total", g.states.len() as i64);
        level_span.end();
        states_gauge.set(g.states.len() as i64);
        opts.obs.progress(
            g.states.len() as u64,
            stats.levels as u64,
            queue.values().map(Vec::len).sum::<usize>() as u64,
        );
    }

    stats.states = g.states.len();
    let memo = session.memo_stats();
    stats.memo_hits = memo.hits;
    stats.memo_misses = memo.misses;
    stats.memo_evictions = memo.evictions;
    stats.unique_subterms = store.len();
    stats.duration = start.elapsed();
    run_span.set("states", stats.states as i64);
    run_span.set("transitions", stats.transitions as i64);
    run_span.set("levels", stats.levels as i64);
    run_span.set("peak_frontier", stats.peak_frontier as i64);
    run_span.set("deadlocks", stats.deadlocks as i64);
    run_span.set("truncated", i64::from(truncated));
    if cancelled {
        run_span.set("cancelled", 1);
    }
    dedup_counter.add(stats.dedup_hits as u64);
    opts.obs.counter("zone.delay_steps").add(delay_steps);
    opts.obs.counter("zone.quanta_collapsed").add(quanta_collapsed);
    opts.obs.counter("zone.singleton_steps").add(singleton_steps);
    if let Some(cache) = &advance_cache {
        let a = cache.stats();
        opts.obs
            .counter("zone.closed_form_advances")
            .add(a.closed_form_advances);
        opts.obs
            .counter("zone.replay_fallbacks")
            .add(a.replay_fallbacks);
        opts.obs.counter("zone.shapes_derived").add(a.shapes_derived);
        opts.obs.gauge("zone.shape_cache").set(a.shape_cache as i64);
    }
    opts.obs.counter("step.memo_hits").add(stats.memo_hits);
    opts.obs.counter("step.memo_misses").add(stats.memo_misses);
    opts.obs
        .counter("step.memo_evictions")
        .add(stats.memo_evictions);
    opts.obs
        .gauge("term.unique_subterms")
        .set(stats.unique_subterms as i64);
    run_span.end();

    // Deposit for the next process. The artifact layout is shared with the
    // concrete engine and records a *per-quantum* deadlock skeleton, so the
    // first-deadlock zone path is re-expanded into its concrete chain here
    // (`cache::encode` indexes each step in prioritized-successor order —
    // a notion that only exists quantum by quantum). Closed-form spans are
    // materialized syntactically, the same way `trace_to` does it.
    if let (Some(key), Some(artifacts)) = (&cas_key, &opts.cas) {
        if !cancelled {
            let (chain_states, chain_parents, chain_deadlocks) = match deadlocks.first() {
                None => (vec![g.states[0].clone()], vec![None], Vec::new()),
                Some(&dead) => {
                    let mut path: Vec<StateId> = Vec::new();
                    let mut cur = dead;
                    while let Some((p, _)) = &g.parents[cur.index()] {
                        path.push(cur);
                        cur = *p;
                    }
                    path.reverse();
                    let mut cs: Vec<Interned> = vec![g.states[0].clone()];
                    let mut cp: Vec<Option<(StateId, Label)>> = vec![None];
                    for to in path {
                        match &g.edges[to.index()] {
                            Some(segs) => {
                                for seg in segs {
                                    match seg {
                                        RunSeg::Unit(label, t) => {
                                            let prev = StateId((cs.len() - 1) as u32);
                                            cp.push(Some((prev, label.clone())));
                                            cs.push(t.clone());
                                        }
                                        RunSeg::Span {
                                            label,
                                            delta,
                                            len,
                                            end,
                                        } => {
                                            let source =
                                                cs.last().expect("chain starts rooted").clone();
                                            let f = skeleton::factor(source.term());
                                            for k in 1..*len {
                                                let v: Vec<i64> = f
                                                    .values
                                                    .iter()
                                                    .zip(delta.iter())
                                                    .map(|(a, d)| a + d * k as i64)
                                                    .collect();
                                                let p = skeleton::rebuild(source.term(), &v)
                                                    .expect("span vectors stay within the shape");
                                                let prev = StateId((cs.len() - 1) as u32);
                                                cp.push(Some((prev, label.clone())));
                                                cs.push(session.intern(&p));
                                            }
                                            let prev = StateId((cs.len() - 1) as u32);
                                            cp.push(Some((prev, label.clone())));
                                            cs.push(end.materialize(&session));
                                        }
                                        RunSeg::Jump { label, end } => {
                                            let prev = StateId((cs.len() - 1) as u32);
                                            cp.push(Some((prev, label.clone())));
                                            cs.push(end.materialize(&session));
                                        }
                                    }
                                }
                            }
                            None => {
                                let label = g.parents[to.index()]
                                    .as_ref()
                                    .expect("on path")
                                    .1
                                    .clone();
                                let prev = StateId((cs.len() - 1) as u32);
                                cp.push(Some((prev, label)));
                                cs.push(g.states[to.index()].clone());
                            }
                        }
                    }
                    let d = StateId((cs.len() - 1) as u32);
                    (cs, cp, vec![d])
                }
            };
            let payload = crate::cache::encode(
                env,
                &session,
                &chain_states,
                &chain_parents,
                &chain_deadlocks,
                &stats,
                truncated,
            );
            if let Some(payload) = payload {
                if matches!(artifacts.put(key, &payload), Ok(true)) {
                    opts.obs.counter("cas.writes").inc();
                }
            }
        }
    }

    Exploration {
        states: g.states.into_iter().map(Interned::into_term).collect(),
        parents: g.parents,
        zone_edges: g
            .edges
            .into_iter()
            .map(|e| {
                e.map(|segs| {
                    segs.into_iter()
                        .map(|s| match s {
                            RunSeg::Unit(l, t) => ZoneSeg::Unit(l, t.into_term()),
                            RunSeg::Span {
                                label,
                                delta,
                                len,
                                end,
                            } => ZoneSeg::Span {
                                label,
                                delta,
                                len,
                                end: zone_end(end),
                            },
                            RunSeg::Jump { label, end } => ZoneSeg::Jump {
                                label,
                                end: zone_end(end),
                            },
                        })
                        .collect()
                })
            })
            .collect(),
        deadlocks,
        lts: None,
        stats,
        truncated,
        cancelled,
    }
}

#[cfg(test)]
mod tests {
    use crate::explore::{explore, Options, StateId, ZoneAdvance};
    use acsr::prelude::*;

    fn cpu() -> Res {
        Res::new("cpu")
    }

    /// A straight forced chain of `n` quanta ending in NIL.
    fn chain(n: usize) -> P {
        let mut p = nil();
        for _ in 0..n {
            p = act([(cpu(), 1)], p);
        }
        p
    }

    fn assert_agree(env: &Env, p: &P, opts: &Options) {
        let concrete = explore(env, p, opts);
        for advance in [ZoneAdvance::Closed, ZoneAdvance::Replay] {
            let zoned = explore(
                env,
                p,
                &opts.clone().with_zones(true).with_zone_advance(advance),
            );
            assert_eq!(concrete.deadlock_free(), zoned.deadlock_free());
            assert_eq!(concrete.deadlocks.len(), zoned.deadlocks.len());
            assert_eq!(
                concrete.first_deadlock_trace().map(|t| t.len()),
                zoned.first_deadlock_trace().map(|t| t.len())
            );
            assert_eq!(
                concrete.first_deadlock_trace().map(|t| t.elapsed_quanta()),
                zoned.first_deadlock_trace().map(|t| t.elapsed_quanta())
            );
        }
    }

    #[test]
    fn long_forced_chain_collapses_to_two_states() {
        let env = Env::new();
        let p = chain(100);
        let concrete = explore(&env, &p, &Options::default());
        let zoned = explore(&env, &p, &Options::default().with_zones(true));
        assert_eq!(concrete.num_states(), 101);
        assert_eq!(zoned.num_states(), 2); // entry + the deadlocked endpoint
        assert_eq!(zoned.deadlocks.len(), 1);
        // The trace re-expands to the full 100-quantum concrete timeline.
        let t = zoned.first_deadlock_trace().unwrap();
        assert_eq!(t.len(), 100);
        assert_eq!(t.elapsed_quanta(), 100);
        assert_eq!(zoned.depth_of(zoned.deadlocks[0]), 100);
        // Every expanded trace state is a real concrete state: replaying the
        // labels through the step relation reproduces it.
        let concrete_trace = concrete.first_deadlock_trace().unwrap();
        for i in 0..t.len() {
            assert_eq!(t.state_after(i), concrete_trace.state_after(i));
        }
    }

    #[test]
    fn closed_and_replay_modes_agree_step_for_step() {
        // A branch into two instances of the *same* shape at different time
        // vectors: the second chain is advanced closed-form off the first
        // chain's learned derivative, so this exercises the span path end to
        // end — including trace materialization from (delta, len) alone.
        let env = Env::new();
        let p = choice([
            act([(Res::new("bus"), 1)], chain(30)),
            act([(cpu(), 1)], chain(20)),
        ]);
        let concrete = explore(&env, &p, &Options::default());
        let closed = explore(&env, &p, &Options::default().with_zones(true));
        let replay = explore(
            &env,
            &p,
            &Options::default()
                .with_zones(true)
                .with_zone_advance(ZoneAdvance::Replay),
        );
        assert_eq!(closed.num_states(), replay.num_states());
        assert_eq!(closed.deadlocks.len(), replay.deadlocks.len());
        for i in 0..closed.num_states() {
            assert_eq!(
                closed.state(StateId(i as u32)),
                replay.state(StateId(i as u32))
            );
        }
        let tc = closed.first_deadlock_trace().unwrap();
        let tr = replay.first_deadlock_trace().unwrap();
        let tk = concrete.first_deadlock_trace().unwrap();
        assert_eq!(tc.len(), tr.len());
        assert_eq!(tc.len(), tk.len());
        for i in 0..tc.len() {
            assert_eq!(tc.state_after(i), tr.state_after(i));
            assert_eq!(tc.state_after(i), tk.state_after(i));
        }
    }

    #[test]
    fn closed_mode_emits_the_advance_cache_counters() {
        let env = Env::new();
        // Same shape twice at different vectors: one derivation, then a
        // closed-form advance; the chain end is always a replay fallback.
        let p = choice([
            act([(Res::new("bus"), 1)], chain(30)),
            act([(cpu(), 1)], chain(20)),
        ]);
        let rec = obs::Recorder::enabled();
        let _ = explore(
            &env,
            &p,
            &Options::default().with_zones(true).with_obs(rec.clone()),
        );
        let run = rec.finish();
        let counter = |name: &str| {
            run.counters
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert!(counter("zone.closed_form_advances") >= 1);
        assert!(counter("zone.replay_fallbacks") >= 1);
        assert!(counter("zone.shapes_derived") >= 1);
        let gauge = run
            .gauges
            .iter()
            .find(|(k, _, _)| k == "zone.shape_cache")
            .map(|(_, v, _)| *v)
            .unwrap_or(0);
        assert!(gauge >= 1);

        // Replay mode reports none of them.
        let rec2 = obs::Recorder::enabled();
        let _ = explore(
            &env,
            &p,
            &Options::default()
                .with_zones(true)
                .with_zone_advance(ZoneAdvance::Replay)
                .with_obs(rec2.clone()),
        );
        let run2 = rec2.finish();
        assert!(!run2
            .counters
            .iter()
            .any(|(k, _)| k == "zone.closed_form_advances"));
    }

    #[test]
    fn zone_cap_changes_never_change_verdicts() {
        let env = Env::new();
        let p = choice([
            chain(3),
            act([(Res::new("bus"), 1)], chain(7)),
        ]);
        let baseline = explore(&env, &p, &Options::default().with_zones(true));
        for cap in [1usize, 2, 3, 7] {
            for advance in [ZoneAdvance::Closed, ZoneAdvance::Replay] {
                let capped = explore(
                    &env,
                    &p,
                    &Options::default()
                        .with_zones(true)
                        .with_zone_cap(cap)
                        .with_zone_advance(advance),
                );
                assert_eq!(capped.deadlock_free(), baseline.deadlock_free());
                assert_eq!(capped.deadlocks.len(), baseline.deadlocks.len());
                assert_eq!(
                    capped.first_deadlock_trace().map(|t| t.len()),
                    baseline.first_deadlock_trace().map(|t| t.len())
                );
            }
        }
    }

    #[test]
    fn verdicts_and_trace_lengths_agree_on_small_shapes() {
        let env = Env::new();
        // Branchy: two paths of different length to a deadlock.
        let p = choice([
            chain(3),
            act([(Res::new("bus"), 1)], chain(7)),
        ]);
        assert_agree(&env, &p, &Options::default());
        assert_agree(&env, &p, &Options::verdict());

        // Deadlock-free idle loop.
        let mut env2 = Env::new();
        let d = env2.declare("Idle", 0);
        env2.set_body(d, act([] as [(Res, i32); 0], invoke(d, [])));
        assert_agree(&env2, &invoke(d, []), &Options::default());

        // Initially deadlocked.
        assert_agree(&env, &nil(), &Options::default());

        // Event mid-chain (instantaneous steps inside the forced run).
        let done = Symbol::new("done");
        let p = act([(cpu(), 1)], evt_send(done, 1, chain(4)));
        assert_agree(&env, &p, &Options::default());
    }

    #[test]
    fn relaxation_finds_the_shorter_route_through_a_shared_state() {
        let env = Env::new();
        // Two routes to the same 5-quantum tail: a 1-step hop and a forced
        // 9-quantum detour. The detour's endpoint is discovered first in
        // bucket order only if pushed at its long depth — the relaxation
        // must settle it at depth 1 before expansion.
        let tail = chain(5);
        let p = choice([
            act([(Res::new("bus"), 1)], tail.clone()),
            act([(cpu(), 1)], {
                let mut detour = tail;
                for _ in 0..8 {
                    detour = act([(cpu(), 1)], detour);
                }
                detour
            }),
        ]);
        assert_agree(&env, &p, &Options::default());
        let zoned = explore(&env, &p, &Options::default().with_zones(true));
        assert_eq!(zoned.first_deadlock_trace().unwrap().len(), 6);
    }

    #[test]
    fn threads_do_not_change_zone_results() {
        let mut env = Env::new();
        // A counter fan: from the root, 16 sibling chains of different
        // lengths, wide enough to trigger parallel bucket expansion.
        let alts: Vec<P> = (0..16)
            .map(|i| act([(Res::new(&format!("r{i}")), 1)], chain(i + 1)))
            .collect();
        let p = choice(alts);
        let d = env.declare("Root", 0);
        env.set_body(d, p);
        let p = invoke(d, []);
        let base = explore(&env, &p, &Options::default().with_zones(true));
        let par4 = explore(
            &env,
            &p,
            &Options::default().with_zones(true).with_threads(4),
        );
        assert_eq!(base.num_states(), par4.num_states());
        assert_eq!(base.deadlocks, par4.deadlocks);
        assert_eq!(base.stats.transitions, par4.stats.transitions);
        assert_eq!(base.stats.dedup_hits, par4.stats.dedup_hits);
        for i in 0..base.num_states() {
            assert_eq!(base.state(StateId(i as u32)), par4.state(StateId(i as u32)));
        }
        assert_eq!(
            base.first_deadlock_trace().map(|t| t.len()),
            par4.first_deadlock_trace().map(|t| t.len())
        );
        assert_agree(&env, &p, &Options::default());
    }

    #[test]
    fn zone_counters_report_the_compression() {
        let env = Env::new();
        let p = chain(50);
        let rec = obs::Recorder::enabled();
        let ex = explore(
            &env,
            &p,
            &Options::default().with_zones(true).with_obs(rec.clone()),
        );
        assert_eq!(ex.num_states(), 2);
        let run = rec.finish();
        let counter = |name: &str| {
            run.counters
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(counter("zone.delay_steps"), 1);
        assert_eq!(counter("zone.quanta_collapsed"), 49);
        assert_eq!(counter("zone.singleton_steps"), 0);
    }

    #[test]
    fn max_states_still_truncates_in_zone_mode() {
        let mut env = Env::new();
        // A fresh state per step via a parameterized counter — but branch at
        // every state so nothing is forced and the zone graph is as large as
        // the concrete one.
        let d = env.declare("Counter", 1);
        env.set_body(
            d,
            choice([
                act([(cpu(), 1)], invoke(d, [Expr::p(0).add(Expr::c(1))])),
                act([(Res::new("bus"), 1)], invoke(d, [Expr::p(0).add(Expr::c(2))])),
            ]),
        );
        let p = invoke(d, [Expr::c(0)]);
        let ex = explore(
            &env,
            &p,
            &Options::default().with_zones(true).with_max_states(40),
        );
        assert!(ex.truncated);
        assert!(!ex.deadlock_free());
    }

    #[test]
    fn cancelled_zone_runs_are_partial_and_never_free() {
        let mut env = Env::new();
        let d = env.declare("Idle", 0);
        env.set_body(d, act([] as [(Res, i32); 0], invoke(d, [])));
        let token = crate::explore::CancelToken::new();
        token.cancel();
        let ex = explore(
            &env,
            &invoke(d, []),
            &Options::default().with_zones(true).with_cancel(token),
        );
        assert!(ex.cancelled);
        assert!(!ex.deadlock_free());
    }

    #[test]
    fn collect_lts_falls_back_to_the_concrete_engine() {
        let env = Env::new();
        let p = chain(10);
        let opts = Options {
            collect_lts: true,
            zones: true,
            ..Options::default()
        };
        let ex = explore(&env, &p, &opts);
        // The concrete engine ran: all 11 states materialized, LTS present.
        assert_eq!(ex.num_states(), 11);
        let lts = ex.lts.as_ref().unwrap();
        assert_eq!(lts.transitions.len(), 11);
    }

    #[test]
    fn zone_artifacts_round_trip_through_the_store_and_never_cross_modes() {
        let env = Env::new();
        let p = chain(20);
        let dir = std::env::temp_dir().join(format!(
            "versa-zones-cas-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = std::sync::Arc::new(cas::CasStore::open(&dir, cas::Mode::ReadWrite).unwrap());
        let zopts = Options::default().with_zones(true).with_cas(store.clone());
        let rec1 = obs::Recorder::enabled();
        let cold = explore(&env, &p, &zopts.clone().with_obs(rec1.clone()));
        let cold_counters = rec1.finish().counters;
        assert!(cold_counters.iter().any(|(k, v)| k == "cas.writes" && *v == 1));
        let rec2 = obs::Recorder::enabled();
        let warm = explore(&env, &p, &zopts.clone().with_obs(rec2.clone()));
        let warm_counters = rec2.finish().counters;
        assert!(warm_counters.iter().any(|(k, v)| k == "cas.hits" && *v == 1));
        assert_eq!(cold.deadlock_free(), warm.deadlock_free());
        assert_eq!(
            cold.first_deadlock_trace().map(|t| t.len()),
            warm.first_deadlock_trace().map(|t| t.len())
        );
        assert_eq!(cold.stats.states, warm.stats.states);
        // The two advance strategies never answer each other's queries: the
        // key commits to the strategy, so a replay-mode run over the same
        // model must MISS even with a closed-mode artifact deposited.
        let rec4 = obs::Recorder::enabled();
        let _ = explore(
            &env,
            &p,
            &zopts
                .clone()
                .with_zone_advance(crate::explore::ZoneAdvance::Replay)
                .with_obs(rec4.clone()),
        );
        let c4 = rec4.finish().counters;
        assert!(c4.iter().any(|(k, v)| k == "cas.misses" && *v == 1));
        // A concrete run over the same model must MISS: the key commits to
        // the zones flag (a zone artifact's stats describe the zone graph).
        let rec3 = obs::Recorder::enabled();
        let concrete = explore(
            &env,
            &p,
            &Options::default().with_cas(store).with_obs(rec3.clone()),
        );
        let c = rec3.finish().counters;
        assert!(c.iter().any(|(k, v)| k == "cas.misses" && *v == 1));
        assert_eq!(concrete.num_states(), 21);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
