//! Labelled transition system export.
//!
//! When [`Options::collect_lts`](crate::Options) is set, the explorer records
//! the full prioritized transition relation. The [`Lts`] can be queried
//! directly or rendered to Graphviz `dot` for inspection — handy when
//! validating the translation of a single AADL thread against the figures of
//! the paper.

use acsr::{Env, Label};

use crate::explore::StateId;

/// The prioritized labelled transition system of an explored model.
///
/// # Examples
///
/// ```
/// use acsr::prelude::*;
/// use versa::{explore, Options};
///
/// let env = Env::new();
/// let p = act([(Res::new("cpu"), 1)], nil());
/// let opts = Options { collect_lts: true, ..Options::default() };
/// let lts = explore(&env, &p, &opts).lts.unwrap();
/// assert_eq!(lts.num_states(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Lts {
    /// The initial state.
    pub initial: StateId,
    /// Outgoing transitions, indexed by state.
    pub transitions: Vec<Vec<(Label, StateId)>>,
}

impl Lts {
    /// Number of states.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// let opts = Options { collect_lts: true, ..Options::default() };
    /// let lts = explore(&Env::new(), &nil(), &opts).lts.unwrap();
    /// assert_eq!(lts.num_states(), 1);
    /// ```
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// Total number of transitions.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// let env = Env::new();
    /// let p = act([(Res::new("cpu"), 1)], nil());
    /// let opts = Options { collect_lts: true, ..Options::default() };
    /// let lts = explore(&env, &p, &opts).lts.unwrap();
    /// assert_eq!(lts.num_transitions(), 1);
    /// ```
    pub fn num_transitions(&self) -> usize {
        self.transitions.iter().map(Vec::len).sum()
    }

    /// Outgoing transitions of `s`.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// let env = Env::new();
    /// let p = act([(Res::new("cpu"), 1)], nil());
    /// let opts = Options { collect_lts: true, ..Options::default() };
    /// let ex = explore(&env, &p, &opts);
    /// let initial = ex.initial();
    /// let lts = ex.lts.unwrap();
    /// assert_eq!(lts.succs(initial).len(), 1);
    /// ```
    pub fn succs(&self, s: StateId) -> &[(Label, StateId)] {
        &self.transitions[s.index()]
    }

    /// States with no outgoing transitions.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// let env = Env::new();
    /// let p = act([(Res::new("cpu"), 1)], nil());
    /// let opts = Options { collect_lts: true, ..Options::default() };
    /// let lts = explore(&env, &p, &opts).lts.unwrap();
    /// assert_eq!(lts.deadlocks().count(), 1);
    /// ```
    pub fn deadlocks(&self) -> impl Iterator<Item = StateId> + '_ {
        self.transitions
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_empty())
            .map(|(i, _)| StateId(i as u32))
    }

    /// True if `target` is reachable from the initial state.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// let env = Env::new();
    /// let p = act([(Res::new("cpu"), 1)], nil());
    /// let opts = Options { collect_lts: true, ..Options::default() };
    /// let lts = explore(&env, &p, &opts).lts.unwrap();
    /// // Every explored state is reachable by construction.
    /// let dead = lts.deadlocks().next().unwrap();
    /// assert!(lts.reachable(dead));
    /// ```
    pub fn reachable(&self, target: StateId) -> bool {
        let mut seen = vec![false; self.num_states()];
        let mut stack = vec![self.initial];
        seen[self.initial.index()] = true;
        while let Some(s) = stack.pop() {
            if s == target {
                return true;
            }
            for (_, t) in self.succs(s) {
                if !seen[t.index()] {
                    seen[t.index()] = true;
                    stack.push(*t);
                }
            }
        }
        false
    }

    /// Render to Graphviz `dot`. Deadlocked states are drawn as double
    /// circles; labels use the environment's names.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// let env = Env::new();
    /// let p = act([(Res::new("cpu"), 1)], nil());
    /// let opts = Options { collect_lts: true, ..Options::default() };
    /// let lts = explore(&env, &p, &opts).lts.unwrap();
    /// let dot = lts.to_dot(&env);
    /// assert!(dot.starts_with("digraph lts {"));
    /// assert!(dot.contains("(cpu,1)"));
    /// ```
    pub fn to_dot(&self, env: &Env) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph lts {\n  rankdir=LR;\n  node [shape=circle];\n");
        for dead in self.deadlocks() {
            let _ = writeln!(out, "  s{} [shape=doublecircle];", dead.0);
        }
        let _ = writeln!(out, "  s{} [style=bold];", self.initial.0);
        for (i, succs) in self.transitions.iter().enumerate() {
            for (label, to) in succs {
                let _ = writeln!(
                    out,
                    "  s{} -> s{} [label=\"{}\"];",
                    i,
                    to.0,
                    env.display_label(label)
                );
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, Options};
    use acsr::prelude::*;

    fn build() -> (Env, Lts) {
        let env = Env::new();
        let p = choice([
            act([(Res::new("cpu"), 1)], nil()),
            act([(Res::new("bus"), 1)], act([(Res::new("cpu"), 1)], nil())),
        ]);
        let opts = Options {
            collect_lts: true,
            ..Options::default()
        };
        let ex = explore(&env, &p, &opts);
        (env, ex.lts.unwrap())
    }

    #[test]
    fn counts_and_reachability() {
        let (_env, lts) = build();
        assert_eq!(lts.num_states(), 3);
        assert_eq!(lts.num_transitions(), 3);
        for s in 0..lts.num_states() {
            assert!(lts.reachable(StateId(s as u32)));
        }
    }

    #[test]
    fn deadlocks_enumerated() {
        let (_env, lts) = build();
        let deads: Vec<_> = lts.deadlocks().collect();
        assert_eq!(deads.len(), 1);
        assert!(lts.succs(deads[0]).is_empty());
    }

    #[test]
    fn dot_output_is_well_formed() {
        let (env, lts) = build();
        let dot = lts.to_dot(&env);
        assert!(dot.starts_with("digraph lts {"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("(cpu,1)"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
