//! Random walks through the prioritized transition system.
//!
//! Exhaustive exploration is the point of the paper ("exploring the state
//! space of a formal executable model offers exhaustive analysis of all
//! possible behaviors", §6) — but a *random walk* is the formal-model
//! equivalent of one simulation run, which makes it the perfect foil: the
//! experiment `exhaustive_vs_simulation` uses walks to show that sampled runs
//! can miss the interleaving that violates a deadline. Walks are also used by
//! property tests (every state on a walk must be reachable by `explore`).
//!
//! Steps are drawn from the workspace's vendored deterministic PRNG
//! ([`det::DetRng`]), so walks are reproducible from a seed on every
//! platform and in every PR. Internally a walk steps through an interned,
//! memoized [`StepSession`] — long walks that revisit states reuse cached
//! successors — while the recorded [`Walk`] still carries plain terms, so
//! callers and the property suite see exactly the pre-interning API.

use std::sync::Arc;

use acsr::{Env, Label, MemoConfig, StepSession, TermStore, P};
use det::DetRng;

/// A recorded random walk.
///
/// # Examples
///
/// ```
/// use acsr::prelude::*;
/// use versa::random_walk;
///
/// let env = Env::new();
/// let p = act([(Res::new("cpu"), 1)], nil());
/// let walk = random_walk(&env, &p, 10, 7);
/// assert!(walk.deadlocked);
/// assert_eq!(walk.states.len(), walk.labels.len() + 1);
/// ```
#[derive(Clone, Debug)]
pub struct Walk {
    /// The labels taken, in order.
    pub labels: Vec<Label>,
    /// The states visited, including the initial state (so
    /// `states.len() == labels.len() + 1`).
    pub states: Vec<P>,
    /// True when the walk ended in a deadlocked state before taking
    /// `max_steps` steps.
    pub deadlocked: bool,
}

impl Walk {
    /// Number of steps taken.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::random_walk;
    ///
    /// let env = Env::new();
    /// let w = random_walk(&env, &act([(Res::new("cpu"), 1)], nil()), 10, 1);
    /// assert_eq!(w.len(), 1);
    /// ```
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when no step was taken.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::random_walk;
    ///
    /// // NIL has no steps: the walk is empty and immediately deadlocked.
    /// let w = random_walk(&Env::new(), &nil(), 10, 1);
    /// assert!(w.is_empty() && w.deadlocked);
    /// ```
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The final state.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::random_walk;
    ///
    /// let w = random_walk(&Env::new(), &act([(Res::new("cpu"), 1)], nil()), 10, 1);
    /// assert!(matches!(&**w.final_state(), acsr::Proc::Nil));
    /// ```
    pub fn final_state(&self) -> &P {
        self.states.last().expect("walk always has initial state")
    }

    /// Number of elapsed quanta.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::random_walk;
    ///
    /// let env = Env::new();
    /// let p = act([(Res::new("cpu"), 1)], act([(Res::new("cpu"), 1)], nil()));
    /// assert_eq!(random_walk(&env, &p, 10, 1).elapsed_quanta(), 2);
    /// ```
    pub fn elapsed_quanta(&self) -> usize {
        self.labels.iter().filter(|l| l.is_timed()).count()
    }
}

/// Take up to `max_steps` uniformly random prioritized steps from `initial`.
///
/// # Examples
///
/// ```
/// use acsr::prelude::*;
/// use versa::random_walk;
///
/// let mut env = Env::new();
/// let d = env.declare("Coin", 0);
/// env.set_body(d, choice([
///     act([(Res::new("cpu"), 1)], invoke(d, [])),
///     act([(Res::new("bus"), 1)], invoke(d, [])),
/// ]));
/// let p = invoke(d, []);
/// // Same seed, same walk — the generator is deterministic.
/// let a = random_walk(&env, &p, 32, 42);
/// let b = random_walk(&env, &p, 32, 42);
/// assert_eq!(a.labels, b.labels);
/// ```
pub fn random_walk(env: &Env, initial: &P, max_steps: usize, seed: u64) -> Walk {
    let session = StepSession::new(env, Arc::new(TermStore::new()), MemoConfig::default());
    let mut rng = DetRng::new(seed);
    let mut labels = Vec::new();
    let mut states = vec![initial.clone()];
    let mut cur = session.intern(initial);
    let mut deadlocked = false;
    for _ in 0..max_steps {
        let succs = session.prioritized_steps(&cur);
        if succs.is_empty() {
            deadlocked = true;
            break;
        }
        let (label, next) = succs[rng.range_usize(0..succs.len())].clone();
        labels.push(label);
        states.push(next.term().clone());
        cur = next;
    }
    Walk {
        labels,
        states,
        deadlocked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acsr::prelude::*;

    #[test]
    fn walk_is_reproducible_from_seed() {
        let mut env = Env::new();
        let cpu = Res::new("cpu");
        let d = env.declare("Coin", 0);
        env.set_body(
            d,
            choice([
                act([(cpu, 1)], invoke(d, [])),
                act([(Res::new("bus"), 1)], invoke(d, [])),
            ]),
        );
        let p = invoke(d, []);
        let w1 = random_walk(&env, &p, 50, 42);
        let w2 = random_walk(&env, &p, 50, 42);
        assert_eq!(w1.labels, w2.labels);
        let w3 = random_walk(&env, &p, 50, 43);
        // Overwhelmingly likely to differ (2^50 paths).
        assert_ne!(w1.labels, w3.labels);
    }

    #[test]
    fn walk_stops_at_deadlock() {
        let env = Env::new();
        let p = act([(Res::new("cpu"), 1)], nil());
        let w = random_walk(&env, &p, 100, 7);
        assert!(w.deadlocked);
        assert_eq!(w.len(), 1);
        assert_eq!(w.elapsed_quanta(), 1);
        assert_eq!(w.states.len(), 2);
    }

    #[test]
    fn walk_respects_prioritization() {
        let cpu = Res::new("cpu");
        // High-priority step always beats the idle alternative, so the walk
        // can only ever take the cpu step.
        let mut env = Env::new();
        let d = env.declare("W", 0);
        env.set_body(
            d,
            choice([
                act([(cpu, 5)], invoke(d, [])),
                act([] as [(Res, i32); 0], invoke(d, [])),
            ]),
        );
        let w = random_walk(&env, &invoke(d, []), 30, 99);
        assert_eq!(w.len(), 30);
        assert!(w
            .labels
            .iter()
            .all(|l| l.action().is_some_and(|a| a.prio_of(cpu) == 5)));
    }
}
