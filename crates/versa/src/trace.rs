//! Counterexample traces.
//!
//! A [`Trace`] is a path from the initial state to some state of interest —
//! for schedulability analysis, a deadlocked state. The paper (§5) reports
//! such traces as *failing scenarios*; the AADL translation layer
//! (`aadl2acsr::diagnose`) re-interprets each step in terms of the original
//! model. Here the trace is kept at the ACSR level: a sequence of labels with
//! the full intermediate states available for inspection.

use acsr::{Env, Label, P};

use crate::explore::StateId;

/// A path through the prioritized transition system.
///
/// # Examples
///
/// ```
/// use acsr::prelude::*;
/// use versa::{explore, Options};
///
/// let env = Env::new();
/// let p = act([(Res::new("cpu"), 1)], nil());
/// let ex = explore(&env, &p, &Options::default());
/// let trace = ex.first_deadlock_trace().unwrap();
/// assert_eq!(trace.steps.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Trace {
    /// The state the path starts from.
    pub initial: StateId,
    /// `(label, target-state)` pairs, in order.
    pub steps: Vec<(Label, StateId)>,
    /// The state table of the exploration that produced this trace (shared so
    /// intermediate states can be inspected).
    pub(crate) states: Vec<P>,
}

impl Trace {
    /// Number of steps.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// let env = Env::new();
    /// let p = act([(Res::new("cpu"), 1)], nil());
    /// let t = explore(&env, &p, &Options::default()).first_deadlock_trace().unwrap();
    /// assert_eq!(t.len(), 1);
    /// ```
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True for the empty trace (initial state is the target).
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// // NIL deadlocks immediately: the counterexample trace is empty.
    /// let t = explore(&Env::new(), &nil(), &Options::default())
    ///     .first_deadlock_trace()
    ///     .unwrap();
    /// assert!(t.is_empty());
    /// ```
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of *timed* steps, i.e. the number of quanta that elapse along
    /// the trace. For a deadline-violation counterexample this is the instant
    /// (in quanta) at which the system deadlocks.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// let env = Env::new();
    /// let p = act([(Res::new("cpu"), 1)], act([(Res::new("cpu"), 1)], nil()));
    /// let t = explore(&env, &p, &Options::default()).first_deadlock_trace().unwrap();
    /// assert_eq!(t.elapsed_quanta(), 2);
    /// ```
    pub fn elapsed_quanta(&self) -> usize {
        self.steps.iter().filter(|(l, _)| l.is_timed()).count()
    }

    /// The state reached after step `i` (0-based); `state_before(0)` is the
    /// initial state.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// let env = Env::new();
    /// let p = act([(Res::new("cpu"), 1)], nil());
    /// let t = explore(&env, &p, &Options::default()).first_deadlock_trace().unwrap();
    /// assert!(matches!(&**t.state_after(0), acsr::Proc::Nil));
    /// ```
    pub fn state_after(&self, i: usize) -> &P {
        &self.states[self.steps[i].1.index()]
    }

    /// The state the trace starts from.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// let env = Env::new();
    /// let p = act([(Res::new("cpu"), 1)], nil());
    /// let t = explore(&env, &p, &Options::default()).first_deadlock_trace().unwrap();
    /// assert!(!matches!(&**t.initial_state(), acsr::Proc::Nil));
    /// ```
    pub fn initial_state(&self) -> &P {
        &self.states[self.initial.index()]
    }

    /// The final state of the trace.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// let env = Env::new();
    /// let p = act([(Res::new("cpu"), 1)], nil());
    /// let t = explore(&env, &p, &Options::default()).first_deadlock_trace().unwrap();
    /// assert!(matches!(&**t.final_state(), acsr::Proc::Nil));
    /// ```
    pub fn final_state(&self) -> &P {
        match self.steps.last() {
            Some((_, id)) => &self.states[id.index()],
            None => self.initial_state(),
        }
    }

    /// Iterate over `(label, state-after)` pairs.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// let env = Env::new();
    /// let p = act([(Res::new("cpu"), 1)], nil());
    /// let t = explore(&env, &p, &Options::default()).first_deadlock_trace().unwrap();
    /// let (label, state) = t.iter().next().unwrap();
    /// assert!(label.is_timed());
    /// assert!(matches!(&**state, acsr::Proc::Nil));
    /// ```
    pub fn iter(&self) -> impl Iterator<Item = (&Label, &P)> {
        self.steps
            .iter()
            .map(|(l, id)| (l, &self.states[id.index()]))
    }

    /// Render the trace with the environment's names, one step per line,
    /// prefixed with the elapsed quantum count:
    ///
    /// ```text
    /// t=0  (tau@dispatch_T1,3)
    /// t=0  {(cpu1,2)} [T1 computes]
    /// t=1  {(cpu1,2)} [T1 computes]
    /// ```
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// let env = Env::new();
    /// let p = act([(Res::new("cpu"), 1)], nil());
    /// let t = explore(&env, &p, &Options::default()).first_deadlock_trace().unwrap();
    /// assert!(t.render(&env).starts_with("t=0"));
    /// ```
    pub fn render(&self, env: &Env) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut t = 0usize;
        for (label, _) in &self.steps {
            let _ = writeln!(out, "t={t:<4} {}", env.display_label(label));
            if label.is_timed() {
                t += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, Options};
    use acsr::prelude::*;

    fn deadlocking_trace() -> (Env, Trace) {
        let env = Env::new();
        let done = Symbol::new("done");
        // {(cpu,1)} : (done!,1) . {(cpu,1)} : NIL
        let p = act(
            [(Res::new("cpu"), 1)],
            evt_send(done, 1, act([(Res::new("cpu"), 1)], nil())),
        );
        let ex = explore(&env, &p, &Options::default());
        let t = ex.first_deadlock_trace().unwrap();
        (env, t)
    }

    #[test]
    fn trace_structure() {
        let (_env, t) = deadlocking_trace();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.elapsed_quanta(), 2);
        assert!(matches!(&*t.final_state().clone(), acsr::Proc::Nil));
    }

    #[test]
    fn state_inspection_along_the_trace() {
        let (env, t) = deadlocking_trace();
        // After the first step, the head of the term is the event prefix.
        let s1 = t.state_after(0);
        let steps1 = acsr::steps(&env, s1);
        assert!(matches!(steps1[0].0, Label::E { .. }));
    }

    #[test]
    fn render_shows_quantum_counter() {
        let (env, t) = deadlocking_trace();
        let s = t.render(&env);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("t=0"));
        assert!(lines[1].starts_with("t=1")); // event after first quantum
        assert!(lines[2].starts_with("t=1"));
        assert!(s.contains("(done!,1)"));
    }

    #[test]
    fn empty_trace_for_initially_deadlocked() {
        let env = Env::new();
        let ex = explore(&env, &nil(), &Options::default());
        let t = ex.first_deadlock_trace().unwrap();
        assert!(t.is_empty());
        assert_eq!(t.elapsed_quanta(), 0);
        assert!(matches!(&**t.final_state(), acsr::Proc::Nil));
    }
}
