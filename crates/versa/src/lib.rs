//! # versa — state-space exploration for ACSR models
//!
//! A from-scratch reimplementation of the role the VERSA tool (Clarke, Lee,
//! Xie 1995) plays in the paper *Schedulability Analysis of AADL Models*
//! (Sokolsky, Lee, Clarke; IPDPS 2006, §5):
//!
//! > Since the schedulability problem is reduced in ACSR to the problem of
//! > deadlock detection, VERSA can be used to perform schedulability analysis.
//! > If VERSA finds a deadlock in the model, it reports a trace leading from
//! > the start state to the deadlocked state.
//!
//! The explorer builds the *prioritized* transition system of a ground ACSR
//! term (see [`acsr::prio`]) breadth-first, interning states so each is
//! expanded exactly once, and records a parent pointer per state so that any
//! deadlock can be turned into a shortest counterexample [`Trace`]. States
//! are hash-consed through an [`acsr::TermStore`] and successors are
//! memoized per subterm (see [`acsr::StepSession`]); the pre-interning
//! engine survives as [`hashed_engine::explore_hashed`] for differential
//! testing and benchmarking.
//!
//! Beyond the sequential engine, [`explore()`](crate::explore::explore) offers **level-synchronous
//! parallel frontier expansion** (successor computation fans out over scoped
//! `std::thread` workers; interning stays sequential per level, so results —
//! including traces — are bit-for-bit identical to the sequential engine).
//! This addresses the paper's future-work note on "improving the state-space
//! exploration efficiency of VERSA" (§7).
//!
//! ```
//! use acsr::prelude::*;
//! use versa::{explore, Options};
//!
//! // A one-shot process deadlocks after its only step.
//! let env = Env::new();
//! let p = act([(Res::new("cpu"), 1)], nil());
//! let ex = explore(&env, &p, &Options::default());
//! assert_eq!(ex.num_states(), 2);
//! assert_eq!(ex.deadlocks.len(), 1);
//! let trace = ex.first_deadlock_trace().unwrap();
//! assert_eq!(trace.steps.len(), 1);
//! ```

mod cache;
pub mod explore;
pub mod hashed_engine;
pub mod lts;
pub mod trace;
pub mod walk;
mod zones;

pub use explore::{explore, CancelToken, Exploration, Options, Stats, StateId, ZoneAdvance};
pub use hashed_engine::explore_hashed;
pub use lts::Lts;
pub use trace::Trace;
pub use walk::{random_walk, Walk};
