//! The pre-interning exploration engine, preserved as a differential baseline.
//!
//! [`explore_hashed`] is the engine [`explore`](crate::explore::explore) used
//! before the hash-consed term store landed: states are deduplicated through
//! [`HashedP`] keys (cached structural digest, deep-compare fallback) and
//! every expansion re-derives successors with the plain
//! [`prioritized_steps`]. It is kept — deliberately unoptimized — for two
//! jobs:
//!
//! * the property suite explores every random task set through both engines
//!   and insists on **byte-identical** state tables, deadlock sets and
//!   shortest traces (`tests/prop_interning.rs`);
//! * the bench harness A/Bs the interned engine against it (EXPERIMENTS.md
//!   Q9), alongside the even older `bench::seedline` engine.
//!
//! The algorithm is the same level-synchronous BFS with the sharded visited
//! set and the deterministic frontier-order merge as the main engine — only
//! the state representation differs. Observability is intentionally not
//! wired up here (the `obs` field of [`Options`] is ignored): this engine
//! exists to be compared against, not to be watched.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

use acsr::{prioritized_steps, Env, HashedP, Label, P};

use crate::explore::{Exploration, Options, StateId, Stats};
use crate::lts::Lts;

/// A visited-set entry (see the twin in `explore.rs`).
#[derive(Copy, Clone, Debug)]
enum Slot {
    Final(StateId),
    Pending { worker: u32, slot: u32 },
}

/// The sharded `HashedP → Slot` visited set of the pre-interning engine.
struct Visited {
    shards: Vec<Mutex<HashMap<HashedP, Slot>>>,
    mask: u64,
}

impl Visited {
    fn new(shards: usize) -> Visited {
        let n = shards.max(1).next_power_of_two();
        Visited {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: (n - 1) as u64,
        }
    }

    fn shard(&self, digest: u64) -> &Mutex<HashMap<HashedP, Slot>> {
        &self.shards[(digest & self.mask) as usize]
    }

    fn probe_or_pend(&self, hp: &HashedP, worker: u32, slot: u32) -> Option<Slot> {
        let mut guard = self
            .shard(hp.digest())
            .lock()
            .expect("visited shard poisoned");
        match guard.entry(hp.clone()) {
            Entry::Occupied(e) => Some(*e.get()),
            Entry::Vacant(v) => {
                v.insert(Slot::Pending { worker, slot });
                None
            }
        }
    }

    fn finalize(&self, hp: &HashedP, id: StateId) {
        let mut guard = self
            .shard(hp.digest())
            .lock()
            .expect("visited shard poisoned");
        *guard.get_mut(hp).expect("pending entry present") = Slot::Final(id);
    }
}

#[derive(Copy, Clone, Debug)]
enum Target {
    Known(StateId),
    New { worker: u32, slot: u32 },
}

struct WorkerOut {
    succs: Vec<Vec<(Label, Target)>>,
    fresh: Vec<HashedP>,
}

fn expand_chunk(
    env: &Env,
    states: &[P],
    ids: &[StateId],
    visited: &Visited,
    worker: u32,
) -> WorkerOut {
    let mut fresh: Vec<HashedP> = Vec::new();
    let succs = ids
        .iter()
        .map(|id| {
            prioritized_steps(env, &states[id.index()])
                .into_iter()
                .map(|(label, p)| {
                    let hp = HashedP::new(p);
                    let slot = fresh.len() as u32;
                    let target = match visited.probe_or_pend(&hp, worker, slot) {
                        Some(Slot::Final(sid)) => Target::Known(sid),
                        Some(Slot::Pending { worker, slot }) => Target::New { worker, slot },
                        None => {
                            fresh.push(hp);
                            Target::New { worker, slot }
                        }
                    };
                    (label, target)
                })
                .collect()
        })
        .collect();
    WorkerOut { succs, fresh }
}

/// Explore with the preserved `HashedP` engine. Same BFS semantics and
/// deterministic merge as [`explore`](crate::explore::explore); respects
/// `max_states`, `stop_at_first_deadlock`, `collect_lts`, `threads` and
/// `shards`, ignores `obs` and the memo settings (there is no memo here —
/// that is the point).
///
/// # Examples
///
/// ```
/// use acsr::prelude::*;
/// use versa::{explore, hashed_engine::explore_hashed, Options};
///
/// let env = Env::new();
/// let p = act([(Res::new("cpu"), 1)], act([(Res::new("cpu"), 1)], nil()));
/// let old = explore_hashed(&env, &p, &Options::default());
/// let new = explore(&env, &p, &Options::default());
/// assert_eq!(old.num_states(), new.num_states());
/// assert_eq!(old.deadlocks, new.deadlocks);
/// ```
pub fn explore_hashed(env: &Env, initial: &P, opts: &Options) -> Exploration {
    let start = Instant::now();
    let threads = opts.threads.max(1);
    let visited = Visited::new(if opts.shards == 0 { threads } else { opts.shards });

    let mut states: Vec<P> = Vec::new();
    let mut parents: Vec<Option<(StateId, Label)>> = Vec::new();
    let mut deadlocks: Vec<StateId> = Vec::new();
    let mut lts_transitions: Vec<Vec<(Label, StateId)>> = Vec::new();
    let mut stats = Stats::default();
    let mut truncated = false;

    let root = StateId(0);
    let root_hp = HashedP::new(initial.clone());
    visited
        .shard(root_hp.digest())
        .lock()
        .expect("visited shard poisoned")
        .insert(root_hp.clone(), Slot::Final(root));
    states.push(root_hp.into_term());
    parents.push(None);

    let mut frontier: Vec<StateId> = vec![root];
    while !frontier.is_empty() {
        stats.levels += 1;
        stats.peak_frontier = stats.peak_frontier.max(frontier.len());
        let mut stop = false;

        let outs: Vec<WorkerOut> = if threads > 1 && frontier.len() >= 4 * threads {
            let chunk = frontier.len().div_ceil(threads);
            let collected: Mutex<Vec<(usize, WorkerOut)>> = Mutex::new(Vec::with_capacity(threads));
            std::thread::scope(|s| {
                for (ci, ids) in frontier.chunks(chunk).enumerate() {
                    let collected = &collected;
                    let visited = &visited;
                    let states = &states[..];
                    s.spawn(move || {
                        let out = expand_chunk(env, states, ids, visited, ci as u32);
                        collected
                            .lock()
                            .expect("expansion lock poisoned")
                            .push((ci, out));
                    });
                }
            });
            let mut chunks = collected.into_inner().expect("expansion lock poisoned");
            chunks.sort_unstable_by_key(|(ci, _)| *ci);
            chunks.into_iter().map(|(_, out)| out).collect()
        } else {
            vec![expand_chunk(env, &states, &frontier, &visited, 0)]
        };

        let mut remap: Vec<Vec<Option<StateId>>> =
            outs.iter().map(|out| vec![None; out.fresh.len()]).collect();
        let mut next: Vec<StateId> = Vec::new();
        let mut fi = 0usize;
        'level: for out in &outs {
            for succs in &out.succs {
                let id = frontier[fi];
                fi += 1;
                if succs.is_empty() {
                    deadlocks.push(id);
                    stats.deadlocks += 1;
                    if opts.stop_at_first_deadlock {
                        stop = true;
                        break 'level;
                    }
                }
                if opts.collect_lts && lts_transitions.len() <= id.index() {
                    lts_transitions.resize(id.index() + 1, Vec::new());
                }
                for (label, target) in succs {
                    stats.transitions += 1;
                    let (sid, fresh) = match *target {
                        Target::Known(sid) => (sid, false),
                        Target::New { worker, slot } => {
                            let (w, sl) = (worker as usize, slot as usize);
                            match remap[w][sl] {
                                Some(sid) => (sid, false),
                                None => {
                                    let sid = StateId(states.len() as u32);
                                    remap[w][sl] = Some(sid);
                                    let hp = &outs[w].fresh[sl];
                                    visited.finalize(hp, sid);
                                    states.push(hp.term().clone());
                                    parents.push(Some((id, label.clone())));
                                    next.push(sid);
                                    (sid, true)
                                }
                            }
                        }
                    };
                    if opts.collect_lts {
                        lts_transitions[id.index()].push((label.clone(), sid));
                    }
                    if !fresh {
                        stats.dedup_hits += 1;
                    }
                }
                if states.len() >= opts.max_states {
                    truncated = true;
                    stop = true;
                    break 'level;
                }
            }
        }

        if stop {
            break;
        }
        frontier = next;
    }

    stats.states = states.len();
    stats.duration = start.elapsed();
    let lts = opts.collect_lts.then(|| {
        lts_transitions.resize(states.len(), Vec::new());
        Lts {
            initial: root,
            transitions: lts_transitions,
        }
    });
    Exploration {
        states,
        parents,
        zone_edges: Vec::new(),
        deadlocks,
        lts,
        stats,
        truncated,
        // The legacy engine predates cooperative cancellation and ignores
        // `Options::cancel`; it exists only for differential testing.
        cancelled: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore;
    use acsr::prelude::*;

    #[test]
    fn hashed_engine_matches_main_engine() {
        let mut env = Env::new();
        let cpu = Res::new("cpu");
        let c1 = env.declare("C", 1);
        env.set_body(
            c1,
            choice([
                guard(
                    BExpr::lt(Expr::p(0), Expr::c(12)),
                    choice([
                        act([(cpu, 1)], invoke(c1, [Expr::p(0).add(Expr::c(1))])),
                        act([(Res::new("bus"), 1)], invoke(c1, [Expr::p(0).add(Expr::c(2))])),
                    ]),
                ),
                guard(BExpr::eq(Expr::p(0), Expr::c(12)), nil()),
                guard(BExpr::eq(Expr::p(0), Expr::c(13)), nil()),
            ]),
        );
        let p = invoke(c1, [Expr::c(0)]);
        let old = explore_hashed(&env, &p, &Options::default());
        let new = explore(&env, &p, &Options::default());
        assert_eq!(old.num_states(), new.num_states());
        assert_eq!(old.deadlocks, new.deadlocks);
        assert_eq!(old.stats.transitions, new.stats.transitions);
        assert_eq!(old.stats.dedup_hits, new.stats.dedup_hits);
        for i in 0..old.num_states() {
            assert_eq!(old.state(StateId(i as u32)), new.state(StateId(i as u32)));
        }
    }

    #[test]
    fn hashed_engine_parallel_matches_its_sequential_self() {
        let mut env = Env::new();
        let cpu = Res::new("cpu");
        let c1 = env.declare("C", 1);
        env.set_body(
            c1,
            choice([
                guard(
                    BExpr::lt(Expr::p(0), Expr::c(20)),
                    act([(cpu, 1)], invoke(c1, [Expr::p(0).add(Expr::c(1))])),
                ),
                guard(BExpr::eq(Expr::p(0), Expr::c(20)), invoke(c1, [Expr::c(0)])),
            ]),
        );
        let p = invoke(c1, [Expr::c(0)]);
        let seq = explore_hashed(&env, &p, &Options::default());
        let par4 = explore_hashed(&env, &p, &Options::default().with_threads(4));
        assert_eq!(seq.num_states(), par4.num_states());
        assert_eq!(seq.deadlocks, par4.deadlocks);
        for i in 0..seq.num_states() {
            assert_eq!(seq.state(StateId(i as u32)), par4.state(StateId(i as u32)));
        }
    }
}
