//! Breadth-first construction of the prioritized transition system.
//!
//! States are ground ACSR terms, interned into dense [`StateId`]s. The search
//! is breadth-first so the first deadlock found yields a *shortest*
//! counterexample — the most readable failing scenario to raise back to the
//! AADL level.
//!
//! With [`Options::threads`] > 1 the expansion of each BFS level fans out over
//! worker threads (successor computation — term manipulation and the Par3
//! product — dominates the cost); interning the discovered states stays
//! sequential and in frontier order, so exploration results are deterministic
//! and identical to the sequential engine.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, TryLockError};
use std::time::{Duration, Instant};

use acsr::{prioritized_steps, Env, Label, P};

use crate::lts::Lts;
use crate::trace::Trace;

/// Dense identifier of an interned state.
///
/// Ids are assigned in BFS discovery order, so `StateId(0)` is always the
/// initial state and lower ids are closer to it.
///
/// # Examples
///
/// ```
/// use acsr::prelude::*;
/// use versa::{explore, Options, StateId};
///
/// let env = Env::new();
/// let ex = explore(&env, &act([(Res::new("cpu"), 1)], nil()), &Options::default());
/// assert_eq!(ex.initial(), StateId(0));
/// assert_eq!(StateId(1).index(), 1);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StateId(pub u32);

impl StateId {
    /// The raw index into the exploration's state table.
    ///
    /// # Examples
    ///
    /// ```
    /// assert_eq!(versa::StateId(7).index(), 7);
    /// ```
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Exploration options.
///
/// # Examples
///
/// ```
/// use versa::Options;
///
/// let opts = Options::default().with_threads(4).with_max_states(10_000);
/// assert_eq!(opts.threads, 4);
/// assert_eq!(opts.max_states, 10_000);
/// assert!(!opts.stop_at_first_deadlock);
/// ```
#[derive(Clone, Debug)]
pub struct Options {
    /// Abort after interning this many states (the exploration is then marked
    /// [`Exploration::truncated`]).
    pub max_states: usize,
    /// Stop as soon as the first deadlock is interned (its trace is still
    /// shortest: BFS order guarantees no shorter deadlock exists).
    pub stop_at_first_deadlock: bool,
    /// Record the full labelled transition relation (needed for [`Lts`]
    /// export; costs memory proportional to the number of transitions).
    pub collect_lts: bool,
    /// Worker threads for frontier expansion; `0` or `1` means sequential.
    pub threads: usize,
    /// Observability recorder. Disabled by default — every instrument the
    /// exploration touches is then an inert handle, so the instrumented hot
    /// path costs nothing observable (see `crates/obs`). Enable it (and
    /// optionally arm progress reporting) to get per-level spans, dedup and
    /// lock-contention counters, and the peak state-store gauge.
    pub obs: obs::Recorder,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            max_states: usize::MAX,
            stop_at_first_deadlock: false,
            collect_lts: false,
            threads: 1,
            obs: obs::Recorder::disabled(),
        }
    }
}

impl Options {
    /// Preset for schedulability verdicts: stop at the first deadlock.
    ///
    /// # Examples
    ///
    /// ```
    /// assert!(versa::Options::verdict().stop_at_first_deadlock);
    /// ```
    pub fn verdict() -> Options {
        Options {
            stop_at_first_deadlock: true,
            ..Options::default()
        }
    }

    /// Set the worker-thread count (`0` or `1` means sequential).
    ///
    /// # Examples
    ///
    /// ```
    /// assert_eq!(versa::Options::default().with_threads(8).threads, 8);
    /// ```
    pub fn with_threads(mut self, threads: usize) -> Options {
        self.threads = threads;
        self
    }

    /// Set the state budget.
    ///
    /// # Examples
    ///
    /// ```
    /// assert_eq!(versa::Options::default().with_max_states(100).max_states, 100);
    /// ```
    pub fn with_max_states(mut self, max: usize) -> Options {
        self.max_states = max;
        self
    }

    /// Attach an observability recorder (see `crates/obs`).
    ///
    /// # Examples
    ///
    /// ```
    /// let opts = versa::Options::default().with_obs(obs::Recorder::enabled());
    /// assert!(opts.obs.is_enabled());
    /// ```
    pub fn with_obs(mut self, obs: obs::Recorder) -> Options {
        self.obs = obs;
        self
    }
}

/// Aggregate statistics of one exploration run.
///
/// # Examples
///
/// ```
/// use acsr::prelude::*;
/// use versa::{explore, Options};
///
/// // Two timed steps to NIL: 3 states, 2 transitions, 3 BFS levels.
/// let env = Env::new();
/// let p = act([(Res::new("cpu"), 1)], act([(Res::new("cpu"), 1)], nil()));
/// let stats = explore(&env, &p, &Options::default()).stats;
/// assert_eq!((stats.states, stats.transitions, stats.levels), (3, 2, 3));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Number of interned states.
    pub states: usize,
    /// Number of transitions traversed (post-prioritization).
    pub transitions: usize,
    /// Number of deadlocked states found.
    pub deadlocks: usize,
    /// Largest BFS frontier encountered.
    pub peak_frontier: usize,
    /// Number of BFS levels expanded (the depth reached).
    pub levels: usize,
    /// Transitions whose target state was already interned — cross- and
    /// back-edges merged by the visited set. `transitions - dedup_hits` is
    /// the number of *fresh* discoveries (≈ `states - 1`).
    pub dedup_hits: usize,
    /// Wall-clock duration of the exploration.
    pub duration: Duration,
}

impl fmt::Display for Stats {
    /// One-line summary of the run, suitable for tool output.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// let env = Env::new();
    /// let p = act([(Res::new("cpu"), 1)], act([(Res::new("cpu"), 1)], nil()));
    /// let line = explore(&env, &p, &Options::default()).stats.to_string();
    /// assert!(line.starts_with("3 states, 2 transitions"));
    /// assert!(line.contains("3 levels"));
    /// assert!(line.contains("0 dedup hits"));
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} transitions, {} levels, peak frontier {}, \
             {} dedup hits, {} deadlock(s) in {:?}",
            self.states,
            self.transitions,
            self.levels,
            self.peak_frontier,
            self.dedup_hits,
            self.deadlocks,
            self.duration
        )
    }
}

/// The result of exploring a model.
///
/// # Examples
///
/// ```
/// use acsr::prelude::*;
/// use versa::{explore, Options};
///
/// let env = Env::new();
/// let ex = explore(&env, &act([(Res::new("cpu"), 1)], nil()), &Options::default());
/// assert_eq!(ex.num_states(), 2);
/// assert!(!ex.deadlock_free()); // NIL has no steps
/// assert!(!ex.truncated);
/// ```
#[derive(Clone, Debug)]
pub struct Exploration {
    states: Vec<P>,
    /// Predecessor of each state in BFS order (`None` for the initial state).
    parents: Vec<Option<(StateId, Label)>>,
    /// Deadlocked states (no outgoing prioritized transitions), in discovery
    /// order.
    pub deadlocks: Vec<StateId>,
    /// The labelled transition relation, when requested.
    pub lts: Option<Lts>,
    /// Run statistics.
    pub stats: Stats,
    /// True when `max_states` stopped the search before exhausting the space.
    pub truncated: bool,
}

impl Exploration {
    /// The initial state (always id 0).
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options, StateId};
    ///
    /// let ex = explore(&Env::new(), &nil(), &Options::default());
    /// assert_eq!(ex.initial(), StateId(0));
    /// ```
    pub fn initial(&self) -> StateId {
        StateId(0)
    }

    /// Number of interned states.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// let ex = explore(&Env::new(), &nil(), &Options::default());
    /// assert_eq!(ex.num_states(), 1);
    /// ```
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// The term of a state.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// let ex = explore(&Env::new(), &nil(), &Options::default());
    /// assert!(matches!(&**ex.state(ex.initial()), acsr::Proc::Nil));
    /// ```
    pub fn state(&self, id: StateId) -> &P {
        &self.states[id.index()]
    }

    /// True iff no deadlock was found (and the exploration completed).
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// // NIL deadlocks immediately; an idling loop never does.
    /// assert!(!explore(&Env::new(), &nil(), &Options::default()).deadlock_free());
    /// let mut env = Env::new();
    /// let d = env.declare("Idle", 0);
    /// env.set_body(d, act([] as [(Res, i32); 0], invoke(d, [])));
    /// assert!(explore(&env, &invoke(d, []), &Options::default()).deadlock_free());
    /// ```
    pub fn deadlock_free(&self) -> bool {
        self.deadlocks.is_empty() && !self.truncated
    }

    /// Reconstruct the (shortest) trace from the initial state to `target`.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// let env = Env::new();
    /// let p = act([(Res::new("cpu"), 1)], nil());
    /// let ex = explore(&env, &p, &Options::default());
    /// let dead = ex.deadlocks[0];
    /// assert_eq!(ex.trace_to(dead).len(), 1);
    /// ```
    pub fn trace_to(&self, target: StateId) -> Trace {
        let mut rev: Vec<(StateId, Label)> = Vec::new();
        let mut cur = target;
        while let Some((parent, label)) = &self.parents[cur.index()] {
            rev.push((cur, label.clone()));
            cur = *parent;
        }
        rev.reverse();
        Trace {
            initial: StateId(0),
            steps: rev
                .into_iter()
                .map(|(to, label)| (label, to))
                .collect(),
            states: self.states.clone(),
        }
    }

    /// The trace to the first deadlock found, if any.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// let env = Env::new();
    /// let ex = explore(&env, &act([(Res::new("cpu"), 1)], nil()), &Options::default());
    /// assert_eq!(ex.first_deadlock_trace().unwrap().elapsed_quanta(), 1);
    /// ```
    pub fn first_deadlock_trace(&self) -> Option<Trace> {
        self.deadlocks.first().map(|&d| self.trace_to(d))
    }

    /// All states whose term satisfies `pred`, in BFS (shortest-distance)
    /// order. Useful for reachability queries beyond deadlock detection —
    /// e.g. "is any state with the queue at capacity reachable?".
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// let env = Env::new();
    /// let ex = explore(&env, &act([(Res::new("cpu"), 1)], nil()), &Options::default());
    /// let nils = ex.find_states(|p| matches!(&**p, acsr::Proc::Nil));
    /// assert_eq!(nils.len(), 1);
    /// ```
    pub fn find_states(&self, mut pred: impl FnMut(&P) -> bool) -> Vec<StateId> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, p)| pred(p))
            .map(|(i, _)| StateId(i as u32))
            .collect()
    }

    /// BFS depth of a state: the number of steps on its shortest trace.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// let env = Env::new();
    /// let ex = explore(&env, &act([(Res::new("cpu"), 1)], nil()), &Options::default());
    /// assert_eq!(ex.depth_of(ex.initial()), 0);
    /// assert_eq!(ex.depth_of(ex.deadlocks[0]), 1);
    /// ```
    pub fn depth_of(&self, id: StateId) -> usize {
        let mut depth = 0;
        let mut cur = id;
        while let Some((parent, _)) = &self.parents[cur.index()] {
            depth += 1;
            cur = *parent;
        }
        depth
    }
}

/// Explore the prioritized transition system of `initial` under `env`.
///
/// # Examples
///
/// ```
/// use acsr::prelude::*;
/// use versa::{explore, Options};
///
/// // A choice between a 1-step and a 2-step path to NIL: BFS finds the
/// // shortest deadlock first.
/// let env = Env::new();
/// let p = choice([
///     act([(Res::new("cpu"), 1)], nil()),
///     act([(Res::new("bus"), 1)], act([(Res::new("cpu"), 1)], nil())),
/// ]);
/// let ex = explore(&env, &p, &Options::default());
/// assert_eq!(ex.first_deadlock_trace().unwrap().len(), 1);
/// ```
pub fn explore(env: &Env, initial: &P, opts: &Options) -> Exploration {
    let start = Instant::now();
    let run_span = opts.obs.span("explore");
    let dedup_counter = opts.obs.counter("explore.dedup_hits");
    let states_gauge = opts.obs.gauge("explore.states");
    let mut interner: HashMap<P, StateId> = HashMap::new();
    let mut states: Vec<P> = Vec::new();
    let mut parents: Vec<Option<(StateId, Label)>> = Vec::new();
    let mut deadlocks: Vec<StateId> = Vec::new();
    let mut lts_transitions: Vec<Vec<(Label, StateId)>> = Vec::new();
    let mut stats = Stats::default();
    let mut truncated = false;

    let intern = |p: P,
                      parent: Option<(StateId, Label)>,
                      interner: &mut HashMap<P, StateId>,
                      states: &mut Vec<P>,
                      parents: &mut Vec<Option<(StateId, Label)>>|
     -> (StateId, bool) {
        if let Some(&id) = interner.get(&p) {
            return (id, false);
        }
        let id = StateId(u32::try_from(states.len()).expect("state id overflow"));
        interner.insert(p.clone(), id);
        states.push(p);
        parents.push(parent);
        (id, true)
    };

    let (root, _) = intern(
        initial.clone(),
        None,
        &mut interner,
        &mut states,
        &mut parents,
    );
    let mut frontier: Vec<StateId> = vec![root];
    let threads = opts.threads.max(1);

    while !frontier.is_empty() {
        stats.levels += 1;
        stats.peak_frontier = stats.peak_frontier.max(frontier.len());
        let level_span = run_span.child("explore.level");
        let mut level_discovered = 0usize;
        let mut level_deduped = 0usize;
        let mut level_transitions = 0usize;
        let mut stop = false;

        // Expand the whole level: successor lists in frontier order. Spawning
        // workers only pays off on wide frontiers; narrow levels (including
        // the common startup ramp) run sequentially.
        let expanded: Vec<Vec<(Label, P)>> = if threads > 1 && frontier.len() >= 4 * threads {
            expand_parallel(env, &states, &frontier, threads, &opts.obs)
        } else {
            frontier
                .iter()
                .map(|id| prioritized_steps(env, &states[id.index()]))
                .collect()
        };

        let mut next: Vec<StateId> = Vec::new();
        for (&id, succs) in frontier.iter().zip(&expanded) {
            if succs.is_empty() {
                deadlocks.push(id);
                stats.deadlocks += 1;
                if opts.stop_at_first_deadlock {
                    stop = true;
                    break;
                }
            }
            if opts.collect_lts && lts_transitions.len() <= id.index() {
                lts_transitions.resize(id.index() + 1, Vec::new());
            }
            for (label, succ) in succs {
                stats.transitions += 1;
                level_transitions += 1;
                let (sid, fresh) = intern(
                    succ.clone(),
                    Some((id, label.clone())),
                    &mut interner,
                    &mut states,
                    &mut parents,
                );
                if opts.collect_lts {
                    lts_transitions[id.index()].push((label.clone(), sid));
                }
                if fresh {
                    level_discovered += 1;
                    next.push(sid);
                } else {
                    stats.dedup_hits += 1;
                    level_deduped += 1;
                }
            }
            if states.len() >= opts.max_states {
                truncated = true;
                stop = true;
                break;
            }
        }

        level_span.set("level", stats.levels as i64);
        level_span.set("frontier", frontier.len() as i64);
        level_span.set("discovered", level_discovered as i64);
        level_span.set("deduped", level_deduped as i64);
        level_span.set("transitions", level_transitions as i64);
        level_span.set("states_total", states.len() as i64);
        level_span.end();
        dedup_counter.add(level_deduped as u64);
        states_gauge.set(states.len() as i64);
        opts.obs.progress(
            states.len() as u64,
            stats.levels as u64,
            frontier.len() as u64,
        );
        if stop {
            break;
        }
        frontier = next;
    }

    stats.states = states.len();
    stats.duration = start.elapsed();
    run_span.set("states", stats.states as i64);
    run_span.set("transitions", stats.transitions as i64);
    run_span.set("levels", stats.levels as i64);
    run_span.set("peak_frontier", stats.peak_frontier as i64);
    run_span.set("deadlocks", stats.deadlocks as i64);
    run_span.set("truncated", i64::from(truncated));
    run_span.end();
    let lts = opts.collect_lts.then(|| {
        lts_transitions.resize(states.len(), Vec::new());
        Lts {
            initial: root,
            transitions: lts_transitions,
        }
    });
    Exploration {
        states,
        parents,
        deadlocks,
        lts,
        stats,
        truncated,
    }
}

/// Expand one BFS level in parallel: chunk the frontier over `threads`
/// scoped `std::thread` workers; each computes the prioritized successors of
/// its chunk. The output preserves frontier order, making the parallel
/// engine's results identical to the sequential one. A panicking worker
/// propagates when the scope joins.
fn expand_parallel(
    env: &Env,
    states: &[P],
    frontier: &[StateId],
    threads: usize,
    obs: &obs::Recorder,
) -> Vec<Vec<(Label, P)>> {
    let chunk = frontier.len().div_ceil(threads);
    // The contention counter is a lock-wait proxy: each increment is one
    // `try_lock` that would have blocked. Registered here (not in `explore`)
    // so sequential runs never carry the inherently racy metric.
    let contended = obs.counter("explore.lock_contention");
    let chunk_hist = obs.histogram("explore.worker_chunk");
    type ChunkResult = Vec<Vec<(Label, P)>>;
    let out: Mutex<Vec<(usize, ChunkResult)>> = Mutex::new(Vec::with_capacity(threads));
    std::thread::scope(|s| {
        for (ci, ids) in frontier.chunks(chunk).enumerate() {
            let out = &out;
            let contended = &contended;
            let expanded = obs.counter(&format!("explore.worker.{ci}.expanded"));
            chunk_hist.observe(ids.len() as u64);
            s.spawn(move || {
                let local: Vec<Vec<(Label, P)>> = ids
                    .iter()
                    .map(|id| prioritized_steps(env, &states[id.index()]))
                    .collect();
                expanded.add(local.len() as u64);
                let mut guard = match out.try_lock() {
                    Ok(guard) => guard,
                    Err(TryLockError::WouldBlock) => {
                        contended.inc();
                        out.lock().expect("expansion lock poisoned")
                    }
                    Err(TryLockError::Poisoned(_)) => panic!("expansion lock poisoned"),
                };
                guard.push((ci, local));
            });
        }
    });
    let mut chunks = out.into_inner().expect("expansion lock poisoned");
    chunks.sort_unstable_by_key(|(ci, _)| *ci);
    chunks.into_iter().flat_map(|(_, v)| v).collect()
}

/// Convenience: explore and return whether the model is deadlock-free
/// together with the exploration (used by the schedulability front end).
///
/// # Examples
///
/// ```
/// use acsr::prelude::*;
/// use versa::{explore, Options};
///
/// let env = Env::new();
/// let (free, ex) = versa::explore::deadlock_free(&env, &nil(), &Options::default());
/// assert!(!free);
/// assert_eq!(ex.deadlocks.len(), 1);
/// ```
pub fn deadlock_free(env: &Env, initial: &P, opts: &Options) -> (bool, Exploration) {
    let ex = explore(env, initial, opts);
    (ex.deadlock_free(), ex)
}

/// Keep `Arc` in the public signature out of rustdoc's way.
#[doc(hidden)]
pub type State = Arc<acsr::Proc>;

#[cfg(test)]
mod tests {
    use super::*;
    use acsr::prelude::*;

    fn cpu() -> Res {
        Res::new("cpu")
    }

    /// P = {(cpu,1)} : P — a one-state loop.
    fn looping(env: &mut Env) -> P {
        let d = env.declare("Looper", 0);
        env.set_body(d, act([(cpu(), 1)], invoke(d, [])));
        invoke(d, [])
    }

    #[test]
    fn loop_explores_to_fixpoint() {
        let mut env = Env::new();
        let p = looping(&mut env);
        let ex = explore(&env, &p, &Options::default());
        // Invoke state + its unfolding successor (the invocation again) — the
        // residual of the prefix is the invocation, so there is exactly 1 state.
        assert_eq!(ex.num_states(), 1);
        assert!(ex.deadlock_free());
        assert_eq!(ex.stats.transitions, 1);
    }

    #[test]
    fn finite_process_deadlocks_at_the_end() {
        let env = Env::new();
        let p = act([(cpu(), 1)], act([(cpu(), 1)], nil()));
        let ex = explore(&env, &p, &Options::default());
        assert_eq!(ex.num_states(), 3);
        assert_eq!(ex.deadlocks.len(), 1);
        let t = ex.first_deadlock_trace().unwrap();
        assert_eq!(t.steps.len(), 2);
        assert!(t.steps.iter().all(|(l, _)| l.is_timed()));
    }

    #[test]
    fn bfs_finds_shortest_deadlock() {
        let env = Env::new();
        // Choice between a 1-step path to NIL and a 3-step path to NIL.
        let long = act([(cpu(), 1)], act([(cpu(), 2)], act([(cpu(), 3)], nil())));
        let short = act([(Res::new("bus"), 1)], nil());
        let p = choice([long, short]);
        let ex = explore(&env, &p, &Options::default());
        let t = ex.first_deadlock_trace().unwrap();
        assert_eq!(t.steps.len(), 1);
    }

    #[test]
    fn stop_at_first_deadlock_stops_early() {
        let env = Env::new();
        let p = choice([
            act([(cpu(), 1)], nil()),
            act([(Res::new("bus"), 1)], act([(cpu(), 1)], nil())),
        ]);
        let ex = explore(&env, &p, &Options::verdict());
        assert_eq!(ex.deadlocks.len(), 1);
    }

    #[test]
    fn max_states_truncates() {
        let mut env = Env::new();
        // Counter that never repeats a state: C(n) = {(cpu,1)}:C(n+1).
        let d = env.declare("Counter", 1);
        env.set_body(
            d,
            act([(cpu(), 1)], invoke(d, [Expr::p(0).add(Expr::c(1))])),
        );
        let p = invoke(d, [Expr::c(0)]);
        let ex = explore(&env, &p, &Options::default().with_max_states(100));
        assert!(ex.truncated);
        assert_eq!(ex.num_states(), 100);
        assert!(!ex.deadlock_free());
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut env = Env::new();
        // Two counters modulo different bases in parallel: product space.
        let c1 = env.declare("C1", 1);
        env.set_body(
            c1,
            choice([
                guard(
                    BExpr::lt(Expr::p(0), Expr::c(6)),
                    act([(cpu(), 1)], invoke(c1, [Expr::p(0).add(Expr::c(1))])),
                ),
                guard(
                    BExpr::eq(Expr::p(0), Expr::c(6)),
                    act([(cpu(), 1)], invoke(c1, [Expr::c(0)])),
                ),
            ]),
        );
        let c2 = env.declare("C2", 1);
        env.set_body(
            c2,
            choice([
                guard(
                    BExpr::lt(Expr::p(0), Expr::c(4)),
                    act([(Res::new("bus"), 1)], invoke(c2, [Expr::p(0).add(Expr::c(1))])),
                ),
                guard(
                    BExpr::eq(Expr::p(0), Expr::c(4)),
                    act([(Res::new("bus"), 1)], invoke(c2, [Expr::c(0)])),
                ),
            ]),
        );
        let p = par([invoke(c1, [Expr::c(0)]), invoke(c2, [Expr::c(0)])]);
        let seq = explore(&env, &p, &Options::default());
        let par4 = explore(&env, &p, &Options::default().with_threads(4));
        assert_eq!(seq.num_states(), par4.num_states());
        assert_eq!(seq.stats.transitions, par4.stats.transitions);
        assert_eq!(seq.deadlocks, par4.deadlocks);
        // State tables must be identical (determinism).
        for i in 0..seq.num_states() {
            assert_eq!(
                seq.state(StateId(i as u32)),
                par4.state(StateId(i as u32))
            );
        }
        // lcm(7, 5) = 35 product states.
        assert_eq!(seq.num_states(), 35);
    }

    #[test]
    fn lts_collection_matches_transition_count() {
        let env = Env::new();
        let p = choice([
            act([(cpu(), 1)], nil()),
            evt_send(Symbol::new("go"), 1, nil()),
        ]);
        let opts = Options {
            collect_lts: true,
            ..Options::default()
        };
        let ex = explore(&env, &p, &opts);
        let lts = ex.lts.as_ref().unwrap();
        let total: usize = lts.transitions.iter().map(Vec::len).sum();
        assert_eq!(total, ex.stats.transitions);
        assert_eq!(lts.transitions.len(), ex.num_states());
    }

    #[test]
    fn find_states_and_depth() {
        let env = Env::new();
        let p = act(
            [(cpu(), 1)],
            act([(cpu(), 2)], act([(cpu(), 3)], nil())),
        );
        let ex = explore(&env, &p, &Options::default());
        let nils = ex.find_states(|st| matches!(&**st, acsr::Proc::Nil));
        assert_eq!(nils.len(), 1);
        assert_eq!(ex.depth_of(nils[0]), 3);
        assert_eq!(ex.depth_of(ex.initial()), 0);
        let all = ex.find_states(|_| true);
        assert_eq!(all.len(), ex.num_states());
    }

    #[test]
    fn stats_track_levels_and_frontier() {
        let env = Env::new();
        let p = act([(cpu(), 1)], act([(cpu(), 1)], nil()));
        let ex = explore(&env, &p, &Options::default());
        assert_eq!(ex.stats.levels, 3); // two expansions + the deadlocked leaf
        assert!(ex.stats.peak_frontier >= 1);
        assert_eq!(ex.stats.states, 3);
    }

    #[test]
    fn recorder_captures_per_level_spans() {
        let env = Env::new();
        let p = act([(cpu(), 1)], act([(cpu(), 1)], nil()));
        let rec = obs::Recorder::with_clock(Box::new(obs::FakeClock::new(1)));
        let ex = explore(&env, &p, &Options::default().with_obs(rec.clone()));
        let run = rec.finish();
        let roots: Vec<_> = run.spans.iter().filter(|s| s.name == "explore").collect();
        assert_eq!(roots.len(), 1);
        assert!(roots[0].fields.contains(&("states".to_string(), 3)));
        let levels: Vec<_> = run
            .spans
            .iter()
            .filter(|s| s.name == "explore.level")
            .collect();
        assert_eq!(levels.len(), ex.stats.levels);
        for (i, lvl) in levels.iter().enumerate() {
            assert_eq!(lvl.parent, Some(roots[0].id));
            assert!(lvl.fields.contains(&("level".to_string(), i as i64 + 1)));
        }
        // Straight-line process: no state is ever rediscovered.
        assert_eq!(run.counters, vec![("explore.dedup_hits".to_string(), 0)]);
        assert_eq!(ex.stats.dedup_hits, 0);
    }

    #[test]
    fn recorder_counts_dedup_hits() {
        let mut env = Env::new();
        let p = looping(&mut env);
        let rec = obs::Recorder::enabled();
        let ex = explore(&env, &p, &Options::default().with_obs(rec.clone()));
        // The single transition loops back to the interned initial state.
        assert_eq!(ex.stats.dedup_hits, 1);
        let run = rec.finish();
        assert!(run
            .counters
            .iter()
            .any(|(k, v)| k == "explore.dedup_hits" && *v == 1));
        assert!(run
            .gauges
            .iter()
            .any(|(k, value, peak)| k == "explore.states" && *value == 1 && *peak == 1));
    }

    #[test]
    fn parallel_with_obs_matches_sequential() {
        let mut env = Env::new();
        let c1 = env.declare("Cnt", 1);
        env.set_body(
            c1,
            choice([
                guard(
                    BExpr::lt(Expr::p(0), Expr::c(30)),
                    act([(cpu(), 1)], invoke(c1, [Expr::p(0).add(Expr::c(1))])),
                ),
                guard(
                    BExpr::eq(Expr::p(0), Expr::c(30)),
                    act([(cpu(), 1)], invoke(c1, [Expr::c(0)])),
                ),
            ]),
        );
        let p = invoke(c1, [Expr::c(0)]);
        let seq = explore(&env, &p, &Options::default());
        let rec = obs::Recorder::enabled();
        let par4 = explore(
            &env,
            &p,
            &Options::default().with_threads(4).with_obs(rec.clone()),
        );
        assert_eq!(seq.num_states(), par4.num_states());
        assert_eq!(seq.stats.transitions, par4.stats.transitions);
        assert_eq!(seq.stats.dedup_hits, par4.stats.dedup_hits);
        for i in 0..seq.num_states() {
            assert_eq!(seq.state(StateId(i as u32)), par4.state(StateId(i as u32)));
        }
    }
}
