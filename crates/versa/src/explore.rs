//! Breadth-first construction of the prioritized transition system.
//!
//! States are ground ACSR terms, interned into dense [`StateId`]s. The search
//! is breadth-first so the first deadlock found yields a *shortest*
//! counterexample — the most readable failing scenario to raise back to the
//! AADL level.
//!
//! States live in a hash-consed [`TermStore`]: every term is interned to a
//! [`TermId`] whose equality *is* structural equality, and successor lists
//! are memoized per subterm by an [`StepSession`] (see [`acsr::store`] and
//! [`acsr::step`]) — revisiting the skeleton states of a periodic task model
//! costs a cache hit instead of a re-derivation.
//!
//! With [`Options::threads`] > 1 each BFS level runs an *expand-and-intern
//! pipeline*: worker threads compute prioritized successors **and** probe the
//! visited set concurrently — the set is distributed over power-of-two
//! [`Mutex`] shards keyed by bits of each term's deterministic structural
//! digest, so workers dedup their own discoveries instead of funnelling
//! every raw term through a single-threaded interner.
//! Only the *id assignment* of genuinely new states happens on the
//! coordinating thread, at a deterministic merge that walks the per-worker
//! output buffers in frontier order. Ids therefore come out in exactly the
//! order the sequential engine would produce, making parallel and sequential
//! exploration results identical — state tables, deadlock sets, statistics
//! and shortest-counterexample traces. ([`TermId`] *values* may differ
//! between racing runs; they never appear in results.)

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, TryLockError};
use std::time::{Duration, Instant};

use acsr::{Env, Interned, Label, MemoConfig, StepSession, TermId, TermStore, P};

use crate::lts::Lts;
use crate::trace::Trace;

/// Dense identifier of an interned state.
///
/// Ids are assigned in BFS discovery order, so `StateId(0)` is always the
/// initial state and lower ids are closer to it.
///
/// # Examples
///
/// ```
/// use acsr::prelude::*;
/// use versa::{explore, Options, StateId};
///
/// let env = Env::new();
/// let ex = explore(&env, &act([(Res::new("cpu"), 1)], nil()), &Options::default());
/// assert_eq!(ex.initial(), StateId(0));
/// assert_eq!(StateId(1).index(), 1);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StateId(pub u32);

impl StateId {
    /// The raw index into the exploration's state table.
    ///
    /// # Examples
    ///
    /// ```
    /// assert_eq!(versa::StateId(7).index(), 7);
    /// ```
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A cooperative cancellation token for in-flight explorations.
///
/// Cloning shares the token: hand one clone to [`Options::cancel`] and keep
/// another on the controlling thread (a request handler, a deadline watchdog,
/// a signal handler). [`CancelToken::cancel`] is sticky — there is no reset —
/// and the explorer polls it at every frontier state, so even a single
/// enormous BFS level reacts promptly. A cancelled run comes back with
/// [`Exploration::cancelled`] set and is never reported schedulable.
///
/// # Examples
///
/// ```
/// use acsr::prelude::*;
/// use versa::{explore, CancelToken, Options};
///
/// let token = CancelToken::new();
/// token.cancel();
/// let env = Env::new();
/// let p = act([(Res::new("cpu"), 1)], nil());
/// let ex = explore(&env, &p, &Options::default().with_cancel(token.clone()));
/// assert!(ex.cancelled);
/// assert!(!ex.deadlock_free()); // cancelled ⇒ no verdict, never "free"
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    ///
    /// # Examples
    ///
    /// ```
    /// let t = versa::CancelToken::new();
    /// assert!(!t.is_cancelled());
    /// ```
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent and irreversible; all clones of the
    /// token observe it.
    ///
    /// # Examples
    ///
    /// ```
    /// let t = versa::CancelToken::new();
    /// let watcher = t.clone();
    /// t.cancel();
    /// assert!(watcher.is_cancelled());
    /// ```
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Exploration options.
///
/// # Examples
///
/// ```
/// use versa::Options;
///
/// let opts = Options::default().with_threads(4).with_max_states(10_000);
/// assert_eq!(opts.threads, 4);
/// assert_eq!(opts.max_states, 10_000);
/// assert!(!opts.stop_at_first_deadlock);
/// ```
#[derive(Clone, Debug)]
pub struct Options {
    /// Abort after interning this many states (the exploration is then marked
    /// [`Exploration::truncated`]).
    pub max_states: usize,
    /// Stop as soon as the first deadlock is interned (its trace is still
    /// shortest: BFS order guarantees no shorter deadlock exists).
    pub stop_at_first_deadlock: bool,
    /// Record the full labelled transition relation (needed for [`Lts`]
    /// export; costs memory proportional to the number of transitions).
    pub collect_lts: bool,
    /// Worker threads for frontier expansion; `0` or `1` means sequential.
    pub threads: usize,
    /// Visited-set shards (rounded up to a power of two). `0` means auto:
    /// the next power of two ≥ `threads`. More shards reduce intern-time
    /// lock contention between workers; the shard count never affects
    /// exploration results, only concurrency.
    pub shards: usize,
    /// Memoize successor generation (see [`acsr::step::StepSession`]). On by
    /// default; the `--no-memo` CLI flag clears it. The memo is a pure cache
    /// — verdicts, state tables and traces are identical either way.
    pub memo: bool,
    /// Entry cap of the successor memo (FIFO eviction past it). The default
    /// is [`MemoConfig::default`]'s capacity.
    pub memo_capacity: usize,
    /// Share a pre-populated term store (e.g. the one the AADL translation
    /// interned the model through) instead of starting empty. `None` gives
    /// the run a fresh private store.
    pub store: Option<Arc<TermStore>>,
    /// Cooperative cancellation token, polled at every frontier state. The
    /// default token is private to this `Options` value and never cancelled;
    /// install a shared clone (see [`Options::with_cancel`]) to stop the run
    /// from another thread.
    pub cancel: CancelToken,
    /// Observability recorder. Disabled by default — every instrument the
    /// exploration touches is then an inert handle, so the instrumented hot
    /// path costs nothing observable (see `crates/obs`). Enable it (and
    /// optionally arm progress reporting) to get per-level spans, dedup and
    /// lock-contention counters, and the peak state-store gauge.
    pub obs: obs::Recorder,
    /// Persistent cross-run artifact store (see `crates/cas` and the
    /// `cache` module). `None` (the default) disables consulting and
    /// depositing entirely — the engine then behaves byte-identically to
    /// pre-store builds. With a store, a run whose
    /// `(model, environment, context, options)` key was deposited by an
    /// earlier run replays the recorded verdict instead of exploring.
    pub cas: Option<Arc<cas::CasStore>>,
    /// Caller context mixed into the store key — the canonical fingerprint
    /// of whatever produced `initial` (for the AADL pipeline, the canonical
    /// translation options). Two calls that differ only in this string
    /// never share artifacts.
    pub cas_context: String,
    /// Delay-abstracted (zone-based) exploration: collapse maximal forced
    /// runs — chains of states with exactly one prioritized successor —
    /// into single weighted delay steps (see the `zones` module and
    /// [`acsr::zone`]). Off by default. Verdicts, shortest counterexample
    /// traces and deadlock counts are identical to the concrete engine;
    /// explored-state counts on long-hyperperiod periodic models drop by
    /// orders of magnitude. Ignored (the concrete engine runs) when
    /// [`Options::collect_lts`] is also set — the zone graph is not the
    /// concrete transition relation, so an LTS export must not come from it.
    pub zones: bool,
    /// Zone mode only: per-quantum steps a single delay edge may span.
    /// Longer forced runs become several chained edges — the cap bounds the
    /// work between two cancellation polls and the size of any one edge's
    /// stored timeline, and doubles as the cycle horizon for closed idle
    /// loops. Any value changes only edge granularity, never verdicts,
    /// deadlock sets or trace timelines. `0` is treated as `1`.
    pub zone_cap: usize,
    /// Zone mode only: how delay edges advance time (see [`ZoneAdvance`]).
    pub zone_advance: ZoneAdvance,
}

/// How the zone engine advances time along a forced run.
///
/// Both strategies produce identical verdicts, deadlock sets and
/// counterexample timelines; they differ only in how much per-quantum work
/// the advance costs (and, for pathological cyclic runs, in edge
/// granularity). `--zone-advance` exposes the choice for honest A/B
/// measurement.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ZoneAdvance {
    /// Closed-form: factor states into shape × time vector, cache per-shape
    /// delay derivatives, and advance verified spans as vector arithmetic
    /// (see [`acsr::advance`]). Falls back to replay for non-linear or
    /// not-yet-learned shapes. The default.
    Closed,
    /// Replay every quantum through the memoized step relation
    /// ([`acsr::zone::forced_run`] — the PR 9 behaviour).
    Replay,
}

impl std::fmt::Display for ZoneAdvance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ZoneAdvance::Closed => "closed",
            ZoneAdvance::Replay => "replay",
        })
    }
}

impl Default for Options {
    fn default() -> Options {
        Options {
            max_states: usize::MAX,
            stop_at_first_deadlock: false,
            collect_lts: false,
            threads: 1,
            shards: 0,
            memo: true,
            memo_capacity: MemoConfig::default().capacity,
            store: None,
            cancel: CancelToken::new(),
            obs: obs::Recorder::disabled(),
            cas: None,
            cas_context: String::new(),
            zones: false,
            zone_cap: 4096,
            zone_advance: ZoneAdvance::Closed,
        }
    }
}

impl Options {
    /// Preset for schedulability verdicts: stop at the first deadlock.
    ///
    /// # Examples
    ///
    /// ```
    /// assert!(versa::Options::verdict().stop_at_first_deadlock);
    /// ```
    pub fn verdict() -> Options {
        Options {
            stop_at_first_deadlock: true,
            ..Options::default()
        }
    }

    /// Set the worker-thread count (`0` or `1` means sequential).
    ///
    /// # Examples
    ///
    /// ```
    /// assert_eq!(versa::Options::default().with_threads(8).threads, 8);
    /// ```
    pub fn with_threads(mut self, threads: usize) -> Options {
        self.threads = threads;
        self
    }

    /// Set the visited-set shard count (`0` = auto, values round up to a
    /// power of two).
    ///
    /// # Examples
    ///
    /// ```
    /// assert_eq!(versa::Options::default().with_shards(6).shards, 6);
    /// ```
    pub fn with_shards(mut self, shards: usize) -> Options {
        self.shards = shards;
        self
    }

    /// Set the state budget.
    ///
    /// # Examples
    ///
    /// ```
    /// assert_eq!(versa::Options::default().with_max_states(100).max_states, 100);
    /// ```
    pub fn with_max_states(mut self, max: usize) -> Options {
        self.max_states = max;
        self
    }

    /// Switch the successor memo on or off (`true` by default).
    ///
    /// # Examples
    ///
    /// ```
    /// assert!(!versa::Options::default().with_memo(false).memo);
    /// ```
    pub fn with_memo(mut self, memo: bool) -> Options {
        self.memo = memo;
        self
    }

    /// Set the successor-memo entry cap.
    ///
    /// # Examples
    ///
    /// ```
    /// assert_eq!(versa::Options::default().with_memo_capacity(64).memo_capacity, 64);
    /// ```
    pub fn with_memo_capacity(mut self, capacity: usize) -> Options {
        self.memo_capacity = capacity;
        self
    }

    /// Share an existing term store with the run.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    ///
    /// let store = Arc::new(acsr::TermStore::new());
    /// let opts = versa::Options::default().with_store(store.clone());
    /// assert!(opts.store.is_some());
    /// ```
    pub fn with_store(mut self, store: Arc<TermStore>) -> Options {
        self.store = Some(store);
        self
    }

    /// Install a shared cancellation token (see [`CancelToken`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use versa::{CancelToken, Options};
    ///
    /// let token = CancelToken::new();
    /// let opts = Options::default().with_cancel(token.clone());
    /// token.cancel();
    /// assert!(opts.cancel.is_cancelled());
    /// ```
    pub fn with_cancel(mut self, cancel: CancelToken) -> Options {
        self.cancel = cancel;
        self
    }

    /// Attach an observability recorder (see `crates/obs`). The serving
    /// layer passes a request-scoped clone ([`obs::Recorder::scoped`]) so
    /// the `explore` span tree lands under that request's anchor span,
    /// tagged with its request sequence number.
    ///
    /// # Examples
    ///
    /// ```
    /// let opts = versa::Options::default().with_obs(obs::Recorder::enabled());
    /// assert!(opts.obs.is_enabled());
    /// ```
    pub fn with_obs(mut self, obs: obs::Recorder) -> Options {
        self.obs = obs;
        self
    }

    /// Attach a persistent cross-run artifact store (see `crates/cas`).
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    ///
    /// let dir = std::env::temp_dir().join("versa-doc-cas");
    /// let store = Arc::new(cas::CasStore::open(&dir, cas::Mode::ReadWrite).unwrap());
    /// let opts = versa::Options::default().with_cas(store);
    /// assert!(opts.cas.is_some());
    /// ```
    pub fn with_cas(mut self, store: Arc<cas::CasStore>) -> Options {
        self.cas = Some(store);
        self
    }

    /// Set the caller-context string mixed into store keys (see
    /// [`Options::cas_context`]).
    ///
    /// # Examples
    ///
    /// ```
    /// let opts = versa::Options::default().with_cas_context("protocol=pcp");
    /// assert_eq!(opts.cas_context, "protocol=pcp");
    /// ```
    pub fn with_cas_context(mut self, context: impl Into<String>) -> Options {
        self.cas_context = context.into();
        self
    }

    /// Switch delay-abstracted (zone-based) exploration on or off (see
    /// [`Options::zones`]).
    ///
    /// # Examples
    ///
    /// ```
    /// assert!(versa::Options::default().with_zones(true).zones);
    /// assert!(!versa::Options::default().zones);
    /// ```
    pub fn with_zones(mut self, zones: bool) -> Options {
        self.zones = zones;
        self
    }

    /// Set the zone-mode edge cap (see [`Options::zone_cap`]).
    ///
    /// # Examples
    ///
    /// ```
    /// assert_eq!(versa::Options::default().with_zone_cap(64).zone_cap, 64);
    /// ```
    pub fn with_zone_cap(mut self, cap: usize) -> Options {
        self.zone_cap = cap;
        self
    }

    /// Set the zone-mode advance strategy (see [`ZoneAdvance`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use versa::{Options, ZoneAdvance};
    /// let o = Options::default().with_zone_advance(ZoneAdvance::Replay);
    /// assert_eq!(o.zone_advance, ZoneAdvance::Replay);
    /// ```
    pub fn with_zone_advance(mut self, advance: ZoneAdvance) -> Options {
        self.zone_advance = advance;
        self
    }

}

/// Aggregate statistics of one exploration run.
///
/// # Examples
///
/// ```
/// use acsr::prelude::*;
/// use versa::{explore, Options};
///
/// // Two timed steps to NIL: 3 states, 2 transitions, 3 BFS levels.
/// let env = Env::new();
/// let p = act([(Res::new("cpu"), 1)], act([(Res::new("cpu"), 1)], nil()));
/// let stats = explore(&env, &p, &Options::default()).stats;
/// assert_eq!((stats.states, stats.transitions, stats.levels), (3, 2, 3));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Number of interned states.
    pub states: usize,
    /// Number of transitions traversed (post-prioritization).
    pub transitions: usize,
    /// Number of deadlocked states found.
    pub deadlocks: usize,
    /// Largest BFS frontier encountered.
    pub peak_frontier: usize,
    /// Number of BFS levels expanded (the depth reached).
    pub levels: usize,
    /// Transitions whose target state was already interned — cross- and
    /// back-edges merged by the visited set. `transitions - dedup_hits` is
    /// the number of *fresh* discoveries (≈ `states - 1`).
    pub dedup_hits: usize,
    /// Successor lists served from the step memo (0 with the memo off; in
    /// parallel runs the split between hits and misses can vary run to run —
    /// the *results* never do).
    pub memo_hits: u64,
    /// Successor lists derived fresh by the step memo.
    pub memo_misses: u64,
    /// Memo entries dropped by the FIFO capacity bound.
    pub memo_evictions: u64,
    /// Structurally-unique subterms interned into the run's term store by the
    /// end of the exploration.
    pub unique_subterms: usize,
    /// Wall-clock duration of the exploration.
    pub duration: Duration,
}

impl fmt::Display for Stats {
    /// One-line summary of the run, suitable for tool output.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// let env = Env::new();
    /// let p = act([(Res::new("cpu"), 1)], act([(Res::new("cpu"), 1)], nil()));
    /// let line = explore(&env, &p, &Options::default()).stats.to_string();
    /// assert!(line.starts_with("3 states, 2 transitions"));
    /// assert!(line.contains("3 levels"));
    /// assert!(line.contains("0 dedup hits"));
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} transitions, {} levels, peak frontier {}, \
             {} dedup hits, {} deadlock(s) in {:?}",
            self.states,
            self.transitions,
            self.levels,
            self.peak_frontier,
            self.dedup_hits,
            self.deadlocks,
            self.duration
        )
    }
}

impl Stats {
    /// Serialize as 11 little-endian `u64`s (the ten counts in declaration
    /// order, then the duration in nanoseconds) — the fixed-width form the
    /// `cas` artifact payload and the daemon's drain-persist snapshot embed.
    ///
    /// # Examples
    ///
    /// ```
    /// let stats = versa::Stats { states: 7, ..Default::default() };
    /// let bytes = stats.to_bytes();
    /// assert_eq!(versa::Stats::from_bytes(&bytes).unwrap().states, 7);
    /// ```
    pub fn to_bytes(&self) -> [u8; 88] {
        let words: [u64; 11] = [
            self.states as u64,
            self.transitions as u64,
            self.deadlocks as u64,
            self.peak_frontier as u64,
            self.levels as u64,
            self.dedup_hits as u64,
            self.memo_hits,
            self.memo_misses,
            self.memo_evictions,
            self.unique_subterms as u64,
            u64::try_from(self.duration.as_nanos()).unwrap_or(u64::MAX),
        ];
        let mut out = [0u8; 88];
        for (chunk, w) in out.chunks_exact_mut(8).zip(words) {
            chunk.copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Inverse of [`Stats::to_bytes`]. `None` unless `bytes` is exactly 88
    /// bytes (or a count overflows `usize` on this platform).
    ///
    /// # Examples
    ///
    /// ```
    /// assert!(versa::Stats::from_bytes(&[0u8; 17]).is_none());
    /// assert!(versa::Stats::from_bytes(&[0u8; 88]).is_some());
    /// ```
    pub fn from_bytes(bytes: &[u8]) -> Option<Stats> {
        if bytes.len() != 88 {
            return None;
        }
        let mut words = [0u64; 11];
        for (chunk, w) in bytes.chunks_exact(8).zip(words.iter_mut()) {
            *w = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        }
        Some(Stats {
            states: usize::try_from(words[0]).ok()?,
            transitions: usize::try_from(words[1]).ok()?,
            deadlocks: usize::try_from(words[2]).ok()?,
            peak_frontier: usize::try_from(words[3]).ok()?,
            levels: usize::try_from(words[4]).ok()?,
            dedup_hits: usize::try_from(words[5]).ok()?,
            memo_hits: words[6],
            memo_misses: words[7],
            memo_evictions: words[8],
            unique_subterms: usize::try_from(words[9]).ok()?,
            duration: Duration::from_nanos(words[10]),
        })
    }
}

/// The result of exploring a model.
///
/// # Examples
///
/// ```
/// use acsr::prelude::*;
/// use versa::{explore, Options};
///
/// let env = Env::new();
/// let ex = explore(&env, &act([(Res::new("cpu"), 1)], nil()), &Options::default());
/// assert_eq!(ex.num_states(), 2);
/// assert!(!ex.deadlock_free()); // NIL has no steps
/// assert!(!ex.truncated);
/// ```
/// The endpoint of a [`ZoneSeg`]: a materialized term, or a virtual
/// `(template, vector)` pair rebuilt syntactically on demand (interior
/// segment ends of closed-form runs are never interned by the engine).
#[derive(Clone, Debug)]
pub(crate) enum ZoneEnd {
    Real(P),
    Virt { template: P, values: Arc<Vec<i64>> },
}

impl ZoneEnd {
    /// The endpoint as a term, rebuilding if virtual. Virtual ends were
    /// produced by the closed-form engine inside a verified run, so the
    /// rebuild is exactly the state a unit replay would have reached.
    pub(crate) fn materialize(&self) -> P {
        match self {
            ZoneEnd::Real(p) => p.clone(),
            ZoneEnd::Virt { template, values } => acsr::skeleton::rebuild(template, values)
                .expect("virtual zone state must rebuild within its shape"),
        }
    }
}

/// One segment of a zone-mode delay edge (see [`Exploration::zone_edges`]).
#[derive(Clone, Debug)]
pub(crate) enum ZoneSeg {
    /// A concretely replayed step.
    Unit(Label, P),
    /// A verified closed-form span: `len` forced timed steps, all labelled
    /// `label`; the `k`-th interior state is the segment's source state
    /// rebuilt at `vector + k·delta` (see [`acsr::skeleton`]).
    Span {
        label: Label,
        delta: Arc<Vec<i64>>,
        len: u64,
        end: ZoneEnd,
    },
    /// A macro-served forced step (a release-boundary exit or cascade step
    /// advanced in the vector domain; see [`acsr::runner`]).
    Jump { label: Label, end: ZoneEnd },
}

impl ZoneSeg {
    /// Concrete steps this segment stands for.
    pub(crate) fn weight(&self) -> u64 {
        match self {
            ZoneSeg::Unit(..) | ZoneSeg::Jump { .. } => 1,
            ZoneSeg::Span { len, .. } => *len,
        }
    }
}

#[derive(Clone, Debug)]
pub struct Exploration {
    pub(crate) states: Vec<P>,
    /// Predecessor of each state in BFS order (`None` for the initial state).
    pub(crate) parents: Vec<Option<(StateId, Label)>>,
    /// Zone mode only: the segments of the delay edge into each state,
    /// parallel to `parents` (`None` for unit edges; the last segment's
    /// target equals the materialized target). Replayed quanta are stored as
    /// [`ZoneSeg::Unit`] steps; closed-form spans keep only their derivative
    /// and length ([`ZoneSeg::Span`]) and re-materialize interior states
    /// syntactically on demand. The concrete engine leaves this empty,
    /// making every trace query below behave exactly as before.
    pub(crate) zone_edges: Vec<Option<Vec<ZoneSeg>>>,
    /// Deadlocked states (no outgoing prioritized transitions), in discovery
    /// order.
    pub deadlocks: Vec<StateId>,
    /// The labelled transition relation, when requested.
    pub lts: Option<Lts>,
    /// Run statistics.
    pub stats: Stats,
    /// True when `max_states` stopped the search before exhausting the space.
    pub truncated: bool,
    /// True when the run was stopped by its [`CancelToken`] before
    /// exhausting the space. A cancelled exploration is partial: whatever
    /// states were interned before the token fired are present, but no
    /// verdict can be drawn from their absence of deadlocks.
    pub cancelled: bool,
}

impl Exploration {
    /// The initial state (always id 0).
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options, StateId};
    ///
    /// let ex = explore(&Env::new(), &nil(), &Options::default());
    /// assert_eq!(ex.initial(), StateId(0));
    /// ```
    pub fn initial(&self) -> StateId {
        StateId(0)
    }

    /// Number of interned states.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// let ex = explore(&Env::new(), &nil(), &Options::default());
    /// assert_eq!(ex.num_states(), 1);
    /// ```
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// The term of a state.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// let ex = explore(&Env::new(), &nil(), &Options::default());
    /// assert!(matches!(&**ex.state(ex.initial()), acsr::Proc::Nil));
    /// ```
    pub fn state(&self, id: StateId) -> &P {
        &self.states[id.index()]
    }

    /// True iff no deadlock was found (and the exploration completed).
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// // NIL deadlocks immediately; an idling loop never does.
    /// assert!(!explore(&Env::new(), &nil(), &Options::default()).deadlock_free());
    /// let mut env = Env::new();
    /// let d = env.declare("Idle", 0);
    /// env.set_body(d, act([] as [(Res, i32); 0], invoke(d, [])));
    /// assert!(explore(&env, &invoke(d, []), &Options::default()).deadlock_free());
    /// ```
    pub fn deadlock_free(&self) -> bool {
        self.deadlocks.is_empty() && !self.truncated && !self.cancelled
    }

    /// Reconstruct the (shortest) trace from the initial state to `target`.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// let env = Env::new();
    /// let p = act([(Res::new("cpu"), 1)], nil());
    /// let ex = explore(&env, &p, &Options::default());
    /// let dead = ex.deadlocks[0];
    /// assert_eq!(ex.trace_to(dead).len(), 1);
    /// ```
    pub fn trace_to(&self, target: StateId) -> Trace {
        let mut path: Vec<StateId> = Vec::new();
        let mut cur = target;
        while self.parents[cur.index()].is_some() {
            path.push(cur);
            let (parent, _) = self.parents[cur.index()].as_ref().expect("just checked");
            cur = *parent;
        }
        path.reverse();
        // Zone mode: delay edges re-expand to their per-quantum timelines,
        // with interior states appended to the trace's own state table (they
        // were deliberately never materialized in `self.states`). Concrete
        // mode has no zone edges and this is the plain parent walk.
        let mut states = self.states.clone();
        let mut steps: Vec<(Label, StateId)> = Vec::with_capacity(path.len());
        for to in path {
            match self.zone_edges.get(to.index()).and_then(|e| e.as_ref()) {
                Some(edge) => {
                    let (parent, _) = self.parents[to.index()].as_ref().expect("on path");
                    let mut cur: P = states[parent.index()].clone();
                    let n = edge.len();
                    for (i, seg) in edge.iter().enumerate() {
                        let seg_last = i + 1 == n;
                        match seg {
                            ZoneSeg::Unit(label, p) => {
                                if seg_last {
                                    steps.push((label.clone(), to));
                                } else {
                                    states.push(p.clone());
                                    steps.push((label.clone(), StateId((states.len() - 1) as u32)));
                                    cur = p.clone();
                                }
                            }
                            ZoneSeg::Span {
                                label,
                                delta,
                                len,
                                end,
                            } => {
                                // Interior states of a closed-form span are
                                // rebuilt syntactically from the segment's
                                // source: the span was verified against the
                                // step relation when it was recorded, so the
                                // rebuilds are exactly the states a unit
                                // replay would have produced.
                                let f = acsr::skeleton::factor(&cur);
                                for k in 1..*len {
                                    let v: Vec<i64> = f
                                        .values
                                        .iter()
                                        .zip(delta.iter())
                                        .map(|(a, d)| a + d * k as i64)
                                        .collect();
                                    let p = acsr::skeleton::rebuild(&cur, &v)
                                        .expect("span vectors stay within the shape");
                                    states.push(p.clone());
                                    steps.push((label.clone(), StateId((states.len() - 1) as u32)));
                                }
                                if seg_last {
                                    steps.push((label.clone(), to));
                                } else {
                                    let t = end.materialize();
                                    states.push(t.clone());
                                    steps.push((label.clone(), StateId((states.len() - 1) as u32)));
                                    cur = t;
                                }
                            }
                            ZoneSeg::Jump { label, end } => {
                                if seg_last {
                                    steps.push((label.clone(), to));
                                } else {
                                    let t = end.materialize();
                                    states.push(t.clone());
                                    steps.push((label.clone(), StateId((states.len() - 1) as u32)));
                                    cur = t;
                                }
                            }
                        }
                    }
                }
                None => {
                    let (_, label) = self.parents[to.index()].as_ref().expect("on path");
                    steps.push((label.clone(), to));
                }
            }
        }
        Trace {
            initial: StateId(0),
            steps,
            states,
        }
    }

    /// The trace to the first deadlock found, if any.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// let env = Env::new();
    /// let ex = explore(&env, &act([(Res::new("cpu"), 1)], nil()), &Options::default());
    /// assert_eq!(ex.first_deadlock_trace().unwrap().elapsed_quanta(), 1);
    /// ```
    pub fn first_deadlock_trace(&self) -> Option<Trace> {
        self.deadlocks.first().map(|&d| self.trace_to(d))
    }

    /// All states whose term satisfies `pred`, in BFS (shortest-distance)
    /// order. Useful for reachability queries beyond deadlock detection —
    /// e.g. "is any state with the queue at capacity reachable?".
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// let env = Env::new();
    /// let ex = explore(&env, &act([(Res::new("cpu"), 1)], nil()), &Options::default());
    /// let nils = ex.find_states(|p| matches!(&**p, acsr::Proc::Nil));
    /// assert_eq!(nils.len(), 1);
    /// ```
    pub fn find_states(&self, mut pred: impl FnMut(&P) -> bool) -> Vec<StateId> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, p)| pred(p))
            .map(|(i, _)| StateId(i as u32))
            .collect()
    }

    /// BFS depth of a state: the number of steps on its shortest trace.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use versa::{explore, Options};
    ///
    /// let env = Env::new();
    /// let ex = explore(&env, &act([(Res::new("cpu"), 1)], nil()), &Options::default());
    /// assert_eq!(ex.depth_of(ex.initial()), 0);
    /// assert_eq!(ex.depth_of(ex.deadlocks[0]), 1);
    /// ```
    pub fn depth_of(&self, id: StateId) -> usize {
        let mut depth = 0;
        let mut cur = id;
        while let Some((parent, _)) = &self.parents[cur.index()] {
            // A zone-mode delay edge counts its full per-quantum length, so
            // depths agree with the concrete engine's step counts.
            depth += self
                .zone_edges
                .get(cur.index())
                .and_then(|e| e.as_ref())
                .map_or(1, |segs| {
                    segs.iter().map(|s| s.weight() as usize).sum()
                });
            cur = *parent;
        }
        depth
    }
}

/// Explore the prioritized transition system of `initial` under `env`.
///
/// # Examples
///
/// ```
/// use acsr::prelude::*;
/// use versa::{explore, Options};
///
/// // A choice between a 1-step and a 2-step path to NIL: BFS finds the
/// // shortest deadlock first.
/// let env = Env::new();
/// let p = choice([
///     act([(Res::new("cpu"), 1)], nil()),
///     act([(Res::new("bus"), 1)], act([(Res::new("cpu"), 1)], nil())),
/// ]);
/// let ex = explore(&env, &p, &Options::default());
/// assert_eq!(ex.first_deadlock_trace().unwrap().len(), 1);
/// ```
pub fn explore(env: &Env, initial: &P, opts: &Options) -> Exploration {
    explore_with_id_limit(env, initial, opts, ID_LIMIT)
}

/// State ids are dense `u32`s; a run that would intern more states than this
/// is truncated gracefully (never a panic — [`Exploration::truncated`] is
/// set, which the CLI reports as verdict "unknown", exit code 3).
const ID_LIMIT: usize = u32::MAX as usize;

/// A visited-set entry.
#[derive(Copy, Clone, Debug)]
enum Slot {
    /// Interned with its final id (a previous level, or already merged).
    Final(StateId),
    /// Claimed during the current level's expansion by `(worker, slot)`;
    /// the id is assigned at the deterministic merge.
    Pending { worker: u32, slot: u32 },
}

/// The concurrent visited set: `TermId → Slot` distributed over power-of-two
/// `Mutex` shards selected by the low bits of each term's *deterministic
/// structural digest* (never the id — ids depend on interning races, the
/// digest does not, so the shard a state lands in is reproducible run to
/// run). Keys are plain `u32` ids: probing is an integer hash, with no deep
/// comparison anywhere — structural equality was already decided by the term
/// store.
struct Visited {
    shards: Vec<Mutex<HashMap<TermId, Slot>>>,
    mask: u64,
}

impl Visited {
    fn new(shards: usize) -> Visited {
        let n = shards.max(1).next_power_of_two();
        Visited {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: (n - 1) as u64,
        }
    }

    fn shard(&self, digest: u64) -> &Mutex<HashMap<TermId, Slot>> {
        &self.shards[(digest & self.mask) as usize]
    }

    /// The worker-side intern probe: an existing entry is returned; a vacant
    /// one is claimed as [`Slot::Pending`] for `(worker, slot)` and `None`
    /// comes back. `contended` is a lock-wait proxy: one tick per `try_lock`
    /// that would have blocked.
    fn probe_or_pend(
        &self,
        t: &Interned,
        worker: u32,
        slot: u32,
        contended: &obs::Counter,
    ) -> Option<Slot> {
        let shard = self.shard(t.digest());
        let mut guard = match shard.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                contended.inc();
                shard.lock().expect("visited shard poisoned")
            }
            Err(TryLockError::Poisoned(_)) => panic!("visited shard poisoned"),
        };
        match guard.entry(t.id()) {
            Entry::Occupied(e) => Some(*e.get()),
            Entry::Vacant(v) => {
                v.insert(Slot::Pending { worker, slot });
                None
            }
        }
    }

    /// The merge-side finalization: overwrite a [`Slot::Pending`] claim with
    /// its deterministically assigned id. O(1): an integer-keyed map probe.
    fn finalize(&self, t: &Interned, id: StateId) {
        let mut guard = self
            .shard(t.digest())
            .lock()
            .expect("visited shard poisoned");
        *guard.get_mut(&t.id()).expect("pending entry present") = Slot::Final(id);
    }

    /// Per-shard entry counts (for the occupancy histogram).
    fn occupancy(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.lock().expect("visited shard poisoned").len())
            .collect()
    }
}

/// A probed successor, as recorded by an expansion worker.
#[derive(Copy, Clone, Debug)]
enum Target {
    /// Already interned before this level started.
    Known(StateId),
    /// First discovered during this level; the term lives in the claiming
    /// worker's `fresh` buffer and gets its id at the merge.
    New { worker: u32, slot: u32 },
}

/// One worker's share of an expand-and-intern level: successor lists aligned
/// with its chunk of the frontier, every target already probed against the
/// visited set, plus the terms this worker claimed first.
struct WorkerOut {
    succs: Vec<Vec<(Label, Target)>>,
    fresh: Vec<Interned>,
}

/// Expand `ids` (a frontier chunk, in frontier order) and intern every
/// successor against the sharded visited set. Successors come back from the
/// [`StepSession`] already interned (and, on a memo hit, without any
/// derivation at all). Runs on worker threads in parallel mode and inline
/// (as worker 0) in sequential mode — one code path, so the engines cannot
/// drift apart.
fn expand_chunk(
    session: &StepSession<'_>,
    states: &[Interned],
    ids: &[StateId],
    visited: &Visited,
    worker: u32,
    shard_contended: &obs::Counter,
    cancel: &CancelToken,
) -> WorkerOut {
    let mut fresh: Vec<Interned> = Vec::new();
    let mut succs = Vec::with_capacity(ids.len());
    for id in ids {
        // Cooperative cancellation point: a fired token abandons the rest of
        // the chunk. The partial output is safe because the caller discards
        // the whole level (no merge) when the token is observed set.
        if cancel.is_cancelled() {
            break;
        }
        succs.push(
            session
                .prioritized_steps(&states[id.index()])
                .into_iter()
                .map(|(label, t)| {
                    let slot = fresh.len() as u32;
                    let target = match visited.probe_or_pend(&t, worker, slot, shard_contended) {
                        Some(Slot::Final(sid)) => Target::Known(sid),
                        Some(Slot::Pending { worker, slot }) => Target::New { worker, slot },
                        None => {
                            fresh.push(t);
                            Target::New { worker, slot }
                        }
                    };
                    (label, target)
                })
                .collect(),
        );
    }
    WorkerOut { succs, fresh }
}

/// The engine behind [`explore`], with the id-space ceiling as a parameter
/// so tests can exercise the graceful-truncation path without interning
/// four billion states.
fn explore_with_id_limit(env: &Env, initial: &P, opts: &Options, id_limit: usize) -> Exploration {
    // Delay-abstracted mode: hand the whole search to the zone engine. An
    // LTS request forces the concrete engine regardless — the zone graph's
    // delay edges are not the concrete transition relation.
    if opts.zones && !opts.collect_lts {
        return crate::zones::explore_zones(env, initial, opts, id_limit.max(1).min(ID_LIMIT));
    }
    let start = Instant::now();
    let id_limit = id_limit.max(1).min(ID_LIMIT);

    // Cross-run artifact store: consult before exploring. A hit replays the
    // recorded verdict (and trace skeleton) instead of searching; anything
    // short of a byte-perfect, semantics-matching artifact counts an
    // invalidation and falls through to the full exploration below, which
    // then overwrites the entry.
    let cas_key = crate::cache::key_for(env, initial, opts, id_limit);
    if let (Some(key), Some(artifacts)) = (&cas_key, &opts.cas) {
        match artifacts.get(key) {
            cas::Lookup::Hit(payload) => {
                let replayed = crate::cache::decode(&payload)
                    .and_then(|a| crate::cache::replay(env, initial, &a, opts, start));
                match replayed {
                    Some(ex) => {
                        opts.obs.counter("cas.hits").inc();
                        return ex;
                    }
                    None => opts.obs.counter("cas.invalidations").inc(),
                }
            }
            cas::Lookup::Miss => opts.obs.counter("cas.misses").inc(),
            cas::Lookup::Invalid => opts.obs.counter("cas.invalidations").inc(),
        }
    }

    let run_span = opts.obs.span("explore");
    let dedup_counter = opts.obs.counter("explore.dedup_hits");
    let states_gauge = opts.obs.gauge("explore.states");
    let threads = opts.threads.max(1);
    let visited = Visited::new(if opts.shards == 0 { threads } else { opts.shards });
    let store = opts
        .store
        .clone()
        .unwrap_or_else(|| Arc::new(TermStore::new()));
    let memo_config = if opts.memo {
        MemoConfig::with_capacity(opts.memo_capacity)
    } else {
        MemoConfig::disabled()
    };
    let session = StepSession::new(env, store.clone(), memo_config);

    // Parallel-only instruments, registered once per run (not once per
    // level): the contention counters are inherently racy, so sequential
    // runs never carry them and stay byte-deterministic.
    let inert = obs::Counter::default();
    let (worker_expanded, out_contended, shard_contended, chunk_hist) = if threads > 1 {
        (
            (0..threads)
                .map(|ci| opts.obs.counter(&format!("explore.worker.{ci}.expanded")))
                .collect::<Vec<_>>(),
            opts.obs.counter("explore.lock_contention"),
            opts.obs.counter("explore.shard_contention"),
            opts.obs.histogram("explore.worker_chunk"),
        )
    } else {
        (
            Vec::new(),
            obs::Counter::default(),
            obs::Counter::default(),
            obs::Histogram::default(),
        )
    };

    let mut states: Vec<Interned> = Vec::new();
    let mut parents: Vec<Option<(StateId, Label)>> = Vec::new();
    let mut deadlocks: Vec<StateId> = Vec::new();
    let mut lts_transitions: Vec<Vec<(Label, StateId)>> = Vec::new();
    let mut stats = Stats::default();
    let mut truncated = false;
    let mut cancelled = false;

    let root = StateId(0);
    let root_t = session.intern(initial);
    visited
        .shard(root_t.digest())
        .lock()
        .expect("visited shard poisoned")
        .insert(root_t.id(), Slot::Final(root));
    states.push(root_t);
    parents.push(None);

    let mut frontier: Vec<StateId> = vec![root];
    while !frontier.is_empty() {
        if opts.cancel.is_cancelled() {
            cancelled = true;
            break;
        }
        stats.levels += 1;
        stats.peak_frontier = stats.peak_frontier.max(frontier.len());
        let level_span = run_span.child("explore.level");
        let mut level_discovered = 0usize;
        let mut level_deduped = 0usize;
        let mut level_transitions = 0usize;
        let mut stop = false;

        // Phase 1 — expand-and-intern. Workers compute prioritized
        // successors and probe/claim the sharded visited set concurrently;
        // only wide frontiers pay for spawning (narrow levels, including the
        // startup ramp, run inline through the same chunk code).
        let outs: Vec<WorkerOut> = if threads > 1 && frontier.len() >= 4 * threads {
            let chunk = frontier.len().div_ceil(threads);
            let collected: Mutex<Vec<(usize, WorkerOut)>> = Mutex::new(Vec::with_capacity(threads));
            std::thread::scope(|s| {
                for (ci, ids) in frontier.chunks(chunk).enumerate() {
                    let collected = &collected;
                    let visited = &visited;
                    let states = &states[..];
                    let session = &session;
                    let out_contended = &out_contended;
                    let shard_contended = &shard_contended;
                    let expanded = worker_expanded[ci].clone();
                    chunk_hist.observe(ids.len() as u64);
                    let cancel = &opts.cancel;
                    s.spawn(move || {
                        let out = expand_chunk(
                            session,
                            states,
                            ids,
                            visited,
                            ci as u32,
                            shard_contended,
                            cancel,
                        );
                        expanded.add(out.succs.len() as u64);
                        let mut guard = match collected.try_lock() {
                            Ok(guard) => guard,
                            Err(TryLockError::WouldBlock) => {
                                out_contended.inc();
                                collected.lock().expect("expansion lock poisoned")
                            }
                            Err(TryLockError::Poisoned(_)) => panic!("expansion lock poisoned"),
                        };
                        guard.push((ci, out));
                    });
                }
            });
            let mut chunks = collected.into_inner().expect("expansion lock poisoned");
            chunks.sort_unstable_by_key(|(ci, _)| *ci);
            chunks.into_iter().map(|(_, out)| out).collect()
        } else {
            vec![expand_chunk(
                &session,
                &states,
                &frontier,
                &visited,
                0,
                &inert,
                &opts.cancel,
            )]
        };

        // A token that fired mid-expansion leaves partial worker output
        // (chunks cut short, pending visited-set claims never finalized);
        // discard the level wholesale rather than merge an inconsistent view.
        if opts.cancel.is_cancelled() {
            cancelled = true;
            level_span.end();
            break;
        }

        // Phase 2 — deterministic merge, in frontier order across the chunk
        // boundaries. Fresh states get their ids *here*, in exactly the
        // order the sequential engine would assign them; which worker won
        // the concurrent claim is invisible in the result.
        let mut remap: Vec<Vec<Option<StateId>>> =
            outs.iter().map(|out| vec![None; out.fresh.len()]).collect();
        let mut next: Vec<StateId> = Vec::new();
        let mut fi = 0usize;
        'level: for out in &outs {
            for succs in &out.succs {
                let id = frontier[fi];
                fi += 1;
                if succs.is_empty() {
                    deadlocks.push(id);
                    stats.deadlocks += 1;
                    if opts.stop_at_first_deadlock {
                        stop = true;
                        break 'level;
                    }
                }
                if opts.collect_lts && lts_transitions.len() <= id.index() {
                    lts_transitions.resize(id.index() + 1, Vec::new());
                }
                for (label, target) in succs {
                    stats.transitions += 1;
                    level_transitions += 1;
                    let (sid, fresh) = match *target {
                        Target::Known(sid) => (sid, false),
                        Target::New { worker, slot } => {
                            let (w, sl) = (worker as usize, slot as usize);
                            match remap[w][sl] {
                                Some(sid) => (sid, false),
                                None => {
                                    if states.len() >= id_limit {
                                        // Id space exhausted: stop interning
                                        // and report a truncated (verdict
                                        // "unknown") run instead of dying.
                                        truncated = true;
                                        stop = true;
                                        break 'level;
                                    }
                                    let sid = StateId(states.len() as u32);
                                    remap[w][sl] = Some(sid);
                                    let t = &outs[w].fresh[sl];
                                    visited.finalize(t, sid);
                                    states.push(t.clone());
                                    parents.push(Some((id, label.clone())));
                                    next.push(sid);
                                    (sid, true)
                                }
                            }
                        }
                    };
                    if opts.collect_lts {
                        lts_transitions[id.index()].push((label.clone(), sid));
                    }
                    if fresh {
                        level_discovered += 1;
                    } else {
                        stats.dedup_hits += 1;
                        level_deduped += 1;
                    }
                }
                if states.len() >= opts.max_states {
                    truncated = true;
                    stop = true;
                    break 'level;
                }
            }
        }

        level_span.set("level", stats.levels as i64);
        level_span.set("frontier", frontier.len() as i64);
        level_span.set("discovered", level_discovered as i64);
        level_span.set("deduped", level_deduped as i64);
        level_span.set("transitions", level_transitions as i64);
        level_span.set("states_total", states.len() as i64);
        level_span.end();
        dedup_counter.add(level_deduped as u64);
        states_gauge.set(states.len() as i64);
        opts.obs.progress(
            states.len() as u64,
            stats.levels as u64,
            frontier.len() as u64,
        );
        if stop {
            break;
        }
        frontier = next;
    }

    stats.states = states.len();
    let memo = session.memo_stats();
    stats.memo_hits = memo.hits;
    stats.memo_misses = memo.misses;
    stats.memo_evictions = memo.evictions;
    stats.unique_subterms = store.len();
    stats.duration = start.elapsed();
    run_span.set("states", stats.states as i64);
    run_span.set("transitions", stats.transitions as i64);
    run_span.set("levels", stats.levels as i64);
    run_span.set("peak_frontier", stats.peak_frontier as i64);
    run_span.set("deadlocks", stats.deadlocks as i64);
    run_span.set("truncated", i64::from(truncated));
    if cancelled {
        // Only stamped when set, so uncancelled runs (the entire pre-daemon
        // corpus, including the golden timelines) keep their byte-identical
        // reports.
        run_span.set("cancelled", 1);
    }
    run_span.set("shards", visited.shards.len() as i64);
    opts.obs.counter("step.memo_hits").add(stats.memo_hits);
    opts.obs.counter("step.memo_misses").add(stats.memo_misses);
    opts.obs
        .counter("step.memo_evictions")
        .add(stats.memo_evictions);
    opts.obs
        .gauge("term.unique_subterms")
        .set(stats.unique_subterms as i64);
    if opts.obs.is_enabled() {
        let occupancy = opts.obs.histogram("explore.shard_occupancy");
        for entries in visited.occupancy() {
            occupancy.observe(entries as u64);
        }
    }
    run_span.end();

    // Deposit the finished run for the next process. Cancelled runs are
    // partial (no verdict) and deposit nothing; a failed encode or write
    // degrades to "no cache", never to an error.
    if let (Some(key), Some(artifacts)) = (&cas_key, &opts.cas) {
        if !cancelled {
            let payload = crate::cache::encode(
                env, &session, &states, &parents, &deadlocks, &stats, truncated,
            );
            if let Some(payload) = payload {
                if matches!(artifacts.put(key, &payload), Ok(true)) {
                    opts.obs.counter("cas.writes").inc();
                }
            }
        }
    }

    let lts = opts.collect_lts.then(|| {
        lts_transitions.resize(states.len(), Vec::new());
        Lts {
            initial: root,
            transitions: lts_transitions,
        }
    });
    Exploration {
        states: states.into_iter().map(Interned::into_term).collect(),
        parents,
        zone_edges: Vec::new(),
        deadlocks,
        lts,
        stats,
        truncated,
        cancelled,
    }
}

/// Convenience: explore and return whether the model is deadlock-free
/// together with the exploration (used by the schedulability front end).
///
/// # Examples
///
/// ```
/// use acsr::prelude::*;
/// use versa::{explore, Options};
///
/// let env = Env::new();
/// let (free, ex) = versa::explore::deadlock_free(&env, &nil(), &Options::default());
/// assert!(!free);
/// assert_eq!(ex.deadlocks.len(), 1);
/// ```
pub fn deadlock_free(env: &Env, initial: &P, opts: &Options) -> (bool, Exploration) {
    let ex = explore(env, initial, opts);
    (ex.deadlock_free(), ex)
}

/// Keep `Arc` in the public signature out of rustdoc's way.
#[doc(hidden)]
pub type State = Arc<acsr::Proc>;

#[cfg(test)]
mod tests {
    use super::*;
    use acsr::prelude::*;

    fn cpu() -> Res {
        Res::new("cpu")
    }

    /// P = {(cpu,1)} : P — a one-state loop.
    fn looping(env: &mut Env) -> P {
        let d = env.declare("Looper", 0);
        env.set_body(d, act([(cpu(), 1)], invoke(d, [])));
        invoke(d, [])
    }

    #[test]
    fn loop_explores_to_fixpoint() {
        let mut env = Env::new();
        let p = looping(&mut env);
        let ex = explore(&env, &p, &Options::default());
        // Invoke state + its unfolding successor (the invocation again) — the
        // residual of the prefix is the invocation, so there is exactly 1 state.
        assert_eq!(ex.num_states(), 1);
        assert!(ex.deadlock_free());
        assert_eq!(ex.stats.transitions, 1);
    }

    #[test]
    fn finite_process_deadlocks_at_the_end() {
        let env = Env::new();
        let p = act([(cpu(), 1)], act([(cpu(), 1)], nil()));
        let ex = explore(&env, &p, &Options::default());
        assert_eq!(ex.num_states(), 3);
        assert_eq!(ex.deadlocks.len(), 1);
        let t = ex.first_deadlock_trace().unwrap();
        assert_eq!(t.steps.len(), 2);
        assert!(t.steps.iter().all(|(l, _)| l.is_timed()));
    }

    #[test]
    fn bfs_finds_shortest_deadlock() {
        let env = Env::new();
        // Choice between a 1-step path to NIL and a 3-step path to NIL.
        let long = act([(cpu(), 1)], act([(cpu(), 2)], act([(cpu(), 3)], nil())));
        let short = act([(Res::new("bus"), 1)], nil());
        let p = choice([long, short]);
        let ex = explore(&env, &p, &Options::default());
        let t = ex.first_deadlock_trace().unwrap();
        assert_eq!(t.steps.len(), 1);
    }

    #[test]
    fn stop_at_first_deadlock_stops_early() {
        let env = Env::new();
        let p = choice([
            act([(cpu(), 1)], nil()),
            act([(Res::new("bus"), 1)], act([(cpu(), 1)], nil())),
        ]);
        let ex = explore(&env, &p, &Options::verdict());
        assert_eq!(ex.deadlocks.len(), 1);
    }

    #[test]
    fn max_states_truncates() {
        let mut env = Env::new();
        // Counter that never repeats a state: C(n) = {(cpu,1)}:C(n+1).
        let d = env.declare("Counter", 1);
        env.set_body(
            d,
            act([(cpu(), 1)], invoke(d, [Expr::p(0).add(Expr::c(1))])),
        );
        let p = invoke(d, [Expr::c(0)]);
        let ex = explore(&env, &p, &Options::default().with_max_states(100));
        assert!(ex.truncated);
        assert_eq!(ex.num_states(), 100);
        assert!(!ex.deadlock_free());
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut env = Env::new();
        // Two counters modulo different bases in parallel: product space.
        let c1 = env.declare("C1", 1);
        env.set_body(
            c1,
            choice([
                guard(
                    BExpr::lt(Expr::p(0), Expr::c(6)),
                    act([(cpu(), 1)], invoke(c1, [Expr::p(0).add(Expr::c(1))])),
                ),
                guard(
                    BExpr::eq(Expr::p(0), Expr::c(6)),
                    act([(cpu(), 1)], invoke(c1, [Expr::c(0)])),
                ),
            ]),
        );
        let c2 = env.declare("C2", 1);
        env.set_body(
            c2,
            choice([
                guard(
                    BExpr::lt(Expr::p(0), Expr::c(4)),
                    act([(Res::new("bus"), 1)], invoke(c2, [Expr::p(0).add(Expr::c(1))])),
                ),
                guard(
                    BExpr::eq(Expr::p(0), Expr::c(4)),
                    act([(Res::new("bus"), 1)], invoke(c2, [Expr::c(0)])),
                ),
            ]),
        );
        let p = par([invoke(c1, [Expr::c(0)]), invoke(c2, [Expr::c(0)])]);
        let seq = explore(&env, &p, &Options::default());
        let par4 = explore(&env, &p, &Options::default().with_threads(4));
        assert_eq!(seq.num_states(), par4.num_states());
        assert_eq!(seq.stats.transitions, par4.stats.transitions);
        assert_eq!(seq.deadlocks, par4.deadlocks);
        // State tables must be identical (determinism).
        for i in 0..seq.num_states() {
            assert_eq!(
                seq.state(StateId(i as u32)),
                par4.state(StateId(i as u32))
            );
        }
        // lcm(7, 5) = 35 product states.
        assert_eq!(seq.num_states(), 35);
    }

    #[test]
    fn lts_collection_matches_transition_count() {
        let env = Env::new();
        let p = choice([
            act([(cpu(), 1)], nil()),
            evt_send(Symbol::new("go"), 1, nil()),
        ]);
        let opts = Options {
            collect_lts: true,
            ..Options::default()
        };
        let ex = explore(&env, &p, &opts);
        let lts = ex.lts.as_ref().unwrap();
        let total: usize = lts.transitions.iter().map(Vec::len).sum();
        assert_eq!(total, ex.stats.transitions);
        assert_eq!(lts.transitions.len(), ex.num_states());
    }

    #[test]
    fn find_states_and_depth() {
        let env = Env::new();
        let p = act(
            [(cpu(), 1)],
            act([(cpu(), 2)], act([(cpu(), 3)], nil())),
        );
        let ex = explore(&env, &p, &Options::default());
        let nils = ex.find_states(|st| matches!(&**st, acsr::Proc::Nil));
        assert_eq!(nils.len(), 1);
        assert_eq!(ex.depth_of(nils[0]), 3);
        assert_eq!(ex.depth_of(ex.initial()), 0);
        let all = ex.find_states(|_| true);
        assert_eq!(all.len(), ex.num_states());
    }

    #[test]
    fn find_states_matches_manual_scan_and_preserves_bfs_order() {
        let env = Env::new();
        // A diamond: the initial choice reaches NIL via a 1-step and a 2-step
        // path, so several states satisfy non-trivial predicates.
        let p = choice([
            act([(cpu(), 1)], nil()),
            act([(Res::new("bus"), 1)], act([(cpu(), 2)], nil())),
        ]);
        let ex = explore(&env, &p, &Options::default());
        // Ids come back sorted (BFS order) and match a manual filter.
        let timed_roots = ex.find_states(|st| !matches!(&**st, acsr::Proc::Nil));
        assert!(timed_roots.windows(2).all(|w| w[0] < w[1]));
        for id in &timed_roots {
            assert!(!matches!(&**ex.state(*id), acsr::Proc::Nil));
        }
        // The two partitions cover the state table exactly.
        let nils = ex.find_states(|st| matches!(&**st, acsr::Proc::Nil));
        assert_eq!(nils.len() + timed_roots.len(), ex.num_states());
        // An unsatisfiable predicate finds nothing.
        assert!(ex.find_states(|_| false).is_empty());
    }

    #[test]
    fn depth_of_equals_shortest_trace_length_for_every_state() {
        let mut env = Env::new();
        let c1 = env.declare("D", 1);
        env.set_body(
            c1,
            choice([
                guard(
                    BExpr::lt(Expr::p(0), Expr::c(5)),
                    choice([
                        act([(cpu(), 1)], invoke(c1, [Expr::p(0).add(Expr::c(1))])),
                        act([(Res::new("bus"), 1)], invoke(c1, [Expr::p(0).add(Expr::c(2))])),
                    ]),
                ),
                guard(BExpr::eq(Expr::p(0), Expr::c(5)), nil()),
                guard(BExpr::eq(Expr::p(0), Expr::c(6)), nil()),
            ]),
        );
        let p = invoke(c1, [Expr::c(0)]);
        let ex = explore(&env, &p, &Options::default());
        assert_eq!(ex.depth_of(ex.initial()), 0);
        for i in 0..ex.num_states() {
            let id = StateId(i as u32);
            // depth_of must agree with the reconstructed shortest trace.
            assert_eq!(ex.depth_of(id), ex.trace_to(id).len());
        }
        // BFS invariant: ids are assigned in nondecreasing depth order.
        let depths: Vec<usize> = (0..ex.num_states())
            .map(|i| ex.depth_of(StateId(i as u32)))
            .collect();
        assert!(depths.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn memo_off_produces_identical_results() {
        let mut env = Env::new();
        let c1 = env.declare("C1", 1);
        env.set_body(
            c1,
            choice([
                guard(
                    BExpr::lt(Expr::p(0), Expr::c(9)),
                    act([(cpu(), 1)], invoke(c1, [Expr::p(0).add(Expr::c(1))])),
                ),
                guard(BExpr::eq(Expr::p(0), Expr::c(9)), invoke(c1, [Expr::c(0)])),
            ]),
        );
        let p = invoke(c1, [Expr::c(0)]);
        let with_memo = explore(&env, &p, &Options::default());
        let without = explore(&env, &p, &Options::default().with_memo(false));
        assert_eq!(with_memo.num_states(), without.num_states());
        assert_eq!(with_memo.deadlocks, without.deadlocks);
        assert_eq!(with_memo.stats.transitions, without.stats.transitions);
        for i in 0..with_memo.num_states() {
            assert_eq!(
                with_memo.state(StateId(i as u32)),
                without.state(StateId(i as u32))
            );
        }
        // The memo was exercised on the looping structure; off means zero.
        assert!(with_memo.stats.memo_hits > 0);
        assert_eq!(without.stats.memo_hits, 0);
        assert_eq!(without.stats.memo_misses, 0);
        // Both engines interned the same term universe.
        assert_eq!(with_memo.stats.unique_subterms, without.stats.unique_subterms);
    }

    #[test]
    fn tiny_memo_capacity_evicts_without_changing_the_verdict() {
        let mut env = Env::new();
        let c1 = env.declare("C1", 1);
        env.set_body(
            c1,
            choice([
                guard(
                    BExpr::lt(Expr::p(0), Expr::c(40)),
                    act([(cpu(), 1)], invoke(c1, [Expr::p(0).add(Expr::c(1))])),
                ),
                guard(BExpr::eq(Expr::p(0), Expr::c(40)), nil()),
            ]),
        );
        let p = invoke(c1, [Expr::c(0)]);
        let base = explore(&env, &p, &Options::default());
        let tiny = explore(&env, &p, &Options::default().with_memo_capacity(16));
        assert!(tiny.stats.memo_evictions > 0, "41 states must overflow 16 slots");
        assert_eq!(base.stats.memo_evictions, 0);
        assert_eq!(base.num_states(), tiny.num_states());
        assert_eq!(base.deadlocks, tiny.deadlocks);
        assert_eq!(base.stats.transitions, tiny.stats.transitions);
        assert_eq!(
            base.first_deadlock_trace().map(|t| t.len()),
            tiny.first_deadlock_trace().map(|t| t.len())
        );
        for i in 0..base.num_states() {
            assert_eq!(base.state(StateId(i as u32)), tiny.state(StateId(i as u32)));
        }
    }

    #[test]
    fn shared_store_is_reused_across_runs() {
        let env = Env::new();
        let p = act([(cpu(), 1)], act([(cpu(), 2)], nil()));
        let store = Arc::new(acsr::TermStore::new());
        let first = explore(&env, &p, &Options::default().with_store(store.clone()));
        let after_first = store.len();
        assert_eq!(first.stats.unique_subterms, after_first);
        // A second run over the same model adds nothing new to the store.
        let second = explore(&env, &p, &Options::default().with_store(store.clone()));
        assert_eq!(store.len(), after_first);
        assert_eq!(second.stats.unique_subterms, after_first);
        assert_eq!(first.num_states(), second.num_states());
    }

    #[test]
    fn stats_track_levels_and_frontier() {
        let env = Env::new();
        let p = act([(cpu(), 1)], act([(cpu(), 1)], nil()));
        let ex = explore(&env, &p, &Options::default());
        assert_eq!(ex.stats.levels, 3); // two expansions + the deadlocked leaf
        assert!(ex.stats.peak_frontier >= 1);
        assert_eq!(ex.stats.states, 3);
    }

    #[test]
    fn recorder_captures_per_level_spans() {
        let env = Env::new();
        let p = act([(cpu(), 1)], act([(cpu(), 1)], nil()));
        let rec = obs::Recorder::with_clock(Box::new(obs::FakeClock::new(1)));
        let ex = explore(&env, &p, &Options::default().with_obs(rec.clone()));
        let run = rec.finish();
        let roots: Vec<_> = run.spans.iter().filter(|s| s.name == "explore").collect();
        assert_eq!(roots.len(), 1);
        assert!(roots[0].fields.contains(&("states".to_string(), 3)));
        let levels: Vec<_> = run
            .spans
            .iter()
            .filter(|s| s.name == "explore.level")
            .collect();
        assert_eq!(levels.len(), ex.stats.levels);
        for (i, lvl) in levels.iter().enumerate() {
            assert_eq!(lvl.parent, Some(roots[0].id));
            assert!(lvl.fields.contains(&("level".to_string(), i as i64 + 1)));
        }
        // Straight-line process: no state is ever rediscovered. Counters
        // come back sorted by name.
        assert_eq!(
            run.counters,
            vec![
                ("explore.dedup_hits".to_string(), 0),
                ("step.memo_evictions".to_string(), 0),
                ("step.memo_hits".to_string(), ex.stats.memo_hits),
                ("step.memo_misses".to_string(), ex.stats.memo_misses),
            ]
        );
        assert_eq!(ex.stats.dedup_hits, 0);
        assert!(run
            .gauges
            .iter()
            .any(|(k, value, _)| k == "term.unique_subterms"
                && *value == ex.stats.unique_subterms as i64));
        assert!(ex.stats.unique_subterms > 0);
    }

    #[test]
    fn scoped_recorder_nests_engine_spans_under_the_request_anchor() {
        // The serving layer hands `explore` a scoped recorder clone
        // (`obs::Recorder::scoped`): every engine span must then parent
        // under the request's `served.exec` anchor and carry the `req`
        // tag, without the engine knowing anything about requests.
        let env = Env::new();
        let p = act([(cpu(), 1)], act([(cpu(), 1)], nil()));
        let rec = obs::Recorder::with_clock(Box::new(obs::FakeClock::new(1)));
        let anchor = rec.span("served.exec");
        let scoped = rec.scoped(&anchor, 42);
        explore(&env, &p, &Options::default().with_obs(scoped));
        anchor.end();
        let run = rec.finish();
        let anchor_id = run.spans.iter().find(|s| s.name == "served.exec").unwrap().id;
        let root = run.spans.iter().find(|s| s.name == "explore").unwrap();
        assert_eq!(root.parent, Some(anchor_id));
        assert!(root.fields.contains(&("req".to_string(), 42)));
        // Engine children keep nesting under the engine root (not the
        // anchor) and inherit the request tag.
        let levels: Vec<_> = run
            .spans
            .iter()
            .filter(|s| s.name == "explore.level")
            .collect();
        assert!(!levels.is_empty());
        for lvl in levels {
            assert_eq!(lvl.parent, Some(root.id));
            assert!(lvl.fields.contains(&("req".to_string(), 42)));
        }
    }

    #[test]
    fn recorder_counts_dedup_hits() {
        let mut env = Env::new();
        let p = looping(&mut env);
        let rec = obs::Recorder::enabled();
        let ex = explore(&env, &p, &Options::default().with_obs(rec.clone()));
        // The single transition loops back to the interned initial state.
        assert_eq!(ex.stats.dedup_hits, 1);
        let run = rec.finish();
        assert!(run
            .counters
            .iter()
            .any(|(k, v)| k == "explore.dedup_hits" && *v == 1));
        assert!(run
            .gauges
            .iter()
            .any(|(k, value, peak)| k == "explore.states" && *value == 1 && *peak == 1));
    }

    #[test]
    fn id_space_exhaustion_truncates_instead_of_panicking() {
        let mut env = Env::new();
        // Counter that never repeats a state: C(n) = {(cpu,1)}:C(n+1).
        let d = env.declare("Counter", 1);
        env.set_body(
            d,
            act([(cpu(), 1)], invoke(d, [Expr::p(0).add(Expr::c(1))])),
        );
        let p = invoke(d, [Expr::c(0)]);
        // Shrink the id space to 3 (instead of u32::MAX) so the overflow
        // path runs in a test-sized exploration.
        let ex = explore_with_id_limit(&env, &p, &Options::default(), 3);
        assert!(ex.truncated);
        assert_eq!(ex.num_states(), 3);
        assert!(!ex.deadlock_free()); // truncated ⇒ unknown, never "free"
        assert!(ex.deadlocks.is_empty());
        // The interned prefix is still a valid BFS prefix.
        assert_eq!(ex.depth_of(StateId(2)), 2);
    }

    #[test]
    fn shard_count_never_affects_results() {
        let mut env = Env::new();
        let c1 = env.declare("W", 1);
        env.set_body(
            c1,
            choice([
                guard(
                    BExpr::lt(Expr::p(0), Expr::c(20)),
                    choice([
                        act([(cpu(), 1)], invoke(c1, [Expr::p(0).add(Expr::c(1))])),
                        act([(Res::new("bus"), 1)], invoke(c1, [Expr::p(0).add(Expr::c(2))])),
                    ]),
                ),
                guard(BExpr::eq(Expr::p(0), Expr::c(20)), nil()),
                guard(BExpr::eq(Expr::p(0), Expr::c(21)), nil()),
            ]),
        );
        let p = invoke(c1, [Expr::c(0)]);
        let base = explore(&env, &p, &Options::default());
        for (threads, shards) in [(1, 1), (4, 1), (4, 16), (8, 2), (3, 5)] {
            let ex = explore(
                &env,
                &p,
                &Options::default().with_threads(threads).with_shards(shards),
            );
            assert_eq!(ex.num_states(), base.num_states());
            assert_eq!(ex.deadlocks, base.deadlocks);
            assert_eq!(ex.stats.dedup_hits, base.stats.dedup_hits);
            assert_eq!(ex.stats.transitions, base.stats.transitions);
            for i in 0..base.num_states() {
                assert_eq!(ex.state(StateId(i as u32)), base.state(StateId(i as u32)));
            }
            assert_eq!(
                ex.first_deadlock_trace().map(|t| t.len()),
                base.first_deadlock_trace().map(|t| t.len())
            );
        }
    }

    #[test]
    fn parallel_with_obs_matches_sequential() {
        let mut env = Env::new();
        let c1 = env.declare("Cnt", 1);
        env.set_body(
            c1,
            choice([
                guard(
                    BExpr::lt(Expr::p(0), Expr::c(30)),
                    act([(cpu(), 1)], invoke(c1, [Expr::p(0).add(Expr::c(1))])),
                ),
                guard(
                    BExpr::eq(Expr::p(0), Expr::c(30)),
                    act([(cpu(), 1)], invoke(c1, [Expr::c(0)])),
                ),
            ]),
        );
        let p = invoke(c1, [Expr::c(0)]);
        let seq = explore(&env, &p, &Options::default());
        let rec = obs::Recorder::enabled();
        let par4 = explore(
            &env,
            &p,
            &Options::default().with_threads(4).with_obs(rec.clone()),
        );
        assert_eq!(seq.num_states(), par4.num_states());
        assert_eq!(seq.stats.transitions, par4.stats.transitions);
        assert_eq!(seq.stats.dedup_hits, par4.stats.dedup_hits);
        for i in 0..seq.num_states() {
            assert_eq!(seq.state(StateId(i as u32)), par4.state(StateId(i as u32)));
        }
    }

    #[test]
    fn pre_cancelled_token_stops_before_expanding_anything() {
        let mut env = Env::new();
        let c1 = env.declare("Spin", 0);
        env.set_body(c1, act([(cpu(), 1)], invoke(c1, [])));
        let token = CancelToken::new();
        token.cancel();
        let ex = explore(
            &env,
            &invoke(c1, []),
            &Options::default().with_cancel(token),
        );
        assert!(ex.cancelled);
        assert!(!ex.truncated);
        // Only the initial state was interned; no level ever ran.
        assert_eq!(ex.num_states(), 1);
        assert_eq!(ex.stats.levels, 0);
        assert!(!ex.deadlock_free());
    }

    #[test]
    fn cancelled_runs_are_never_deadlock_free_even_without_deadlocks() {
        // The same deadlock-free idler that deadlock_free()'s doctest uses:
        // uncancelled it is "free", cancelled it must not be.
        let mut env = Env::new();
        let d = env.declare("Idle", 0);
        env.set_body(d, act([] as [(Res, i32); 0], invoke(d, [])));
        let p = invoke(d, []);
        assert!(explore(&env, &p, &Options::default()).deadlock_free());
        let token = CancelToken::new();
        token.cancel();
        let ex = explore(&env, &p, &Options::default().with_cancel(token));
        assert!(ex.deadlocks.is_empty());
        assert!(!ex.deadlock_free());
    }
}
