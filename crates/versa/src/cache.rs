//! Cross-run exploration artifacts: the bridge between [`explore`] and a
//! persistent [`cas::CasStore`].
//!
//! The step memo ([`acsr::StepSession`]) dies with the process; the dominant
//! real workload is *sweeps* that re-analyze near-identical models run after
//! run. This module lets the explorer consult a content-addressed store
//! before exploring and deposit a summary artifact after, so a repeated
//! point costs a key derivation plus (for unschedulable models) a
//! trace-skeleton replay instead of a full state-space search.
//!
//! # Key derivation
//!
//! The store key commits to everything the artifact depends on:
//!
//! * a schema tag (`versa.exploration.v1`) so future layouts can't collide,
//! * [`acsr::stable_digest`] of the initial term — the *string-stable* walk,
//!   not the in-memory [`acsr::TermId`] digest, which depends on this
//!   process's interning history,
//! * [`acsr::env_fingerprint`] of the definition environment,
//! * the caller's context string ([`Options::cas_context`] — the canonical
//!   translation-options fingerprint, so a `--protocol pcp` artifact can
//!   never answer a `--protocol none` query),
//! * the exploration options that change results: `max_states`,
//!   `stop_at_first_deadlock`, the id ceiling, and the `zones` engine flag
//!   (zone-mode stats describe the zone graph, so the two engines must
//!   never answer each other's queries even though their verdicts agree).
//!
//! Changing any input changes the key; invalidation is purely structural
//! (stale artifacts are simply never addressed again).
//!
//! # Artifact payload
//!
//! ```text
//! u32  payload version (PAYLOAD_VERSION)
//! u8   flags: bit0 = deadlock skeleton present, bit1 = truncated
//! 88B  Stats (11 × u64 little-endian, duration as nanoseconds)
//! -- when bit0 is set --
//! u32  skeleton length n
//! n ×  (u32 successor index, u64 stable digest of the successor term)
//! ```
//!
//! The skeleton is the shortest deadlock trace recorded as *successor
//! indices* into [`acsr::StepSession::prioritized_steps`] order, which is
//! structural and therefore reproducible. Replay re-derives each step in
//! this process and checks the stable digest of every target, so a payload
//! that doesn't match the current semantics (however it got there) fails
//! closed into a recompute — a corrupt store can cost time, never a wrong
//! verdict. Labels are re-derived too, so diagnosis output is identical to
//! a cold run's.
//!
//! Replay rebuilds only the on-trace states: a cache-hit
//! [`Exploration`] carries verbatim cold-run [`Stats`] (except `duration`,
//! which is the replay's own wall time) but materializes just the trace, so
//! `num_states()` ≤ `stats.states` on a hit.

use std::sync::Arc;
use std::time::Instant;

use acsr::{Env, Interned, MemoConfig, StepSession, TermStore, P};

use crate::explore::{Exploration, Options, StateId, Stats};

/// Version of the artifact payload layout. Bump on any change; older (and
/// newer) payloads are treated as invalid, i.e. recomputed and overwritten.
pub(crate) const PAYLOAD_VERSION: u32 = 1;

/// Derive the store key for this exploration, or `None` when the run is not
/// cacheable (no store configured, LTS collection requested — the artifact
/// carries no transition relation — or the token already fired).
pub(crate) fn key_for(env: &Env, initial: &P, opts: &Options, id_limit: usize) -> Option<String> {
    opts.cas.as_ref()?;
    if opts.collect_lts || opts.cancel.is_cancelled() {
        return None;
    }
    let term = acsr::stable_digest(env, initial);
    let fp = acsr::env_fingerprint(env);
    // Zone-only knobs join the key only in zone mode, so every concrete-mode
    // key stays byte-identical to what earlier releases derived.
    let term_bytes = term.to_le_bytes();
    let fp_bytes = fp.to_le_bytes();
    let max_states = (opts.max_states.min(u64::MAX as usize) as u64).to_le_bytes();
    let first = [opts.stop_at_first_deadlock as u8];
    let ids = (id_limit.min(u64::MAX as usize) as u64).to_le_bytes();
    let zones = [opts.zones as u8];
    let zone_cap = (opts.zone_cap.min(u64::MAX as usize) as u64).to_le_bytes();
    let zone_advance = [match opts.zone_advance {
        crate::explore::ZoneAdvance::Closed => 0u8,
        crate::explore::ZoneAdvance::Replay => 1u8,
    }];
    let mut parts: Vec<&[u8]> = vec![
        b"versa.exploration.v1",
        &term_bytes,
        &fp_bytes,
        opts.cas_context.as_bytes(),
        &max_states,
        &first,
        &ids,
        &zones,
    ];
    if opts.zones {
        parts.push(&zone_cap);
        parts.push(&zone_advance);
    }
    Some(cas::key(&parts))
}

/// A decoded artifact.
pub(crate) struct Artifact {
    stats: Stats,
    truncated: bool,
    /// `(successor index, stable digest of the target)` per trace step.
    skeleton: Option<Vec<(u32, u64)>>,
}

/// Encode the finished exploration as an artifact payload. Returns `None`
/// when a skeleton step can't be found in the memoized successor order
/// (which would mean the engine and the session disagree — then nothing is
/// deposited rather than depositing something unreplayable).
pub(crate) fn encode(
    env: &Env,
    session: &StepSession<'_>,
    states: &[Interned],
    parents: &[Option<(StateId, acsr::Label)>],
    deadlocks: &[StateId],
    stats: &Stats,
    truncated: bool,
) -> Option<Vec<u8>> {
    let skeleton = match deadlocks.first() {
        None => None,
        Some(&dead) => {
            // Parent chain, root first.
            let mut chain = vec![dead];
            let mut cur = dead;
            while let Some((p, _)) = &parents[cur.index()] {
                chain.push(*p);
                cur = *p;
            }
            chain.reverse();
            let mut skel = Vec::with_capacity(chain.len().saturating_sub(1));
            for pair in chain.windows(2) {
                let (from, to) = (pair[0], pair[1]);
                let label = &parents[to.index()].as_ref()?.1;
                let succs = session.prioritized_steps(&states[from.index()]);
                let idx = succs
                    .iter()
                    .position(|(l, t)| t.id() == states[to.index()].id() && l == label)?;
                let digest = acsr::stable_digest(env, states[to.index()].term());
                skel.push((idx as u32, digest));
            }
            Some(skel)
        }
    };

    let mut out = Vec::with_capacity(4 + 1 + 88 + skeleton.as_ref().map_or(0, |s| 4 + 12 * s.len()));
    out.extend_from_slice(&PAYLOAD_VERSION.to_le_bytes());
    let mut flags = 0u8;
    if skeleton.is_some() {
        flags |= 1;
    }
    if truncated {
        flags |= 2;
    }
    out.push(flags);
    out.extend_from_slice(&stats.to_bytes());
    if let Some(skel) = &skeleton {
        out.extend_from_slice(&(skel.len() as u32).to_le_bytes());
        for (idx, digest) in skel {
            out.extend_from_slice(&idx.to_le_bytes());
            out.extend_from_slice(&digest.to_le_bytes());
        }
    }
    Some(out)
}

/// Bounds-checked little-endian reader over a payload.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.bytes.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Decode an artifact payload. `None` on any framing problem — wrong
/// version, short read, trailing bytes.
pub(crate) fn decode(bytes: &[u8]) -> Option<Artifact> {
    let mut r = Reader { bytes, pos: 0 };
    if r.u32()? != PAYLOAD_VERSION {
        return None;
    }
    let flags = r.u8()?;
    if flags & !3 != 0 {
        return None;
    }
    let stats = Stats::from_bytes(r.take(88)?)?;
    let skeleton = if flags & 1 != 0 {
        let n = r.u32()? as usize;
        // A skeleton can't be longer than the states it visited; reject
        // absurd lengths before allocating.
        if n > bytes.len() / 12 + 1 {
            return None;
        }
        let mut skel = Vec::with_capacity(n);
        for _ in 0..n {
            let idx = r.u32()?;
            let digest = r.u64()?;
            skel.push((idx, digest));
        }
        Some(skel)
    } else {
        None
    };
    if !r.done() {
        return None;
    }
    Some(Artifact {
        stats,
        truncated: flags & 2 != 0,
        skeleton,
    })
}

/// Replay a decoded artifact into an [`Exploration`]. `None` when any step
/// of the skeleton fails to re-derive (index out of range, stable digest
/// mismatch, final state not actually deadlocked) — callers then count an
/// invalidation and fall through to a full exploration.
pub(crate) fn replay(
    env: &Env,
    initial: &P,
    artifact: &Artifact,
    opts: &Options,
    start: Instant,
) -> Option<Exploration> {
    let store = opts
        .store
        .clone()
        .unwrap_or_else(|| Arc::new(TermStore::new()));
    let memo_config = if opts.memo {
        MemoConfig::with_capacity(opts.memo_capacity)
    } else {
        MemoConfig::disabled()
    };
    let session = StepSession::new(env, store, memo_config);
    let root = session.intern(initial);

    let mut states = vec![root.clone()];
    let mut parents: Vec<Option<(StateId, acsr::Label)>> = vec![None];
    let mut deadlocks = Vec::new();

    if let Some(skeleton) = &artifact.skeleton {
        let mut cur = root;
        for &(idx, expected) in skeleton {
            let (label, target) = session
                .prioritized_steps(&cur)
                .into_iter()
                .nth(idx as usize)?;
            if acsr::stable_digest(env, target.term()) != expected {
                return None;
            }
            let prev = StateId((states.len() - 1) as u32);
            parents.push(Some((prev, label)));
            states.push(target.clone());
            cur = target;
        }
        if !session.prioritized_steps(&cur).is_empty() {
            return None;
        }
        deadlocks.push(StateId((states.len() - 1) as u32));
    }

    let mut stats = artifact.stats.clone();
    stats.duration = start.elapsed();
    Some(Exploration {
        states: states.into_iter().map(Interned::into_term).collect(),
        parents,
        zone_edges: Vec::new(),
        deadlocks,
        lts: None,
        stats,
        truncated: artifact.truncated,
        cancelled: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Key-context completeness audit: every `Options` field that can change
    /// the explored state space (or how its artifact must be interpreted)
    /// must be serialized into the store key, or a stale artifact would
    /// silently answer a query it doesn't match. Flipping each such field —
    /// and the term, environment and id ceiling — must produce a distinct
    /// key; fields that are pure performance knobs (threads, shards, memo)
    /// must NOT change the key, so warm sweeps still hit across them.
    #[test]
    fn key_commits_to_every_space_changing_option_and_nothing_else() {
        use acsr::prelude::*;

        let dir = std::env::temp_dir().join(format!("versa-key-audit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store =
            std::sync::Arc::new(cas::CasStore::open(&dir, cas::Mode::ReadWrite).unwrap());
        let env = Env::new();
        let p = act([(Res::new("cpu"), 1)], nil());
        let base = Options::default().with_cas(store.clone());
        let key = |opts: &Options, id_limit: usize| key_for(&env, &p, opts, id_limit);
        let base_key = key(&base, 1000).expect("cacheable");

        // Space-changing inputs: each flip must move the key.
        let mut distinct = vec![base_key.clone()];
        distinct.push(key(&base.clone().with_max_states(7), 1000).unwrap());
        distinct.push({
            let mut o = base.clone();
            o.stop_at_first_deadlock = true;
            key(&o, 1000).unwrap()
        });
        distinct.push(key(&base.clone().with_zones(true), 1000).unwrap());
        distinct.push(key(&base.clone().with_zones(true).with_zone_cap(7), 1000).unwrap());
        distinct.push(
            key(
                &base
                    .clone()
                    .with_zones(true)
                    .with_zone_advance(crate::explore::ZoneAdvance::Replay),
                1000,
            )
            .unwrap(),
        );
        distinct.push(key(&base.clone().with_cas_context("protocol=pcp"), 1000).unwrap());
        distinct.push(key(&base, 999).unwrap()); // id ceiling
        distinct.push(key_for(&env, &nil(), &base, 1000).unwrap()); // the term
        let mut env2 = Env::new();
        env2.declare("Extra", 0);
        distinct.push(key_for(&env2, &p, &base, 1000).unwrap()); // the environment
        for i in 0..distinct.len() {
            for j in i + 1..distinct.len() {
                assert_ne!(distinct[i], distinct[j], "inputs {i} and {j} collided");
            }
        }

        // Performance knobs: none may move the key. Zone-only knobs are
        // inert while the zones flag is off, keeping historical
        // concrete-mode keys addressable.
        assert_eq!(key(&base.clone().with_zone_cap(7), 1000).unwrap(), base_key);
        assert_eq!(
            key(
                &base
                    .clone()
                    .with_zone_advance(crate::explore::ZoneAdvance::Replay),
                1000
            )
            .unwrap(),
            base_key
        );
        assert_eq!(key(&base.clone().with_threads(8), 1000).unwrap(), base_key);
        assert_eq!(key(&base.clone().with_shards(32), 1000).unwrap(), base_key);
        assert_eq!(key(&base.clone().with_memo(false), 1000).unwrap(), base_key);
        assert_eq!(
            key(&base.clone().with_memo_capacity(3), 1000).unwrap(),
            base_key
        );
        assert_eq!(
            key(
                &base
                    .clone()
                    .with_store(std::sync::Arc::new(acsr::TermStore::new())),
                1000
            )
            .unwrap(),
            base_key
        );
        assert_eq!(
            key(&base.clone().with_obs(obs::Recorder::enabled()), 1000).unwrap(),
            base_key
        );

        // Non-cacheable configurations yield no key at all.
        assert!(key(&Options::default(), 1000).is_none()); // no store
        let mut lts = base.clone();
        lts.collect_lts = true;
        assert!(key(&lts, 1000).is_none());
        let cancelled = crate::explore::CancelToken::new();
        cancelled.cancel();
        assert!(key(&base.clone().with_cancel(cancelled), 1000).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn decode_rejects_framing_problems() {
        // Too short for the version field.
        assert!(decode(&[1, 0]).is_none());
        // Wrong version.
        let mut bad = Vec::new();
        bad.extend_from_slice(&(PAYLOAD_VERSION + 1).to_le_bytes());
        bad.push(0);
        bad.extend_from_slice(&[0u8; 88]);
        assert!(decode(&bad).is_none());
        // Unknown flag bits.
        let mut bad = Vec::new();
        bad.extend_from_slice(&PAYLOAD_VERSION.to_le_bytes());
        bad.push(0x80);
        bad.extend_from_slice(&[0u8; 88]);
        assert!(decode(&bad).is_none());
        // Trailing garbage.
        let mut bad = Vec::new();
        bad.extend_from_slice(&PAYLOAD_VERSION.to_le_bytes());
        bad.push(0);
        bad.extend_from_slice(&[0u8; 88]);
        bad.push(9);
        assert!(decode(&bad).is_none());
        // Skeleton flag set but skeleton missing.
        let mut bad = Vec::new();
        bad.extend_from_slice(&PAYLOAD_VERSION.to_le_bytes());
        bad.push(1);
        bad.extend_from_slice(&[0u8; 88]);
        assert!(decode(&bad).is_none());
        // Minimal valid payload round-trips.
        let mut ok = Vec::new();
        ok.extend_from_slice(&PAYLOAD_VERSION.to_le_bytes());
        ok.push(0);
        ok.extend_from_slice(&Stats::default().to_bytes());
        assert!(decode(&ok).is_some());
    }
}
