//! Round-trip tests for the cross-run artifact store: a deposited
//! exploration must replay with the same verdict, stats, and trace as the
//! cold run that produced it, and key derivation must separate contexts.

use std::sync::Arc;

use acsr::prelude::*;
use versa::{explore, Options};

fn store_in(name: &str) -> (std::path::PathBuf, Arc<cas::CasStore>) {
    let dir = std::env::temp_dir().join(format!("versa-cas-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(cas::CasStore::open(&dir, cas::Mode::ReadWrite).unwrap());
    (dir, store)
}

/// Two timed steps, then NIL: deadlocks at depth 2.
fn deadlocking(env: &Env) -> P {
    let _ = env;
    act(
        [(Res::new("cpu"), 1)],
        act([(Res::new("cpu"), 2), (Res::new("bus"), 1)], nil()),
    )
}

/// An idling loop: deadlock-free, 1 state.
fn schedulable(env: &mut Env) -> P {
    let d = env.declare("Idle", 0);
    env.set_body(d, act([] as [(Res, i32); 0], invoke(d, [])));
    invoke(d, [])
}

#[test]
fn deadlock_artifact_replays_verdict_and_trace() {
    let (dir, store) = store_in("deadlock");
    let env = Env::new();
    let p = deadlocking(&env);
    let opts = Options::default().with_cas(store.clone());

    let cold = explore(&env, &p, &opts);
    assert_eq!(cold.deadlocks.len(), 1);
    assert_eq!(store.len(), 1, "cold run must deposit exactly one artifact");

    let warm = explore(&env, &p, &opts);
    assert_eq!(warm.deadlocks.len(), 1);
    assert!(!warm.deadlock_free());
    // Stats are served verbatim (duration excepted).
    assert_eq!(warm.stats.states, cold.stats.states);
    assert_eq!(warm.stats.transitions, cold.stats.transitions);
    assert_eq!(warm.stats.levels, cold.stats.levels);
    assert_eq!(warm.stats.deadlocks, cold.stats.deadlocks);
    // The replayed trace renders identically to the cold one.
    let cold_trace = cold.first_deadlock_trace().unwrap();
    let warm_trace = warm.first_deadlock_trace().unwrap();
    assert_eq!(cold_trace.len(), warm_trace.len());
    let cold_labels: Vec<String> = cold_trace.steps.iter().map(|(l, _)| format!("{l:?}")).collect();
    let warm_labels: Vec<String> = warm_trace.steps.iter().map(|(l, _)| format!("{l:?}")).collect();
    assert_eq!(cold_labels, warm_labels);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn schedulable_artifact_replays_without_exploring() {
    let (dir, store) = store_in("schedulable");
    let mut env = Env::new();
    let p = schedulable(&mut env);
    let rec = obs::Recorder::enabled();
    let opts = Options::default().with_cas(store.clone()).with_obs(rec.clone());

    let cold = explore(&env, &p, &opts);
    assert!(cold.deadlock_free());
    assert_eq!(rec.counter("cas.misses").get(), 1);
    assert_eq!(rec.counter("cas.writes").get(), 1);

    let warm = explore(&env, &p, &opts);
    assert!(warm.deadlock_free());
    assert_eq!(warm.stats.states, cold.stats.states);
    assert_eq!(rec.counter("cas.hits").get(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn context_and_options_separate_artifacts() {
    let (dir, store) = store_in("contexts");
    let env = Env::new();
    let p = deadlocking(&env);

    let a = Options::default().with_cas(store.clone()).with_cas_context("quantum=1");
    let b = Options::default().with_cas(store.clone()).with_cas_context("quantum=2");
    explore(&env, &p, &a);
    explore(&env, &p, &b);
    assert_eq!(store.len(), 2, "different contexts must not share a key");

    let c = Options::default().with_cas(store.clone()).with_max_states(1);
    let ex = explore(&env, &p, &c);
    assert!(ex.truncated);
    assert_eq!(store.len(), 3, "different budgets must not share a key");
    // The truncated artifact replays as truncated.
    let ex2 = explore(&env, &p, &c);
    assert!(ex2.truncated);
    assert!(!ex2.deadlock_free());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lts_collection_bypasses_the_store() {
    let (dir, store) = store_in("lts");
    let env = Env::new();
    let p = deadlocking(&env);
    let mut opts = Options::default().with_cas(store.clone());
    opts.collect_lts = true;
    let ex = explore(&env, &p, &opts);
    assert!(ex.lts.is_some());
    assert!(store.is_empty(), "LTS runs carry no artifact");
    // And a later LTS run must not consult a verdict-only artifact.
    opts.collect_lts = false;
    explore(&env, &p, &opts);
    opts.collect_lts = true;
    let ex = explore(&env, &p, &opts);
    assert!(ex.lts.is_some(), "LTS request must never be served from cache");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_entry_recomputes_with_identical_verdict() {
    let (dir, store) = store_in("corrupt");
    let env = Env::new();
    let p = deadlocking(&env);
    let rec = obs::Recorder::enabled();
    let opts = Options::default().with_cas(store.clone()).with_obs(rec.clone());
    let cold = explore(&env, &p, &opts);

    // Garbage-fill the single entry on disk.
    let entry = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .find(|e| e.file_name().to_string_lossy().ends_with(".cas"))
        .unwrap()
        .path();
    std::fs::write(&entry, b"zzzz not a cas entry").unwrap();

    let again = explore(&env, &p, &opts);
    assert_eq!(rec.counter("cas.invalidations").get(), 1);
    assert_eq!(again.deadlocks.len(), cold.deadlocks.len());
    assert_eq!(again.stats.states, cold.stats.states);
    // The recompute healed the entry: next run hits.
    explore(&env, &p, &opts);
    assert_eq!(rec.counter("cas.hits").get(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}
