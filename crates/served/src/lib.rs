//! `served` — analysis-as-a-service for AADL schedulability.
//!
//! The paper's workflow (§5) is interactive: a designer iterates on a model
//! and re-checks schedulability after every edit. A cold `aadlsched` process
//! re-interns the whole term universe on each run; this crate keeps the
//! analysis engine resident instead. `aadlschedd` is a long-running TCP
//! daemon speaking a line-delimited JSON protocol (`PROTOCOL.md`), with:
//!
//! * a **warm term store** shared across requests, so repeat analyses of
//!   structurally similar models skip re-interning;
//! * **duplicate coalescing** — identical (model, options) requests join the
//!   in-flight exploration instead of duplicating it — and a bounded
//!   **result cache** behind the same digest;
//! * an optional **cross-run artifact store** (`--store`, the [`cas`]
//!   crate): explorations consult and deposit verdict artifacts on disk,
//!   and the result cache survives restarts — persisted on graceful drain
//!   ([`persist`]), boot-warmed before the first connection;
//! * per-request **state budgets**, **wall-clock timeouts** (via the
//!   cooperative [`versa::CancelToken`]) and bounded retries;
//! * per-client **rate limiting** and a bounded request queue that rejects
//!   under overload instead of buffering without bound;
//! * **request-scoped tracing** ([`trace`], DESIGN.md §15): every request
//!   becomes one `served.request` span tree with per-stage durations, and
//!   the engine's own spans nest under its `served.exec` via a scoped
//!   recorder;
//! * **live introspection** (`stats`, `health`) and a bounded **flight
//!   recorder** (`flight`) holding the last N request events, dumped on
//!   panic-retry / timeout / queue-full and drained into the fleet report;
//! * **graceful drain** on shutdown and fleet metrics through the
//!   schema-versioned `obs` report sink.
//!
//! The layering is listener → [`queue::BoundedQueue`] → [`jobs::JobTable`]
//! → worker pool; see `DESIGN.md` §14. The wire protocol lives in [`wire`],
//! the daemon loop in [`server`]; `aadlschedc` is a thin stdin-free client
//! used by the CI smoke stage and the experiments.

pub mod jobs;
pub mod limiter;
pub mod persist;
pub mod queue;
pub mod server;
pub mod trace;
pub mod wire;

pub use server::{run, Config, Daemon};
