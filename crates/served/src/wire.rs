//! The `aadlschedd` wire protocol: line-delimited JSON requests and
//! responses (see `PROTOCOL.md` for the normative specification).
//!
//! Every message is one [`obs::Json`] value rendered compactly on a single
//! line. The parser is strict — unknown request types, missing fields and
//! floats are protocol errors, mapped to the old CLI exit-code contract as
//! `code: 2` (usage/input error) — and the renderers emit fields in a fixed
//! order so responses are byte-stable (the protocol transcripts in
//! `PROTOCOL.md` are replayed verbatim by an integration test).

use obs::Json;

/// Where the model text of an `analyze` request comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelSource {
    /// The AADL source inline in the request (`"model"`).
    Inline(String),
    /// A daemon-side path to read (`"file"`), for clients that share a
    /// filesystem with the daemon.
    File(String),
}

/// Options of an `analyze` request — the wire twin of the `aadlsched` CLI
/// flags, with a per-request wall-clock timeout on top.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnalyzeOptions {
    /// Root system implementation (`None` = auto-select the top of the
    /// instantiation hierarchy, exactly like the CLI).
    pub root: Option<String>,
    /// Scheduling-quantum override in milliseconds.
    pub quantum_ms: Option<i64>,
    /// Concurrency-control protocol override (`none` | `pip` | `pcp`).
    pub protocol: Option<String>,
    /// Compact translation.
    pub compact: bool,
    /// Explore the full state space instead of stopping at the first
    /// deadlock.
    pub exhaustive: bool,
    /// Parallel frontier expansion with this many workers.
    pub threads: usize,
    /// Per-request state budget (always clamped to the daemon's own budget).
    pub max_states: Option<usize>,
    /// Successor memoization (on by default).
    pub memo: bool,
    /// Per-request wall-clock timeout in milliseconds (`None` = the daemon's
    /// default). `0` times out immediately — useful for testing the timeout
    /// path deterministically.
    pub timeout_ms: Option<u64>,
    /// Delay-zone exploration (`--zones` on the CLI): collapse forced runs
    /// of quanta into single bulk steps. Verdicts and traces are identical
    /// to the concrete engine; only the exploration strategy changes — but
    /// the flag still participates in the job digest, so zone and concrete
    /// requests never coalesce or share a cached result.
    pub zones: bool,
    /// Per-edge step cap in zone mode (`--zone-cap` on the CLI; `None` = the
    /// engine default, 4096). Never changes verdicts, only the granularity
    /// of delay edges — but it participates in the job digest like every
    /// other option.
    pub zone_cap: Option<u64>,
    /// Zone advance strategy (`--zone-advance` on the CLI): `"closed"` (the
    /// default) advances forced runs through cached per-shape delay
    /// derivatives, `"replay"` re-derives every quantum. Verdicts and traces
    /// are identical; the switch exists for honest A/B timing.
    pub zone_advance: Option<String>,
}

impl Default for AnalyzeOptions {
    fn default() -> AnalyzeOptions {
        AnalyzeOptions {
            root: None,
            quantum_ms: None,
            protocol: None,
            compact: false,
            exhaustive: false,
            threads: 1,
            max_states: None,
            memo: true,
            timeout_ms: None,
            zones: false,
            zone_cap: None,
            zone_advance: None,
        }
    }
}

impl AnalyzeOptions {
    /// The canonical option string hashed into the job digest. Every field —
    /// including the timeout — participates, so two requests coalesce only
    /// when they would run the identical analysis under the identical
    /// deadline policy.
    pub fn canonical(&self) -> String {
        format!(
            "root={:?};quantum_ms={:?};protocol={:?};compact={};exhaustive={};threads={};\
             max_states={:?};memo={};timeout_ms={:?};zones={};zone_cap={:?};zone_advance={:?}",
            self.root,
            self.quantum_ms,
            self.protocol,
            self.compact,
            self.exhaustive,
            self.threads,
            self.max_states,
            self.memo,
            self.timeout_ms,
            self.zones,
            self.zone_cap,
            self.zone_advance,
        )
    }
}

/// A parsed client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Run (or join) a schedulability analysis.
    Analyze {
        /// Client-chosen correlation id, echoed on every response.
        id: String,
        /// Model text, inline or by daemon-side path.
        source: ModelSource,
        /// Analysis options.
        options: AnalyzeOptions,
    },
    /// Query one job (by digest) or the daemon summary.
    Status {
        /// Correlation id.
        id: String,
        /// Job digest; `None` asks for the daemon summary.
        job: Option<String>,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// Correlation id.
        id: String,
        /// Job digest.
        job: String,
    },
    /// Fetch the fleet metrics counters and gauges.
    Metrics {
        /// Correlation id.
        id: String,
    },
    /// Live introspection: every counter, gauge and histogram (with
    /// p50/p90/p99 quantile estimates) as one JSON snapshot. Reads no clock
    /// and counts in no counter, so two consecutive `stats` with no traffic
    /// in between are byte-identical.
    Stats {
        /// Correlation id.
        id: String,
    },
    /// Live introspection: uptime, queue depth, worker occupancy, cache
    /// occupancy, drain state.
    Health {
        /// Correlation id.
        id: String,
    },
    /// Dump the flight recorder: the last N structured request events.
    Flight {
        /// Correlation id.
        id: String,
    },
    /// Graceful drain: finish queued work, then exit.
    Shutdown {
        /// Correlation id.
        id: String,
    },
}

impl Request {
    /// The correlation id of any request.
    pub fn id(&self) -> &str {
        match self {
            Request::Analyze { id, .. }
            | Request::Status { id, .. }
            | Request::Cancel { id, .. }
            | Request::Metrics { id }
            | Request::Stats { id }
            | Request::Health { id }
            | Request::Flight { id }
            | Request::Shutdown { id } => id,
        }
    }

    /// Whether this is a read-only introspection request (`stats`, `health`,
    /// `flight`). Introspection is excluded from `served.requests` so
    /// polling the daemon's own instruments never perturbs them.
    pub fn is_introspection(&self) -> bool {
        matches!(
            self,
            Request::Stats { .. } | Request::Health { .. } | Request::Flight { .. }
        )
    }
}

/// The job digest: a 16-hex-digit FNV-1a hash over the model source and the
/// canonical option string — the daemon's coalescing and result-cache key.
/// Identical model + identical options ⇒ identical digest, so a duplicate
/// request joins the in-flight job (or hits the result cache) instead of
/// exploring the same state space twice.
pub fn job_digest(source: &str, options: &AnalyzeOptions) -> String {
    obs::run_id(&[source.as_bytes(), options.canonical().as_bytes()])
}

/// Parse one request line. Errors are human-readable fragments for the
/// `error` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let id = v
        .get("id")
        .and_then(Json::as_str)
        .ok_or("missing string field `id`")?
        .to_string();
    let ty = v
        .get("type")
        .and_then(Json::as_str)
        .ok_or("missing string field `type`")?;
    match ty {
        "analyze" => {
            let source = match (
                v.get("model").and_then(Json::as_str),
                v.get("file").and_then(Json::as_str),
            ) {
                (Some(m), None) => ModelSource::Inline(m.to_string()),
                (None, Some(f)) => ModelSource::File(f.to_string()),
                (Some(_), Some(_)) => return Err("give `model` or `file`, not both".into()),
                (None, None) => return Err("analyze needs `model` (inline) or `file`".into()),
            };
            let options = parse_options(v.get("options"))?;
            Ok(Request::Analyze {
                id,
                source,
                options,
            })
        }
        "status" => Ok(Request::Status {
            id,
            job: v.get("job").and_then(Json::as_str).map(String::from),
        }),
        "cancel" => Ok(Request::Cancel {
            id,
            job: v
                .get("job")
                .and_then(Json::as_str)
                .ok_or("cancel needs a `job` digest")?
                .to_string(),
        }),
        "metrics" => Ok(Request::Metrics { id }),
        "stats" => Ok(Request::Stats { id }),
        "health" => Ok(Request::Health { id }),
        "flight" => Ok(Request::Flight { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        other => Err(format!("unknown request type `{other}`")),
    }
}

fn parse_options(v: Option<&Json>) -> Result<AnalyzeOptions, String> {
    let mut o = AnalyzeOptions::default();
    let Some(v) = v else { return Ok(o) };
    let Json::Obj(pairs) = v else {
        return Err("`options` must be an object".into());
    };
    for (k, val) in pairs {
        match k.as_str() {
            "root" => o.root = Some(str_field(val, "options.root")?),
            "quantum_ms" => {
                o.quantum_ms = Some(val.as_i64().ok_or("options.quantum_ms must be an integer")?)
            }
            "protocol" => o.protocol = Some(str_field(val, "options.protocol")?),
            "compact" => o.compact = bool_field(val, "options.compact")?,
            "exhaustive" => o.exhaustive = bool_field(val, "options.exhaustive")?,
            "threads" => {
                o.threads = val.as_u64().ok_or("options.threads must be an integer")? as usize
            }
            "max_states" => {
                o.max_states =
                    Some(val.as_u64().ok_or("options.max_states must be an integer")? as usize)
            }
            "memo" => o.memo = bool_field(val, "options.memo")?,
            "timeout_ms" => {
                o.timeout_ms = Some(val.as_u64().ok_or("options.timeout_ms must be an integer")?)
            }
            "zones" => o.zones = bool_field(val, "options.zones")?,
            "zone_cap" => {
                let cap = val.as_u64().ok_or("options.zone_cap must be an integer")?;
                if cap == 0 {
                    return Err("options.zone_cap must be at least 1".into());
                }
                o.zone_cap = Some(cap);
            }
            "zone_advance" => {
                let mode = str_field(val, "options.zone_advance")?;
                if mode != "closed" && mode != "replay" {
                    return Err(format!(
                        "options.zone_advance must be \"closed\" or \"replay\", got `{mode}`"
                    ));
                }
                o.zone_advance = Some(mode);
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(o)
}

fn str_field(v: &Json, what: &str) -> Result<String, String> {
    v.as_str()
        .map(String::from)
        .ok_or_else(|| format!("{what} must be a string"))
}

fn bool_field(v: &Json, what: &str) -> Result<bool, String> {
    v.as_bool().ok_or_else(|| format!("{what} must be a boolean"))
}

/// A finished job, as delivered on the wire and kept in the result cache.
/// Deliberately free of wall-clock durations and store-occupancy numbers so
/// the same analysis renders the same bytes on every run.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The exit code of the typed outcome (0 | 1 | 3), or 2 for input
    /// errors (parse/instantiate/translate failures, unreadable files).
    pub code: u8,
    /// `"schedulable"` | `"unschedulable"` | `"unknown"` | `"error"`.
    pub verdict: String,
    /// For `unknown`: `"state-budget"` | `"cancelled"` | `"timeout"`. For
    /// `error`: the message.
    pub reason: Option<String>,
    /// Exploration statistics (absent for input errors).
    pub stats: Option<versa::Stats>,
    /// Rendered violations of the failing scenario, when one exists.
    pub violations: Vec<String>,
    /// Quantum at which the failing scenario deadlocks.
    pub at_quantum: Option<u64>,
}

impl JobResult {
    /// An input-error result (`code` 2) — never cached, never a verdict.
    pub fn input_error(message: impl Into<String>) -> JobResult {
        JobResult {
            code: aadl2acsr::EXIT_INPUT_ERROR,
            verdict: "error".into(),
            reason: Some(message.into()),
            stats: None,
            violations: Vec::new(),
            at_quantum: None,
        }
    }

    /// An `unknown` result with an explicit reason (timeout, cancelled).
    pub fn unknown(reason: &str) -> JobResult {
        JobResult {
            code: 3,
            verdict: "unknown".into(),
            reason: Some(reason.into()),
            stats: None,
            violations: Vec::new(),
            at_quantum: None,
        }
    }

    /// Lower a typed [`aadl2acsr::AnalysisOutcome`] to its wire form.
    pub fn from_outcome(outcome: &aadl2acsr::AnalysisOutcome) -> JobResult {
        JobResult {
            code: outcome.exit_code(),
            verdict: outcome.verdict_str().into(),
            reason: outcome.reason_str().map(String::from),
            stats: Some(outcome.stats().clone()),
            violations: outcome
                .scenario()
                .map(|sc| sc.violations.iter().map(|v| v.to_string()).collect())
                .unwrap_or_default(),
            at_quantum: outcome.scenario().map(|sc| sc.at_quantum as u64),
        }
    }
}

/// `accepted` — the immediate acknowledgement of an `analyze` request.
pub fn accepted(id: &str, job: &str, coalesced: bool) -> Json {
    Json::obj([
        ("type", Json::from("accepted")),
        ("id", Json::from(id)),
        ("job", Json::from(job)),
        ("coalesced", Json::Bool(coalesced)),
    ])
}

/// `result` — the terminal response of an `analyze` request.
pub fn result_response(id: &str, job: &str, r: &JobResult, cached: bool) -> Json {
    let mut pairs = vec![
        ("type", Json::from("result")),
        ("id", Json::from(id)),
        ("job", Json::from(job)),
        ("verdict", Json::from(r.verdict.as_str())),
        ("code", Json::from(u64::from(r.code))),
    ];
    if let Some(reason) = &r.reason {
        pairs.push(("reason", Json::from(reason.as_str())));
    }
    if let Some(s) = &r.stats {
        pairs.push((
            "stats",
            Json::obj([
                ("states", Json::from(s.states)),
                ("transitions", Json::from(s.transitions)),
                ("levels", Json::from(s.levels)),
                ("peak_frontier", Json::from(s.peak_frontier)),
                ("dedup_hits", Json::from(s.dedup_hits)),
                ("deadlocks", Json::from(s.deadlocks)),
            ]),
        ));
    }
    if !r.violations.is_empty() {
        pairs.push((
            "violations",
            Json::Arr(r.violations.iter().map(|v| Json::from(v.as_str())).collect()),
        ));
    }
    if let Some(q) = r.at_quantum {
        pairs.push(("at_quantum", Json::from(q)));
    }
    pairs.push(("cached", Json::Bool(cached)));
    Json::obj(pairs)
}

/// `error` — a protocol-level rejection (bad request, rate limit, full
/// queue, shutting down). `code` is always 2, the usage-error exit.
pub fn error_response(id: Option<&str>, message: &str) -> Json {
    Json::obj([
        ("type", Json::from("error")),
        (
            "id",
            id.map(Json::from).unwrap_or(Json::Null),
        ),
        ("code", Json::from(u64::from(aadl2acsr::EXIT_INPUT_ERROR))),
        ("error", Json::from(message)),
    ])
}

/// `status` for one job.
pub fn status_job(id: &str, job: &str, state: &str, result: Option<&JobResult>) -> Json {
    let mut pairs = vec![
        ("type", Json::from("status")),
        ("id", Json::from(id)),
        ("job", Json::from(job)),
        ("state", Json::from(state)),
    ];
    if let Some(r) = result {
        pairs.push(("verdict", Json::from(r.verdict.as_str())));
        pairs.push(("code", Json::from(u64::from(r.code))));
    }
    Json::obj(pairs)
}

/// `status` summary of the whole daemon.
pub fn status_summary(id: &str, queue_depth: usize, jobs_running: usize, draining: bool) -> Json {
    Json::obj([
        ("type", Json::from("status")),
        ("id", Json::from(id)),
        ("queue_depth", Json::from(queue_depth)),
        ("jobs_running", Json::from(jobs_running)),
        ("shutting_down", Json::Bool(draining)),
    ])
}

/// `cancelled` — acknowledgement of a `cancel`, with the state the job was
/// observed in (`"queued"` | `"running"` | `"done"` | `"unknown"`).
pub fn cancelled_response(id: &str, job: &str, was: &str) -> Json {
    Json::obj([
        ("type", Json::from("cancelled")),
        ("id", Json::from(id)),
        ("job", Json::from(job)),
        ("was", Json::from(was)),
    ])
}

/// `shutting-down` — acknowledgement of a `shutdown`.
pub fn shutting_down(id: &str) -> Json {
    Json::obj([
        ("type", Json::from("shutting-down")),
        ("id", Json::from(id)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_request_round_trips() {
        let line = r#"{"type":"analyze","id":"r1","model":"package P end P;","options":{"exhaustive":true,"threads":2,"timeout_ms":5000}}"#;
        let req = parse_request(line).unwrap();
        match req {
            Request::Analyze {
                id,
                source,
                options,
            } => {
                assert_eq!(id, "r1");
                assert_eq!(source, ModelSource::Inline("package P end P;".into()));
                assert!(options.exhaustive);
                assert_eq!(options.threads, 2);
                assert_eq!(options.timeout_ms, Some(5000));
                assert!(options.memo);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn digest_is_stable_and_option_sensitive() {
        let a = AnalyzeOptions::default();
        let mut b = AnalyzeOptions::default();
        assert_eq!(job_digest("src", &a), job_digest("src", &a));
        assert_eq!(job_digest("src", &a).len(), 16);
        b.exhaustive = true;
        assert_ne!(job_digest("src", &a), job_digest("src", &b));
        // The timeout participates in the digest: different deadline policy,
        // different job.
        let mut c = AnalyzeOptions::default();
        c.timeout_ms = Some(1);
        assert_ne!(job_digest("src", &a), job_digest("src", &c));
        // Zone mode yields identical verdicts, but its digest still
        // diverges: cached zone results must never answer concrete
        // requests (and vice versa), so the A/B lever stays honest.
        let mut z = AnalyzeOptions::default();
        z.zones = true;
        assert_ne!(job_digest("src", &a), job_digest("src", &z));
        // The zone knobs participate too: a capped or replay-mode zone run
        // must never share a closed-mode result.
        let mut zc = z.clone();
        zc.zone_cap = Some(64);
        assert_ne!(job_digest("src", &z), job_digest("src", &zc));
        let mut za = z.clone();
        za.zone_advance = Some("replay".into());
        assert_ne!(job_digest("src", &z), job_digest("src", &za));
        assert_ne!(job_digest("src", &a), job_digest("other", &a));
    }

    #[test]
    fn introspection_requests_parse_and_classify() {
        for (line, intro) in [
            (r#"{"type":"stats","id":"s1"}"#, true),
            (r#"{"type":"health","id":"h1"}"#, true),
            (r#"{"type":"flight","id":"f1"}"#, true),
            (r#"{"type":"metrics","id":"m1"}"#, false),
            (r#"{"type":"status","id":"q1"}"#, false),
        ] {
            let req = parse_request(line).unwrap();
            assert_eq!(req.is_introspection(), intro, "{line}");
        }
        // Introspection still requires an id, like every request.
        assert!(parse_request(r#"{"type":"stats"}"#).is_err());
    }

    #[test]
    fn malformed_requests_are_protocol_errors() {
        for bad in [
            "not json",
            r#"{"type":"analyze"}"#,                          // no id
            r#"{"type":"explode","id":"x"}"#,                 // unknown type
            r#"{"type":"analyze","id":"x"}"#,                 // no model/file
            r#"{"type":"cancel","id":"x"}"#,                  // no job
            r#"{"type":"analyze","id":"x","model":"m","options":{"bogus":1}}"#,
            r#"{"type":"analyze","id":"x","model":"m","file":"f"}"#,
        ] {
            assert!(parse_request(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn responses_render_fixed_field_order() {
        assert_eq!(
            accepted("r1", "aabbccdd00112233", false).to_compact(),
            r#"{"type":"accepted","id":"r1","job":"aabbccdd00112233","coalesced":false}"#
        );
        assert_eq!(
            error_response(None, "bad JSON").to_compact(),
            r#"{"type":"error","id":null,"code":2,"error":"bad JSON"}"#
        );
        let r = JobResult::unknown("timeout");
        assert_eq!(
            result_response("r2", "ffff000011112222", &r, false).to_compact(),
            r#"{"type":"result","id":"r2","job":"ffff000011112222","verdict":"unknown","code":3,"reason":"timeout","cached":false}"#
        );
    }
}
