//! Per-client token-bucket rate limiting.
//!
//! One bucket per peer address (the IP, not the port — reconnecting does not
//! reset the budget). Each request costs one token; buckets refill at
//! `rate_per_sec` up to `burst`. Rate `0` disables limiting entirely *and
//! reads no clock*, which keeps fake-clock test runs byte-deterministic —
//! the limiter is the only daemon component that would otherwise consume
//! clock ticks on every request.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Token-bucket limiter keyed by peer address.
pub struct RateLimiter {
    /// Tokens added per second; `0` = unlimited (no-op, no clock reads).
    rate_per_sec: u64,
    /// Bucket capacity (maximum burst).
    burst: u64,
    clock: Arc<dyn obs::Clock>,
    buckets: Mutex<HashMap<String, Bucket>>,
}

struct Bucket {
    /// Millitokens, so refills stay integral at any rate.
    level_m: u64,
    last_ns: u64,
}

impl RateLimiter {
    /// A limiter granting `rate_per_sec` requests per second per peer with
    /// bursts up to `burst`. `rate_per_sec == 0` disables limiting.
    pub fn new(rate_per_sec: u64, burst: u64, clock: Arc<dyn obs::Clock>) -> RateLimiter {
        RateLimiter {
            rate_per_sec,
            burst: burst.max(1),
            clock,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Spend one token for `peer`; `false` means the request must be
    /// rejected.
    pub fn allow(&self, peer: &str) -> bool {
        if self.rate_per_sec == 0 {
            return true;
        }
        let now = self.clock.now_ns();
        let mut buckets = self.buckets.lock().expect("limiter poisoned");
        let bucket = buckets.entry(peer.to_string()).or_insert(Bucket {
            level_m: self.burst * 1000,
            last_ns: now,
        });
        let elapsed_ns = now.saturating_sub(bucket.last_ns);
        bucket.last_ns = now;
        // rate tokens/s = rate millitokens/ms = rate*elapsed_ns/1e6.
        let refill_m = (elapsed_ns / 1_000) * self.rate_per_sec / 1_000;
        bucket.level_m = (bucket.level_m + refill_m).min(self.burst * 1000);
        if bucket.level_m >= 1000 {
            bucket.level_m -= 1000;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::Clock;

    #[test]
    fn zero_rate_is_unlimited_and_clockless() {
        // FakeClock advances per read; an untouched clock proves no reads.
        let clock = Arc::new(obs::FakeClock::new(1_000));
        let lim = RateLimiter::new(0, 1, clock.clone());
        for _ in 0..10_000 {
            assert!(lim.allow("1.2.3.4"));
        }
        assert_eq!(clock.now_ns(), 0, "limiter must not have read the clock");
    }

    #[test]
    fn burst_then_starve_then_refill() {
        // 1 token/s, burst 3; the fake clock advances 1 µs per read — far too
        // slowly to refill between calls.
        let lim = RateLimiter::new(1, 3, Arc::new(obs::FakeClock::new(1_000)));
        assert!(lim.allow("a"));
        assert!(lim.allow("a"));
        assert!(lim.allow("a"));
        assert!(!lim.allow("a"), "burst exhausted");
        // A different peer has its own bucket.
        assert!(lim.allow("b"));
        // Advance the clock ~2 s worth of reads: 2 more tokens for `a`.
        let fast = RateLimiter::new(1, 3, Arc::new(obs::FakeClock::new(2_000_000_000)));
        assert!(fast.allow("a"));
        assert!(fast.allow("a"));
        assert!(fast.allow("a"));
        assert!(fast.allow("a"), "refilled by the 2 s tick between reads");
    }
}
