//! Per-client token-bucket rate limiting.
//!
//! One bucket per peer address (the IP, not the port — reconnecting does not
//! reset the budget). Each request costs one token; buckets refill at
//! `rate_per_sec` up to `burst`. Rate `0` disables limiting entirely *and
//! reads no clock*, which keeps fake-clock test runs byte-deterministic —
//! the limiter is the only daemon component that would otherwise consume
//! clock ticks on every request.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Token-bucket limiter keyed by peer address.
pub struct RateLimiter {
    /// Tokens added per second; `0` = unlimited (no-op, no clock reads).
    rate_per_sec: u64,
    /// Bucket capacity (maximum burst).
    burst: u64,
    clock: Arc<dyn obs::Clock>,
    buckets: Mutex<HashMap<String, Bucket>>,
}

struct Bucket {
    /// Millitokens, so refills stay integral at any rate.
    level_m: u64,
    last_ns: u64,
}

impl RateLimiter {
    /// A limiter granting `rate_per_sec` requests per second per peer with
    /// bursts up to `burst`. `rate_per_sec == 0` disables limiting.
    pub fn new(rate_per_sec: u64, burst: u64, clock: Arc<dyn obs::Clock>) -> RateLimiter {
        RateLimiter {
            rate_per_sec,
            burst: burst.max(1),
            clock,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Spend one token for `peer`; `false` means the request must be
    /// rejected.
    pub fn allow(&self, peer: &str) -> bool {
        if self.rate_per_sec == 0 {
            return true;
        }
        let now = self.clock.now_ns();
        let mut buckets = self.buckets.lock().expect("limiter poisoned");
        let bucket = buckets.entry(peer.to_string()).or_insert(Bucket {
            level_m: self.burst * 1000,
            last_ns: now,
        });
        let elapsed_ns = now.saturating_sub(bucket.last_ns);
        // rate tokens/s = rate millitokens/ms = rate*elapsed_ns/1e6. Only
        // advance `last_ns` by the time actually converted into millitokens:
        // resetting it to `now` on every call would forfeit any elapsed time
        // that truncates to zero, so a peer polling faster than one refill
        // quantum would stay starved forever despite real time passing.
        let cap_m = self.burst * 1000;
        let refill_raw = u128::from(elapsed_ns) * u128::from(self.rate_per_sec) / 1_000_000;
        if refill_raw >= u128::from(cap_m) {
            // Enough elapsed time to fill the bucket outright; the surplus
            // is discarded (standard bucket overflow), so `now` is exact.
            bucket.level_m = cap_m;
            bucket.last_ns = now;
        } else if refill_raw > 0 {
            let refill_m = refill_raw as u64;
            let consumed_ns = (u128::from(refill_m) * 1_000_000 / u128::from(self.rate_per_sec))
                .min(u128::from(elapsed_ns)) as u64;
            bucket.last_ns = bucket.last_ns.saturating_add(consumed_ns);
            bucket.level_m = (bucket.level_m + refill_m).min(cap_m);
        }
        if bucket.level_m >= 1000 {
            bucket.level_m -= 1000;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::Clock;

    #[test]
    fn zero_rate_is_unlimited_and_clockless() {
        // FakeClock advances per read; an untouched clock proves no reads.
        let clock = Arc::new(obs::FakeClock::new(1_000));
        let lim = RateLimiter::new(0, 1, clock.clone());
        for _ in 0..10_000 {
            assert!(lim.allow("1.2.3.4"));
        }
        assert_eq!(clock.now_ns(), 0, "limiter must not have read the clock");
    }

    #[test]
    fn burst_then_starve_then_refill() {
        // 1 token/s, burst 3; the fake clock advances 1 µs per read — far too
        // slowly to refill between calls.
        let lim = RateLimiter::new(1, 3, Arc::new(obs::FakeClock::new(1_000)));
        assert!(lim.allow("a"));
        assert!(lim.allow("a"));
        assert!(lim.allow("a"));
        assert!(!lim.allow("a"), "burst exhausted");
        // A different peer has its own bucket.
        assert!(lim.allow("b"));
        // Advance the clock ~2 s worth of reads: 2 more tokens for `a`.
        let fast = RateLimiter::new(1, 3, Arc::new(obs::FakeClock::new(2_000_000_000)));
        assert!(fast.allow("a"));
        assert!(fast.allow("a"));
        assert!(fast.allow("a"));
        assert!(fast.allow("a"), "refilled by the 2 s tick between reads");
    }

    #[test]
    fn sub_quantum_polling_still_accrues() {
        // 1 token/s, burst 1, and a clock advancing 600 µs per read — every
        // single refill truncates to zero millitokens. A limiter that resets
        // `last_ns` on each call would starve this peer forever; keeping the
        // remainder means ~1 s of polling (~1667 calls) earns the token back.
        let lim = RateLimiter::new(1, 1, Arc::new(obs::FakeClock::new(600_000)));
        assert!(lim.allow("a"), "burst token");
        let recovered = (0..2_000).filter(|_| lim.allow("a")).count();
        assert!(
            recovered >= 1,
            "accrued refill must survive sub-quantum polling"
        );
        assert!(recovered <= 2, "but no faster than the configured rate");
    }

    #[test]
    fn long_idle_grants_one_burst_not_one_per_call() {
        // A clock that replays a fixed script of instants.
        struct ScriptClock(std::sync::Mutex<std::vec::IntoIter<u64>>);
        impl Clock for ScriptClock {
            fn now_ns(&self) -> u64 {
                self.0.lock().unwrap().next().expect("script exhausted")
            }
        }
        // 1 token/s, burst 1. A huge idle gap fills the bucket to its cap
        // exactly once; the catch-up must not leave `last_ns` lagging so far
        // behind that rapid follow-up calls each re-grant a full burst.
        let idle_end = 10_000_000_000_000u64;
        let clock = ScriptClock(std::sync::Mutex::new(
            vec![0, idle_end, idle_end + 1_000, idle_end + 2_000].into_iter(),
        ));
        let lim = RateLimiter::new(1, 1, Arc::new(clock));
        assert!(lim.allow("a"), "initial burst");
        assert!(lim.allow("a"), "refilled to cap by the idle gap");
        assert!(!lim.allow("a"), "1 µs later: no token yet");
        assert!(!lim.allow("a"), "2 µs later: still none");
    }
}
