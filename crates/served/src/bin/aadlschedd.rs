//! `aadlschedd` — the AADL schedulability analysis daemon.
//!
//! ```text
//! aadlschedd [options]
//!
//! options:
//!   --addr <host:port>        listen address (default 127.0.0.1:0 = ephemeral)
//!   --workers <n>             analysis worker threads (default 2)
//!   --queue-capacity <n>      bounded request queue (default 64)
//!   --rate-limit <n>          per-client requests/second, 0 = unlimited
//!   --burst <n>               rate-limit burst capacity (default 8)
//!   --default-timeout-ms <n>  default per-request wall-clock timeout
//!   --max-states <n>          daemon-wide state budget clamp
//!   --cache-capacity <n>      completed results kept for cache hits
//!   --retries <n>             retries on transient analysis failures
//!   --no-result-cache         always recompute, never serve cached verdicts
//!   --metrics <file>          write the fleet metrics report on shutdown
//!   --no-trace                disable request-scoped tracing, the flight
//!                             recorder and per-stage histograms (the
//!                             engine then runs on a disabled recorder)
//!   --flight-capacity <n>     flight-recorder window size (default 64)
//!   --span-cap <n>            span-log cap; excess spans are dropped and
//!                             counted (default 65536)
//!   --store <dir>             cross-run artifact store: explorations
//!                             consult/deposit verdict artifacts there, the
//!                             result cache is boot-warmed from it, and a
//!                             graceful drain persists the cache back;
//!                             readonly:<dir> serves hits without writing
//!   --zones                   delay-zone exploration by default: collapse
//!                             forced runs of quanta into bulk steps
//!                             (identical verdicts and traces; job digests
//!                             diverge from concrete-mode requests)
//!   --zone-advance <closed|replay>  default zone advance strategy:
//!                             `closed` (default) uses cached per-shape
//!                             delay derivatives, `replay` re-derives every
//!                             quantum (identical results; A/B timing lever)
//!   --zone-cap <n>            default per-edge step cap in zone mode
//!                             (never changes verdicts, only granularity)
//! ```
//!
//! On startup the daemon prints `aadlschedd listening on <addr>` — parse
//! that line to discover the ephemeral port. It exits 0 after a graceful
//! `shutdown` request, 2 on usage errors.
//!
//! Set `AADLSCHED_FAKE_CLOCK=<ns>` for byte-deterministic runs (pair it
//! with `--rate-limit 0`, the default, so the request path reads no clock).

use std::process::ExitCode;

use served::Config;

fn usage() -> ExitCode {
    eprintln!(
        "usage: aadlschedd [--addr <host:port>] [--workers <n>] \
         [--queue-capacity <n>] [--rate-limit <n>] [--burst <n>] \
         [--default-timeout-ms <n>] [--max-states <n>] [--cache-capacity <n>] \
         [--retries <n>] [--no-result-cache] [--metrics <file>] \
         [--no-trace] [--flight-capacity <n>] [--span-cap <n>] \
         [--store <dir|readonly:dir>] [--zones] \
         [--zone-advance <closed|replay>] [--zone-cap <n>]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut raw = std::env::args().skip(1);
    while let Some(flag) = raw.next() {
        let mut val = |what: &str| raw.next().ok_or(format!("{what} needs a value"));
        match flag.as_str() {
            "--addr" => cfg.addr = val("--addr")?,
            "--workers" => {
                cfg.workers = val("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue-capacity" => {
                cfg.queue_capacity = val("--queue-capacity")?
                    .parse()
                    .map_err(|e| format!("--queue-capacity: {e}"))?
            }
            "--rate-limit" => {
                cfg.rate_limit = val("--rate-limit")?
                    .parse()
                    .map_err(|e| format!("--rate-limit: {e}"))?
            }
            "--burst" => {
                cfg.burst = val("--burst")?
                    .parse()
                    .map_err(|e| format!("--burst: {e}"))?
            }
            "--default-timeout-ms" => {
                cfg.default_timeout_ms = Some(
                    val("--default-timeout-ms")?
                        .parse()
                        .map_err(|e| format!("--default-timeout-ms: {e}"))?,
                )
            }
            "--max-states" => {
                cfg.max_states = val("--max-states")?
                    .parse()
                    .map_err(|e| format!("--max-states: {e}"))?
            }
            "--cache-capacity" => {
                cfg.cache_capacity = val("--cache-capacity")?
                    .parse()
                    .map_err(|e| format!("--cache-capacity: {e}"))?
            }
            "--retries" => {
                cfg.retries = val("--retries")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?
            }
            "--no-result-cache" => cfg.result_cache = false,
            "--metrics" => cfg.metrics_path = Some(val("--metrics")?),
            "--no-trace" => cfg.trace = false,
            "--flight-capacity" => {
                cfg.flight_capacity = val("--flight-capacity")?
                    .parse()
                    .map_err(|e| format!("--flight-capacity: {e}"))?
            }
            "--span-cap" => {
                cfg.span_cap = val("--span-cap")?
                    .parse()
                    .map_err(|e| format!("--span-cap: {e}"))?
            }
            "--store" => {
                let spec = val("--store")?;
                match spec.strip_prefix("readonly:") {
                    Some(dir) if !dir.is_empty() => {
                        cfg.store = Some(dir.to_string());
                        cfg.store_readonly = true;
                    }
                    Some(_) => return Err("--store readonly: needs a directory".into()),
                    None => cfg.store = Some(spec),
                }
            }
            "--zones" => cfg.zones = true,
            "--zone-cap" => {
                let cap: u64 = val("--zone-cap")?
                    .parse()
                    .map_err(|e| format!("--zone-cap: {e}"))?;
                if cap == 0 {
                    return Err("--zone-cap must be at least 1".into());
                }
                cfg.zone_cap = Some(cap);
            }
            "--zone-advance" => {
                let mode = val("--zone-advance")?;
                if mode != "closed" && mode != "replay" {
                    return Err(format!(
                        "--zone-advance: unknown mode `{mode}` (closed | replay)"
                    ));
                }
                cfg.zone_advance = Some(mode);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let cfg = match parse_args() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    match served::run(cfg) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
