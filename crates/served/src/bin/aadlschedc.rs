//! `aadlschedc` — a thin line-protocol client for `aadlschedd`.
//!
//! ```text
//! aadlschedc --addr <host:port> <command>
//!
//! commands:
//!   analyze <model.aadl> [--root <r>] [--quantum <ms>] [--protocol <p>]
//!           [--compact] [--exhaustive] [--threads <n>] [--max-states <n>]
//!           [--no-memo] [--timeout-ms <n>]
//!       read the model, send it inline, wait for the result; the process
//!       exit code mirrors the wire `code` (0 schedulable, 1 not, 2 input
//!       error, 3 unknown)
//!   raw <json>     send one raw request line, print responses until the
//!                  terminal one (result / error / status / ...)
//!   status [job]   daemon summary, or one job's state
//!   cancel <job>   cancel a queued or running job
//!   metrics        fetch the fleet counters and gauges
//!   stats [--summary]
//!                  live snapshot of every counter, gauge and histogram
//!                  (with p50/p90/p99 quantile estimates)
//!   health [--summary]
//!                  uptime, queue depth, worker and cache occupancy
//!   flight [--summary]
//!                  dump the flight recorder (last N request events)
//!   shutdown       ask the daemon to drain and exit
//! ```
//!
//! Every response line is printed verbatim — the client never re-renders
//! JSON, so transcripts stay byte-identical to what the daemon sent. The
//! exception is `--summary`, which renders the parsed response as one
//! human-readable line instead. The exit code mirrors the wire `code` in
//! all modes: 0 for a successful introspection response, 2 on protocol
//! errors.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;

use obs::Json;

fn usage() -> ExitCode {
    eprintln!(
        "usage: aadlschedc --addr <host:port> \
         (analyze <model.aadl> [opts] | raw <json> | status [job] | \
         cancel <job> | metrics | stats [--summary] | health [--summary] | \
         flight [--summary] | shutdown)"
    );
    ExitCode::from(2)
}

/// Every response terminates the exchange except `accepted`, which is
/// always followed by a `result` for the same request.
fn is_terminal(v: &Json) -> bool {
    !matches!(v.get("type").and_then(Json::as_str), Some("accepted"))
}

/// Run one request/response exchange. Responses stream to stdout as they
/// arrive unless `print` is false (`--summary` renders the terminal
/// response itself). Returns the wire code and the terminal response line.
fn exchange(addr: &str, line: &str, print: bool) -> Result<(u8, String), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    writer
        .write_all(format!("{line}\n").as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let reader = BufReader::new(stream);
    let mut code: u8 = 0;
    for resp in reader.lines() {
        let resp = resp.map_err(|e| format!("recv: {e}"))?;
        if print {
            println!("{resp}");
        }
        let v = Json::parse(&resp).map_err(|e| format!("bad response JSON: {e}"))?;
        if let Some(c) = v.get("code").and_then(Json::as_u64) {
            code = c as u8;
        }
        if is_terminal(&v) {
            return Ok((code, resp));
        }
    }
    Err("connection closed before a terminal response".into())
}

/// One-line human rendering of an introspection response (`--summary`).
/// `None` for anything else (e.g. an `error` response), which is then
/// printed verbatim.
fn summarize(v: &Json) -> Option<String> {
    let uint = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
    match v.get("type").and_then(Json::as_str)? {
        "stats" => {
            let section = |k: &str| match v.get(k) {
                Some(Json::Obj(pairs)) => pairs.len(),
                _ => 0,
            };
            let requests = v
                .get("counters")
                .and_then(|c| c.get("served.requests"))
                .and_then(Json::as_u64)
                .unwrap_or(0);
            let wall = v.get("histograms").and_then(|h| h.get("served.request_wall"));
            let q = |name: &str| {
                wall.and_then(|w| w.get(name))
                    .and_then(Json::as_u64)
                    .unwrap_or(0)
            };
            Some(format!(
                "stats: {} counters, {} gauges, {} histograms; requests={requests}; \
                 request_wall p50={} p90={} p99={} ns",
                section("counters"),
                section("gauges"),
                section("histograms"),
                q("p50"),
                q("p90"),
                q("p99"),
            ))
        }
        "health" => Some(format!(
            "health: up {} ms, queue {}, running {}/{} workers, {} connections, \
             cache {}/{}, draining={}",
            uint("uptime_ns") / 1_000_000,
            uint("queue_depth"),
            uint("jobs_running"),
            uint("workers"),
            uint("connections"),
            uint("cache_entries"),
            uint("cache_capacity"),
            v.get("draining").and_then(Json::as_bool).unwrap_or(false),
        )),
        "flight" => {
            let events = match v.get("events") {
                Some(Json::Arr(items)) => items.len(),
                _ => 0,
            };
            Some(format!(
                "flight: {events} events in window (capacity {}, {} recorded)",
                uint("capacity"),
                uint("recorded"),
            ))
        }
        _ => None,
    }
}

fn analyze_request(mut raw: std::env::Args) -> Result<String, String> {
    let file = raw.next().ok_or("analyze needs <model.aadl>")?;
    let model = std::fs::read_to_string(&file).map_err(|e| format!("cannot read `{file}`: {e}"))?;
    let mut opts: Vec<(String, Json)> = Vec::new();
    while let Some(flag) = raw.next() {
        let mut val = |what: &str| raw.next().ok_or(format!("{what} needs a value"));
        match flag.as_str() {
            "--root" => opts.push(("root".into(), Json::from(val("--root")?))),
            "--quantum" => opts.push((
                "quantum_ms".into(),
                Json::Int(
                    val("--quantum")?
                        .parse()
                        .map_err(|e| format!("--quantum: {e}"))?,
                ),
            )),
            "--protocol" => opts.push(("protocol".into(), Json::from(val("--protocol")?))),
            "--compact" => opts.push(("compact".into(), Json::Bool(true))),
            "--exhaustive" => opts.push(("exhaustive".into(), Json::Bool(true))),
            "--threads" => opts.push((
                "threads".into(),
                Json::UInt(
                    val("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                ),
            )),
            "--max-states" => opts.push((
                "max_states".into(),
                Json::UInt(
                    val("--max-states")?
                        .parse()
                        .map_err(|e| format!("--max-states: {e}"))?,
                ),
            )),
            "--no-memo" => opts.push(("memo".into(), Json::Bool(false))),
            "--timeout-ms" => opts.push((
                "timeout_ms".into(),
                Json::UInt(
                    val("--timeout-ms")?
                        .parse()
                        .map_err(|e| format!("--timeout-ms: {e}"))?,
                ),
            )),
            other => return Err(format!("unknown analyze flag `{other}`")),
        }
    }
    let mut pairs = vec![
        ("type", Json::from("analyze")),
        ("id", Json::from("c1")),
        ("model", Json::from(model)),
    ];
    if !opts.is_empty() {
        pairs.push(("options", Json::Obj(opts)));
    }
    Ok(Json::obj(pairs).to_compact())
}

fn main() -> ExitCode {
    let mut raw = std::env::args();
    raw.next();
    let addr = match (raw.next().as_deref(), raw.next()) {
        (Some("--addr"), Some(addr)) => addr,
        _ => return usage(),
    };
    let Some(cmd) = raw.next() else {
        return usage();
    };
    let mut summary = false;
    let built = match cmd.as_str() {
        "analyze" => analyze_request(raw),
        "raw" => match raw.next() {
            Some(line) => Ok(line),
            None => Err("raw needs a JSON line".into()),
        },
        "status" => {
            let mut pairs = vec![("type", Json::from("status")), ("id", Json::from("c1"))];
            if let Some(job) = raw.next() {
                pairs.push(("job", Json::from(job)));
            }
            Ok(Json::obj(pairs).to_compact())
        }
        "cancel" => match raw.next() {
            Some(job) => Ok(Json::obj([
                ("type", Json::from("cancel")),
                ("id", Json::from("c1")),
                ("job", Json::from(job)),
            ])
            .to_compact()),
            None => Err("cancel needs a job digest".into()),
        },
        "metrics" => Ok(
            Json::obj([("type", Json::from("metrics")), ("id", Json::from("c1"))]).to_compact(),
        ),
        "stats" | "health" | "flight" => loop {
            match raw.next().as_deref() {
                None => {
                    break Ok(Json::obj([
                        ("type", Json::from(cmd.as_str())),
                        ("id", Json::from("c1")),
                    ])
                    .to_compact())
                }
                Some("--summary") => summary = true,
                Some(other) => break Err(format!("unknown {cmd} flag `{other}`")),
            }
        },
        "shutdown" => Ok(
            Json::obj([("type", Json::from("shutdown")), ("id", Json::from("c1"))]).to_compact(),
        ),
        other => Err(format!("unknown command `{other}`")),
    };
    let line = match built {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    match exchange(&addr, &line, !summary) {
        Ok((code, last)) => {
            if summary {
                match Json::parse(&last).ok().as_ref().and_then(summarize) {
                    Some(one_liner) => println!("{one_liner}"),
                    // e.g. an `error` response — fall back to the raw line.
                    None => println!("{last}"),
                }
            }
            ExitCode::from(code)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
