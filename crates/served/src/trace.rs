//! Request-scoped tracing: the per-request bookkeeping that turns one wire
//! request into one coherent span tree and one flight-recorder event.
//!
//! The daemon assigns every parsed work request a **request sequence
//! number** (`req`, starting at 1) and stamps its lifecycle on the
//! *recorder* clock only (see DESIGN.md §15 — the deadline clock is a
//! separate instance, so reaper polling never perturbs trace stamps). The
//! stage boundaries, in order:
//!
//! | stage           | from → to                                           |
//! |-----------------|-----------------------------------------------------|
//! | `parse`         | line received → request parsed (incl. rate limit)   |
//! | `dispatch`      | parsed → job submitted (file read, digest, deadline)|
//! | `queue_wait`    | dispatched → worker claim (owner request only)      |
//! | `coalesce_wait` | dispatched → result ready (coalesced requests)      |
//! | `exec`          | worker claim → analysis done (owner only)           |
//! | `serialize`     | result rendering + socket write, per waiter         |
//!
//! A [`ReqTrace`] rides in the job table as part of the waiter, so whoever
//! delivers the terminal response — the connection thread on a cache hit,
//! the worker fan-out otherwise — finishes the same trace: closes the root
//! `served.request` span (with `code` and `slack_ns` fields) and records a
//! [`obs::FlightEvent`]. `slack_ns` is the wall-clock latency not covered
//! by any stage (fan-out queuing, lock waits), so per request
//! `Σ stages + slack_ns == root span duration` holds exactly.

use crate::wire::JobResult;

/// The trace state of one in-flight request, carried in its waiter entry.
#[derive(Clone, Debug)]
pub struct ReqTrace {
    /// Daemon-wide request sequence number (the `req` span field).
    pub req: u64,
    /// Span id of the root `served.request` span (`None` when the span log
    /// cap dropped it — stages and the flight event still record).
    pub root: Option<u64>,
    /// Recorder-clock stamp when the request line was received.
    pub recv_ns: u64,
    /// Recorder-clock stamp when dispatch finished (job submitted); the
    /// start of `queue_wait` / `coalesce_wait`.
    pub dispatched_ns: u64,
    /// `(stage name, duration ns)` in stage order — the flight event's
    /// `stages` object and the input to the slack computation.
    pub stages: Vec<(&'static str, u64)>,
}

impl ReqTrace {
    /// Append one completed stage.
    pub fn stage(&mut self, name: &'static str, duration_ns: u64) {
        self.stages.push((name, duration_ns));
    }

    /// Total time covered by recorded stages.
    pub fn stage_total_ns(&self) -> u64 {
        self.stages.iter().map(|(_, d)| d).sum()
    }

    /// Wall-clock latency not covered by any stage, given the trace's end
    /// stamp — the `slack_ns` root-span field.
    pub fn slack_ns(&self, end_ns: u64) -> u64 {
        end_ns
            .saturating_sub(self.recv_ns)
            .saturating_sub(self.stage_total_ns())
    }
}

/// What a worker needs to attach the execution to the owning request's span
/// tree: carried inside the [`JobPayload`](crate::jobs::JobPayload), because
/// the worker claims the job before the waiter list is available.
#[derive(Clone, Copy, Debug)]
pub struct JobMeta {
    /// The owning (first-submitting) request's sequence number.
    pub req: u64,
    /// The owner's root span id.
    pub root: Option<u64>,
}

/// The flight-recorder outcome label of a delivered result: the verdict for
/// decided analyses, the interruption reason for `unknown`, `error`
/// otherwise. Serving dispositions that never reach a worker use their own
/// labels (`cache-hit`, `queue-full`, `rejected`) at the call site.
pub fn outcome_str(r: &JobResult) -> String {
    match r.code {
        0 => "schedulable".into(),
        1 => "unschedulable".into(),
        3 => r.reason.clone().unwrap_or_else(|| "unknown".into()),
        _ => "error".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_accumulate_and_slack_is_the_uncovered_remainder() {
        let mut t = ReqTrace {
            req: 3,
            root: Some(0),
            recv_ns: 100,
            dispatched_ns: 130,
            stages: Vec::new(),
        };
        t.stage("parse", 10);
        t.stage("dispatch", 20);
        t.stage("queue_wait", 5);
        t.stage("exec", 40);
        t.stage("serialize", 15);
        assert_eq!(t.stage_total_ns(), 90);
        // Request ran 100..=200: 100 ns wall, 90 covered, 10 slack.
        assert_eq!(t.slack_ns(200), 10);
        // Stages never make slack negative.
        assert_eq!(t.slack_ns(150), 0);
    }

    #[test]
    fn outcomes_map_codes_and_reasons() {
        let mut r = JobResult::unknown("timeout");
        assert_eq!(outcome_str(&r), "timeout");
        r.reason = None;
        assert_eq!(outcome_str(&r), "unknown");
        assert_eq!(outcome_str(&JobResult::input_error("boom")), "error");
        let mut ok = JobResult::unknown("x");
        ok.code = 0;
        assert_eq!(outcome_str(&ok), "schedulable");
        ok.code = 1;
        assert_eq!(outcome_str(&ok), "unschedulable");
    }
}
