//! Drain-time persistence of the result cache.
//!
//! On graceful shutdown the daemon snapshots every cached verdict into the
//! cross-run artifact store under one fixed key; the next daemon boot-warms
//! its cache from that snapshot before accepting connections. The snapshot
//! key folds in the daemon-wide state budget: cached verdicts were produced
//! under that clamp, so a daemon restarted with a different `--max-states`
//! must start cold rather than serve results computed under another budget.
//!
//! The byte format mirrors the cas entry discipline: a leading format
//! version, length-prefixed strings, `Option` as a one-byte tag, and strict
//! decoding — any framing problem (truncation, trailing bytes, an alien
//! version, a non-cacheable exit code) makes the whole snapshot a miss.
//! A cold boot is always safe; a wrong verdict never is.

use std::sync::Arc;

use crate::wire::JobResult;

/// Snapshot format version. Bump on any layout change; old snapshots then
/// decode to `None` and the daemon boots cold.
const SNAPSHOT_VERSION: u32 = 1;

/// The fixed store key of the result-cache snapshot for a daemon running
/// under the given state budget.
pub fn snapshot_key(max_states: usize) -> String {
    cas::key(&[
        b"served.result-cache.v1",
        &(max_states as u64).to_le_bytes(),
    ])
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_str(out: &mut Vec<u8>, s: &Option<String>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
    }
}

/// Serialize the cached results (digest → verdict) into snapshot bytes.
pub fn encode_snapshot(entries: &[(String, Arc<JobResult>)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (digest, r) in entries {
        put_str(&mut out, digest);
        out.push(r.code);
        put_str(&mut out, &r.verdict);
        put_opt_str(&mut out, &r.reason);
        match &r.stats {
            None => out.push(0),
            Some(stats) => {
                out.push(1);
                out.extend_from_slice(&stats.to_bytes());
            }
        }
        out.extend_from_slice(&(r.violations.len() as u32).to_le_bytes());
        for v in &r.violations {
            put_str(&mut out, v);
        }
        match r.at_quantum {
            None => out.push(0),
            Some(q) => {
                out.push(1);
                out.extend_from_slice(&q.to_le_bytes());
            }
        }
    }
    out
}

/// Strict bounds-checked reader over snapshot bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        // A length that cannot fit in what remains is framing garbage.
        if len > self.bytes.len().saturating_sub(self.pos) {
            return None;
        }
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }

    fn opt_str(&mut self) -> Option<Option<String>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.str()?)),
            _ => None,
        }
    }
}

/// Decode a snapshot. `None` on any framing problem or on entries that could
/// never legitimately be cached (only exit codes 0 and 1 are).
pub fn decode_snapshot(bytes: &[u8]) -> Option<Vec<(String, JobResult)>> {
    let mut r = Reader { bytes, pos: 0 };
    if r.u32()? != SNAPSHOT_VERSION {
        return None;
    }
    let count = r.u32()? as usize;
    let mut entries = Vec::new();
    for _ in 0..count {
        let digest = r.str()?;
        let code = r.u8()?;
        if !matches!(code, 0 | 1) {
            return None;
        }
        let verdict = r.str()?;
        let reason = r.opt_str()?;
        let stats = match r.u8()? {
            0 => None,
            1 => Some(versa::Stats::from_bytes(r.take(88)?)?),
            _ => return None,
        };
        let nviol = r.u32()? as usize;
        let mut violations = Vec::new();
        for _ in 0..nviol {
            violations.push(r.str()?);
        }
        let at_quantum = match r.u8()? {
            0 => None,
            1 => Some(r.u64()?),
            _ => return None,
        };
        entries.push((
            digest,
            JobResult {
                code,
                verdict,
                reason,
                stats,
                violations,
                at_quantum,
            },
        ));
    }
    if r.pos != bytes.len() {
        return None;
    }
    Some(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<(String, Arc<JobResult>)> {
        let mut stats = versa::Stats::default();
        stats.states = 42;
        stats.transitions = 99;
        vec![
            (
                "aaaa1111bbbb2222".into(),
                Arc::new(JobResult {
                    code: 0,
                    verdict: "schedulable".into(),
                    reason: None,
                    stats: Some(stats),
                    violations: Vec::new(),
                    at_quantum: None,
                }),
            ),
            (
                "cccc3333dddd4444".into(),
                Arc::new(JobResult {
                    code: 1,
                    verdict: "unschedulable".into(),
                    reason: None,
                    stats: None,
                    violations: vec!["thread t1 missed its deadline".into()],
                    at_quantum: Some(5000),
                }),
            ),
        ]
    }

    #[test]
    fn snapshot_roundtrips() {
        let entries = sample();
        let bytes = encode_snapshot(&entries);
        let back = decode_snapshot(&bytes).expect("decodes");
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].0, "aaaa1111bbbb2222");
        assert_eq!(back[0].1.code, 0);
        assert_eq!(back[0].1.stats.as_ref().unwrap().states, 42);
        assert_eq!(back[1].1.violations.len(), 1);
        assert_eq!(back[1].1.at_quantum, Some(5000));
    }

    #[test]
    fn snapshot_rejects_framing_problems() {
        let bytes = encode_snapshot(&sample());
        // Alien version.
        let mut alien = bytes.clone();
        alien[0] ^= 0xff;
        assert!(decode_snapshot(&alien).is_none());
        // Every truncation.
        for n in 0..bytes.len() {
            assert!(decode_snapshot(&bytes[..n]).is_none(), "truncated at {n}");
        }
        // Trailing bytes.
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_snapshot(&long).is_none());
        // A non-cacheable code.
        let mut entries = sample();
        Arc::make_mut(&mut entries[0].1).code = 2;
        assert!(decode_snapshot(&encode_snapshot(&entries)).is_none());
    }

    #[test]
    fn snapshot_keys_separate_budgets() {
        assert_ne!(snapshot_key(usize::MAX), snapshot_key(10_000));
        assert_eq!(snapshot_key(500), snapshot_key(500));
    }
}
