//! The daemon itself: listener → bounded queue → worker pool, plus the
//! deadline reaper and the graceful-drain shutdown path.
//!
//! Layering (see DESIGN.md §14):
//!
//! * **Connection threads** (one per client) parse requests, apply the
//!   per-peer rate limit, and submit jobs. They never analyze anything.
//! * **The bounded queue** carries job *digests* only; the payload lives in
//!   the job table. A full queue rejects instead of blocking.
//! * **Workers** pop digests, run the translate→explore→diagnose pipeline
//!   with the daemon's warm term store and the job's cancellation token,
//!   and fan the result out to every waiter.
//! * **The reaper** fires cancellation tokens of jobs past their wall-clock
//!   deadline.
//!
//! Response ordering: a connection thread holds its write lock across a
//! whole request dispatch, so the `accepted` acknowledgement always reaches
//! the client before the worker's `result` for the same request — the
//! fan-out blocks on the same lock. The lock order is write-mutex then
//! job-table on the connection side, and job-table alone followed by
//! write-mutex on the fan-out side, so the two never deadlock.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use aadl::instance::instantiate;
use aadl::parser::parse_package;
use aadl::properties::{ConcurrencyControlProtocol, TimeVal};
use aadl2acsr::{
    analyze_translated, translate, AnalysisOptions, TranslateError, TranslateOptions,
};
use acsr::TermStore;
use obs::Json;

use crate::jobs::{JobPayload, JobTable, Submit};
use crate::limiter::RateLimiter;
use crate::queue::BoundedQueue;
use crate::wire::{self, AnalyzeOptions, JobResult, ModelSource, Request};

/// Daemon configuration (the `aadlschedd` flags).
#[derive(Clone, Debug)]
pub struct Config {
    /// Listen address; port `0` binds an ephemeral port (announced on
    /// stdout as `aadlschedd listening on <addr>`).
    pub addr: String,
    /// Worker threads running analyses (minimum 1).
    pub workers: usize,
    /// Bounded request-queue capacity; a full queue rejects new jobs.
    pub queue_capacity: usize,
    /// Per-peer rate limit in requests per second (`0` = unlimited; also
    /// the byte-deterministic mode — no clock reads on the request path).
    pub rate_limit: u64,
    /// Rate-limit burst capacity.
    pub burst: u64,
    /// Default per-request wall-clock timeout in ms (`None` = no timeout).
    pub default_timeout_ms: Option<u64>,
    /// Daemon-wide state budget every request is clamped to.
    pub max_states: usize,
    /// Completed results kept for cache hits (FIFO eviction).
    pub cache_capacity: usize,
    /// Bounded retries when the analysis pipeline fails transiently.
    pub retries: u32,
    /// Keep verdicts in the result cache (`false` = always recompute).
    pub result_cache: bool,
    /// Write the end-of-life fleet metrics report to this path on shutdown.
    pub metrics_path: Option<String>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 64,
            rate_limit: 0,
            burst: 8,
            default_timeout_ms: None,
            max_states: usize::MAX,
            cache_capacity: 128,
            retries: 1,
            result_cache: true,
            metrics_path: None,
        }
    }
}

impl Config {
    /// The configuration as JSON, embedded in the shutdown metrics report.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("addr", Json::from(self.addr.as_str())),
            ("workers", Json::from(self.workers)),
            ("queue_capacity", Json::from(self.queue_capacity)),
            ("rate_limit", Json::from(self.rate_limit)),
            ("burst", Json::from(self.burst)),
            (
                "default_timeout_ms",
                self.default_timeout_ms.map(Json::from).unwrap_or(Json::Null),
            ),
            (
                "max_states",
                if self.max_states == usize::MAX {
                    Json::Null
                } else {
                    Json::from(self.max_states)
                },
            ),
            ("cache_capacity", Json::from(self.cache_capacity)),
            ("retries", Json::from(u64::from(self.retries))),
            ("result_cache", Json::Bool(self.result_cache)),
        ])
    }
}

/// A waiter: the connection's serialized writer plus the request id the
/// result must echo.
type Waiter = (Arc<Mutex<TcpStream>>, String);

/// Fleet-level instruments, registered once so the `metrics` response can
/// render them in a fixed order.
struct Instruments {
    requests: obs::Counter,
    analyze: obs::Counter,
    results: obs::Counter,
    coalesced: obs::Counter,
    cache_hits: obs::Counter,
    rejected_rate_limit: obs::Counter,
    rejected_queue_full: obs::Counter,
    timeouts: obs::Counter,
    cancelled: obs::Counter,
    retries: obs::Counter,
    errors: obs::Counter,
    queue_depth: obs::Gauge,
    jobs_running: obs::Gauge,
    connections: obs::Gauge,
    request_wall: obs::Histogram,
}

impl Instruments {
    fn new(rec: &obs::Recorder) -> Instruments {
        Instruments {
            requests: rec.counter("served.requests"),
            analyze: rec.counter("served.analyze"),
            results: rec.counter("served.results"),
            coalesced: rec.counter("served.coalesced"),
            cache_hits: rec.counter("served.cache_hits"),
            rejected_rate_limit: rec.counter("served.rejected_rate_limit"),
            rejected_queue_full: rec.counter("served.rejected_queue_full"),
            timeouts: rec.counter("served.timeouts"),
            cancelled: rec.counter("served.cancelled"),
            retries: rec.counter("served.retries"),
            errors: rec.counter("served.errors"),
            queue_depth: rec.gauge("served.queue_depth"),
            jobs_running: rec.gauge("served.jobs_running"),
            connections: rec.gauge("served.connections"),
            request_wall: rec.histogram("served.request_wall"),
        }
    }
}

/// Shared daemon state: the job table, the request queue, the limiter, the
/// warm term store, and the fleet instruments.
pub struct Daemon {
    cfg: Config,
    jobs: JobTable<Waiter>,
    queue: BoundedQueue<String>,
    limiter: RateLimiter,
    rec: obs::Recorder,
    clock: Arc<dyn obs::Clock>,
    /// The warm term store: shared across every request of the daemon's
    /// lifetime, so structurally identical subterms (and whole models)
    /// intern once, and repeat requests skip the re-hashing a cold CLI
    /// process pays on every start.
    store: Arc<TermStore>,
    draining: AtomicBool,
    m: Instruments,
}

impl Daemon {
    fn update_gauges(&self) {
        self.m.queue_depth.set(self.queue.len() as i64);
        self.m.jobs_running.set(self.jobs.running_count() as i64);
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }
}

/// Build the daemon clock honoring `AADLSCHED_FAKE_CLOCK` (a tick in ns per
/// reading — the same contract as the CLI). Two independent instances:
/// one `Arc` for deadlines/limiter, one boxed for the recorder.
fn build_clock() -> Result<(Arc<dyn obs::Clock>, Box<dyn obs::Clock>), String> {
    match std::env::var("AADLSCHED_FAKE_CLOCK") {
        Ok(tick) => {
            let tick: u64 = tick
                .parse()
                .map_err(|e| format!("AADLSCHED_FAKE_CLOCK must be a tick in ns: {e}"))?;
            Ok((
                Arc::new(obs::FakeClock::new(tick)),
                Box::new(obs::FakeClock::new(tick)),
            ))
        }
        Err(_) => Ok((
            Arc::new(obs::MonotonicClock::new()),
            Box::new(obs::MonotonicClock::new()),
        )),
    }
}

/// Run the daemon until a `shutdown` request drains it. Prints
/// `aadlschedd listening on <addr>` once the socket is bound — the line
/// clients and the smoke test parse for the ephemeral port.
pub fn run(cfg: Config) -> Result<(), String> {
    let (clock, rec_clock) = build_clock()?;
    let rec = obs::Recorder::with_clock(rec_clock);
    let listener = TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    println!("aadlschedd listening on {local}");
    // The line above is the readiness signal; make sure it leaves the
    // process even when stdout is a pipe.
    std::io::stdout().flush().ok();

    let daemon = Arc::new(Daemon {
        limiter: RateLimiter::new(cfg.rate_limit, cfg.burst, clock.clone()),
        jobs: JobTable::new(if cfg.result_cache {
            cfg.cache_capacity
        } else {
            0
        }),
        queue: BoundedQueue::new(cfg.queue_capacity),
        m: Instruments::new(&rec),
        rec,
        clock,
        store: Arc::new(TermStore::new()),
        draining: AtomicBool::new(false),
        cfg,
    });

    let workers: Vec<_> = (0..daemon.cfg.workers.max(1))
        .map(|wi| {
            let d = daemon.clone();
            std::thread::Builder::new()
                .name(format!("aadlschedd-worker-{wi}"))
                .spawn(move || {
                    while let Some(digest) = d.queue.pop() {
                        d.update_gauges();
                        run_job(&d, &digest);
                    }
                })
                .expect("spawn worker")
        })
        .collect();

    let reaper = {
        let d = daemon.clone();
        std::thread::Builder::new()
            .name("aadlschedd-reaper".into())
            .spawn(move || loop {
                if d.draining() && d.queue.is_empty() && d.jobs.running_count() == 0 {
                    break;
                }
                // The worker that observes the fired token counts the
                // timeout; the reaper only fires it.
                d.jobs.reap(|| d.clock.now_ns());
                std::thread::sleep(std::time::Duration::from_millis(20));
            })
            .expect("spawn reaper")
    };

    // Track live client sockets so drain can unblock their readers. Keyed
    // by a connection id so each handler thread can drop its own entry on
    // exit — retaining every clone for the daemon's lifetime would keep one
    // fd per past connection alive (CLOSE_WAIT) until the fd limit kills
    // `accept`.
    let conns: Arc<Mutex<std::collections::HashMap<u64, TcpStream>>> =
        Arc::new(Mutex::new(std::collections::HashMap::new()));
    let mut next_conn_id: u64 = 0;
    for stream in listener.incoming() {
        if daemon.draining() {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Responses are small back-to-back lines (`accepted` then `result`);
        // without nodelay, Nagle + delayed ACK adds ~40 ms per exchange.
        stream.set_nodelay(true).ok();
        let conn_id = next_conn_id;
        next_conn_id += 1;
        if let Ok(clone) = stream.try_clone() {
            conns.lock().expect("conns poisoned").insert(conn_id, clone);
        }
        let d = daemon.clone();
        let local = local.to_string();
        let conns_for_thread = conns.clone();
        std::thread::Builder::new()
            .name("aadlschedd-conn".into())
            .spawn(move || {
                handle_conn(d, stream, &local);
                conns_for_thread
                    .lock()
                    .expect("conns poisoned")
                    .remove(&conn_id);
            })
            .expect("spawn conn");
    }

    // Drain: workers finish what was queued, every result is fanned out,
    // then readers are unblocked and the metrics report is written.
    for w in workers {
        w.join().expect("worker panicked");
    }
    reaper.join().expect("reaper panicked");
    for c in conns.lock().expect("conns poisoned").values() {
        c.shutdown(std::net::Shutdown::Both).ok();
    }
    if let Some(path) = &daemon.cfg.metrics_path {
        let report = metrics_report(&daemon);
        std::fs::write(path, report).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(())
}

/// The end-of-life fleet report through the schema-versioned report sink.
fn metrics_report(d: &Daemon) -> String {
    let run_id = obs::run_id(&[b"aadlschedd", d.cfg.addr.as_bytes()]);
    let mut report = obs::Report::new(&run_id, "aadlschedd");
    report.set("config", d.cfg.to_json());
    report.attach_run(&d.rec.finish());
    report.to_json()
}

/// Largest request line the daemon will buffer, excluding the newline.
/// Inline model sources fit comfortably; anything bigger is a hostile or
/// broken client streaming bytes without a newline, which must not be able
/// to grow daemon memory without bound.
const MAX_REQUEST_LINE_BYTES: usize = 4 * 1024 * 1024;

/// Read one newline-terminated request line, buffering at most
/// [`MAX_REQUEST_LINE_BYTES`]. `Ok(None)` ends the connection (EOF, an I/O
/// error, or invalid UTF-8 — the same cases `BufRead::lines` treated as
/// terminal); `Err(())` means the cap was hit before a newline arrived.
fn read_request_line(reader: &mut BufReader<TcpStream>) -> Result<Option<String>, ()> {
    let mut buf = Vec::new();
    let mut limited = reader.by_ref().take(MAX_REQUEST_LINE_BYTES as u64 + 1);
    match limited.read_until(b'\n', &mut buf) {
        Ok(0) | Err(_) => Ok(None),
        Ok(_) => {
            if buf.last() == Some(&b'\n') {
                buf.pop();
                if buf.last() == Some(&b'\r') {
                    buf.pop();
                }
            } else if buf.len() > MAX_REQUEST_LINE_BYTES {
                return Err(());
            }
            Ok(String::from_utf8(buf).ok())
        }
    }
}

fn write_line(writer: &Arc<Mutex<TcpStream>>, v: Json) {
    let mut guard = writer.lock().expect("writer poisoned");
    let mut line = v.to_compact();
    line.push('\n');
    guard.write_all(line.as_bytes()).ok();
}

fn handle_conn(d: Arc<Daemon>, stream: TcpStream, local_addr: &str) {
    let peer = stream
        .peer_addr()
        .map(|a| a.ip().to_string())
        .unwrap_or_else(|_| "unknown".into());
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(write_half));
    d.m.connections.set(d.m.connections.get() + 1);
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_request_line(&mut reader) {
            Ok(Some(line)) => line,
            Ok(None) => break,
            Err(()) => {
                // Oversized line: tell the client why, then hang up — the
                // rest of its stream is the tail of the same giant line.
                d.m.errors.inc();
                write_line(&writer, wire::error_response(None, "request line too long"));
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        d.m.requests.inc();
        if !d.limiter.allow(&peer) {
            d.m.rejected_rate_limit.inc();
            write_line(&writer, wire::error_response(None, "rate limit exceeded"));
            continue;
        }
        let req = match wire::parse_request(&line) {
            Ok(req) => req,
            Err(message) => {
                d.m.errors.inc();
                // Echo the id when the malformed request still carried one.
                let id = Json::parse(&line)
                    .ok()
                    .and_then(|v| v.get("id").and_then(Json::as_str).map(String::from));
                write_line(&writer, wire::error_response(id.as_deref(), &message));
                continue;
            }
        };
        match req {
            Request::Analyze {
                id,
                source,
                options,
            } => handle_analyze(&d, &writer, &id, source, options),
            Request::Status { id, job } => {
                let resp = match job {
                    Some(job) => match d.jobs.status(&job) {
                        Some((state, result)) => {
                            wire::status_job(&id, &job, state, result.as_deref())
                        }
                        None => wire::status_job(&id, &job, "unknown", None),
                    },
                    None => wire::status_summary(
                        &id,
                        d.queue.len(),
                        d.jobs.running_count(),
                        d.draining(),
                    ),
                };
                write_line(&writer, resp);
            }
            Request::Cancel { id, job } => {
                let was = d.jobs.cancel(&job);
                if was == "queued" || was == "running" {
                    d.m.cancelled.inc();
                }
                write_line(&writer, wire::cancelled_response(&id, &job, was));
            }
            Request::Metrics { id } => write_line(&writer, metrics_response(&d, &id)),
            Request::Shutdown { id } => {
                write_line(&writer, wire::shutting_down(&id));
                d.draining.store(true, Ordering::Release);
                d.queue.close();
                // Wake the accept loop so it observes the drain flag.
                TcpStream::connect(local_addr).ok();
                break;
            }
        }
    }
    d.m.connections.set(d.m.connections.get() - 1);
}

fn handle_analyze(
    d: &Arc<Daemon>,
    writer: &Arc<Mutex<TcpStream>>,
    id: &str,
    source: ModelSource,
    options: AnalyzeOptions,
) {
    d.m.analyze.inc();
    if d.draining() {
        d.m.errors.inc();
        write_line(writer, wire::error_response(Some(id), "shutting down"));
        return;
    }
    let source = match source {
        ModelSource::Inline(text) => text,
        ModelSource::File(path) => match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                d.m.errors.inc();
                write_line(
                    writer,
                    wire::error_response(Some(id), &format!("cannot read `{path}`: {e}")),
                );
                return;
            }
        },
    };
    let digest = wire::job_digest(&source, &options);
    let timeout_ms = options.timeout_ms.or(d.cfg.default_timeout_ms);
    let deadline_ns = timeout_ms.map(|ms| d.clock.now_ns().saturating_add(ms * 1_000_000));
    // Hold the write lock across the whole dispatch: the fan-out cannot
    // deliver our own result before we have written `accepted`.
    let mut guard = writer.lock().expect("writer poisoned");
    let payload = JobPayload { source, options };
    let waiter = (writer.clone(), id.to_string());
    let mut lines: Vec<Json> = Vec::new();
    match d.jobs.submit(&digest, payload, waiter, deadline_ns) {
        Submit::Cached(result) => {
            d.m.cache_hits.inc();
            lines.push(wire::accepted(id, &digest, false));
            lines.push(wire::result_response(id, &digest, &result, true));
        }
        Submit::Coalesced => {
            d.m.coalesced.inc();
            lines.push(wire::accepted(id, &digest, true));
        }
        Submit::New => match d.queue.try_push(digest.clone()) {
            Ok(()) => {
                d.update_gauges();
                lines.push(wire::accepted(id, &digest, false));
            }
            Err(_) => {
                d.m.rejected_queue_full.inc();
                // A concurrent identical request may have coalesced onto the
                // entry between our `submit` and `try_push`; it was already
                // sent `accepted`, so every waiter abort() hands back must
                // be told the job died or its client hangs forever.
                for (w, wid) in d.jobs.abort(&digest) {
                    if Arc::ptr_eq(&w, writer) {
                        // Same connection as ours: its writer lock is the
                        // one we already hold, so queue the line instead of
                        // deadlocking in `write_line`.
                        if wid != id {
                            lines.push(wire::error_response(
                                Some(&wid),
                                "queue full, retry later",
                            ));
                        }
                    } else {
                        write_line(&w, wire::error_response(Some(&wid), "queue full, retry later"));
                    }
                }
                lines.push(wire::error_response(Some(id), "queue full, retry later"));
            }
        },
    }
    for v in lines {
        let mut line = v.to_compact();
        line.push('\n');
        guard.write_all(line.as_bytes()).ok();
    }
}

/// Execute one job end to end: deadline and cancellation checks, the
/// translate→explore→diagnose pipeline with bounded retries on panics, and
/// the fan-out of the result to every waiter.
fn run_job(d: &Arc<Daemon>, digest: &str) {
    let Some((payload, cancel, deadline_ns)) = d.jobs.take_running(digest) else {
        return;
    };
    d.update_gauges();
    let span = d.rec.span("served.request");
    let started = d.clock.now_ns();
    let result = if cancel.is_cancelled() {
        // Cancelled (or reaped) while still queued.
        if d.jobs.timed_out(digest) {
            d.m.timeouts.inc();
            JobResult::unknown("timeout")
        } else {
            JobResult::unknown("cancelled")
        }
    } else if deadline_ns.is_some_and(|dl| started >= dl) {
        // Deterministic immediate timeout (`timeout_ms: 0`), or a job that
        // sat in the queue past its whole deadline.
        d.jobs.mark_timed_out(digest);
        d.m.timeouts.inc();
        JobResult::unknown("timeout")
    } else {
        let mut attempts = 0;
        loop {
            attempts += 1;
            match std::panic::catch_unwind(AssertUnwindSafe(|| {
                analyze_source(d, &payload, &cancel)
            })) {
                Ok(mut result) => {
                    // The explorer reports `cancelled`; the daemon knows
                    // whether the token was fired by a deadline.
                    if result.reason.as_deref() == Some("cancelled")
                        && d.jobs.timed_out(digest)
                    {
                        result.reason = Some("timeout".into());
                        d.m.timeouts.inc();
                    }
                    break result;
                }
                Err(_) if attempts <= d.cfg.retries => {
                    // Transient failure (a panic in the pipeline): bounded
                    // retry, then give up with an error result.
                    d.m.retries.inc();
                    continue;
                }
                Err(_) => {
                    d.m.errors.inc();
                    break JobResult::input_error("analysis panicked; giving up after retries");
                }
            }
        }
    };
    d.m.request_wall
        .observe(d.clock.now_ns().saturating_sub(started));
    span.set("code", i64::from(result.code));
    span.end();
    d.m.results.inc();
    // Verdicts cache; input errors and interruptions do not (a retry might
    // succeed under a fresh deadline or budget).
    let cacheable = d.cfg.result_cache && matches!(result.code, 0 | 1);
    let waiters = d.jobs.complete(digest, result.clone(), cacheable);
    d.update_gauges();
    for (writer, id) in waiters {
        write_line(&writer, wire::result_response(&id, digest, &result, false));
    }
}

/// The translate→explore→diagnose pipeline for one request, sharing the
/// daemon's warm store and recorder — the same stages as the `aadlsched`
/// CLI, returning the wire-level result instead of exiting.
fn analyze_source(d: &Arc<Daemon>, payload: &JobPayload, cancel: &versa::CancelToken) -> JobResult {
    let o = &payload.options;
    let pkg = match parse_package(&payload.source) {
        Ok(pkg) => pkg,
        Err(e) => return JobResult::input_error(format!("parse error: {e}")),
    };
    let root = match &o.root {
        Some(root) => root.clone(),
        None => match pkg.default_root() {
            Ok(root) => root,
            Err(e) => return JobResult::input_error(e),
        },
    };
    let model = match instantiate(&pkg, &root) {
        Ok(m) => m,
        Err(e) => return JobResult::input_error(format!("instantiation error: {e}")),
    };
    let protocol = match &o.protocol {
        None => None,
        Some(p) => match ConcurrencyControlProtocol::parse(p) {
            Some(p) => Some(p),
            None => {
                return JobResult::input_error(format!("unknown protocol `{p}` (none | pip | pcp)"))
            }
        },
    };
    let topts = TranslateOptions {
        compact: o.compact,
        quantum: o.quantum_ms.map(TimeVal::ms),
        protocol_override: protocol,
        store: Some(d.store.clone()),
        obs: d.rec.clone(),
        ..Default::default()
    };
    let tm = match translate(&model, &topts) {
        Ok(tm) => tm,
        Err(TranslateError::Validation(errs)) => {
            let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
            return JobResult::input_error(format!("translation error: {}", msgs.join("; ")));
        }
        Err(e) => return JobResult::input_error(format!("translation error: {e}")),
    };
    let mut aopts = if o.exhaustive {
        AnalysisOptions::exhaustive()
    } else {
        AnalysisOptions::default()
    };
    aopts.explore.threads = o.threads.max(1);
    aopts.explore.memo = o.memo;
    aopts.explore.max_states = o.max_states.unwrap_or(usize::MAX).min(d.cfg.max_states);
    aopts.explore.cancel = cancel.clone();
    aopts.explore.obs = d.rec.clone();
    let outcome = analyze_translated(&model, &tm, &aopts);
    JobResult::from_outcome(&outcome)
}

/// The `metrics` response: every fleet counter and gauge in a fixed order.
fn metrics_response(d: &Daemon, id: &str) -> Json {
    let m = &d.m;
    Json::obj([
        ("type", Json::from("metrics")),
        ("id", Json::from(id)),
        (
            "counters",
            Json::obj([
                ("served.requests", Json::from(m.requests.get())),
                ("served.analyze", Json::from(m.analyze.get())),
                ("served.results", Json::from(m.results.get())),
                ("served.coalesced", Json::from(m.coalesced.get())),
                ("served.cache_hits", Json::from(m.cache_hits.get())),
                (
                    "served.rejected_rate_limit",
                    Json::from(m.rejected_rate_limit.get()),
                ),
                (
                    "served.rejected_queue_full",
                    Json::from(m.rejected_queue_full.get()),
                ),
                ("served.timeouts", Json::from(m.timeouts.get())),
                ("served.cancelled", Json::from(m.cancelled.get())),
                ("served.retries", Json::from(m.retries.get())),
                ("served.errors", Json::from(m.errors.get())),
            ]),
        ),
        (
            "gauges",
            Json::obj([
                ("served.queue_depth", Json::Int(m.queue_depth.get())),
                ("served.jobs_running", Json::Int(m.jobs_running.get())),
                ("served.connections", Json::Int(m.connections.get())),
            ]),
        ),
    ])
}
