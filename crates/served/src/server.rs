//! The daemon itself: listener → bounded queue → worker pool, plus the
//! deadline reaper and the graceful-drain shutdown path.
//!
//! Layering (see DESIGN.md §14):
//!
//! * **Connection threads** (one per client) parse requests, apply the
//!   per-peer rate limit, and submit jobs. They never analyze anything.
//! * **The bounded queue** carries job *digests* only; the payload lives in
//!   the job table. A full queue rejects instead of blocking.
//! * **Workers** pop digests, run the translate→explore→diagnose pipeline
//!   with the daemon's warm term store and the job's cancellation token,
//!   and fan the result out to every waiter.
//! * **The reaper** fires cancellation tokens of jobs past their wall-clock
//!   deadline.
//!
//! Response ordering: a connection thread holds its write lock across a
//! whole request dispatch, so the `accepted` acknowledgement always reaches
//! the client before the worker's `result` for the same request — the
//! fan-out blocks on the same lock. The lock order is write-mutex then
//! job-table on the connection side, and job-table alone followed by
//! write-mutex on the fan-out side, so the two never deadlock.
//!
//! Observability (DESIGN.md §15): every parsed work request gets a request
//! sequence number and — unless `--no-trace` — a [`crate::trace::ReqTrace`]
//! that becomes one `served.request` span tree (stage children `parse`,
//! `dispatch`, `queue_wait`/`coalesce_wait`, `exec`, `serialize`; engine
//! spans nest under `exec` via a scoped recorder) plus one entry in the
//! [`obs::FlightRecorder`]. All trace stamps read the *recorder* clock;
//! the deadline/limiter clock is a separate instance, so reaper polling
//! never perturbs trace timestamps. The `stats`/`health`/`flight` wire
//! commands serve live introspection without counting as requests.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use aadl::instance::instantiate;
use aadl::parser::parse_package;
use aadl::properties::{ConcurrencyControlProtocol, TimeVal};
use aadl2acsr::{
    analyze_translated, translate, AnalysisOptions, TranslateError, TranslateOptions,
};
use acsr::TermStore;
use obs::Json;

use crate::jobs::{JobPayload, JobTable, Submit};
use crate::limiter::RateLimiter;
use crate::persist;
use crate::queue::BoundedQueue;
use crate::trace::{outcome_str, JobMeta, ReqTrace};
use crate::wire::{self, AnalyzeOptions, JobResult, ModelSource, Request};

/// Daemon configuration (the `aadlschedd` flags).
#[derive(Clone, Debug)]
pub struct Config {
    /// Listen address; port `0` binds an ephemeral port (announced on
    /// stdout as `aadlschedd listening on <addr>`).
    pub addr: String,
    /// Worker threads running analyses (minimum 1).
    pub workers: usize,
    /// Bounded request-queue capacity; a full queue rejects new jobs.
    pub queue_capacity: usize,
    /// Per-peer rate limit in requests per second (`0` = unlimited; also
    /// the byte-deterministic mode — no clock reads on the request path).
    pub rate_limit: u64,
    /// Rate-limit burst capacity.
    pub burst: u64,
    /// Default per-request wall-clock timeout in ms (`None` = no timeout).
    pub default_timeout_ms: Option<u64>,
    /// Daemon-wide state budget every request is clamped to.
    pub max_states: usize,
    /// Completed results kept for cache hits (FIFO eviction).
    pub cache_capacity: usize,
    /// Bounded retries when the analysis pipeline fails transiently.
    pub retries: u32,
    /// Keep verdicts in the result cache (`false` = always recompute).
    pub result_cache: bool,
    /// Write the end-of-life fleet metrics report to this path on shutdown.
    pub metrics_path: Option<String>,
    /// Request-scoped tracing: span trees, stage histograms and the flight
    /// recorder (`false` = `--no-trace`, the zero-overhead A/B lever of
    /// EXPERIMENTS.md Q11 — the engine then runs on a disabled recorder).
    pub trace: bool,
    /// Flight-recorder window: the last N request events kept in memory.
    pub flight_capacity: usize,
    /// Span-log cap; spans past it are dropped (counted in the report's
    /// `spans_dropped`) so a long-lived daemon cannot grow memory without
    /// bound. Metrics keep recording regardless.
    pub span_cap: usize,
    /// Cross-run artifact store directory (`--store`). When set, every
    /// exploration consults/deposits artifacts there, the result cache is
    /// boot-warmed from the store, and a graceful drain persists it back.
    pub store: Option<String>,
    /// Open the artifact store read-only (`--store readonly:<dir>`): hits
    /// are served but nothing is ever written, including the drain-time
    /// result-cache snapshot.
    pub store_readonly: bool,
    /// Delay-zone exploration as the daemon default (`--zones`): every
    /// analysis collapses forced runs of quanta into bulk steps. Applied
    /// *before* the job digest is computed, so a zone daemon and a
    /// concrete daemon never share coalesced jobs or cached results for
    /// the same request line.
    pub zones: bool,
    /// Daemon-default per-edge zone step cap (`--zone-cap`; `None` = engine
    /// default). Folded into requests before the job digest, like `zones`.
    pub zone_cap: Option<u64>,
    /// Daemon-default zone advance strategy (`--zone-advance`, `"closed"`
    /// or `"replay"`; `None` = engine default, closed). Folded into
    /// requests before the job digest, like `zones`.
    pub zone_advance: Option<String>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 64,
            rate_limit: 0,
            burst: 8,
            default_timeout_ms: None,
            max_states: usize::MAX,
            cache_capacity: 128,
            retries: 1,
            result_cache: true,
            metrics_path: None,
            trace: true,
            flight_capacity: 64,
            span_cap: 65_536,
            store: None,
            store_readonly: false,
            zones: false,
            zone_cap: None,
            zone_advance: None,
        }
    }
}

impl Config {
    /// The configuration as JSON, embedded in the shutdown metrics report.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("addr", Json::from(self.addr.as_str())),
            ("workers", Json::from(self.workers)),
            ("queue_capacity", Json::from(self.queue_capacity)),
            ("rate_limit", Json::from(self.rate_limit)),
            ("burst", Json::from(self.burst)),
            (
                "default_timeout_ms",
                self.default_timeout_ms.map(Json::from).unwrap_or(Json::Null),
            ),
            (
                "max_states",
                if self.max_states == usize::MAX {
                    Json::Null
                } else {
                    Json::from(self.max_states)
                },
            ),
            ("cache_capacity", Json::from(self.cache_capacity)),
            ("retries", Json::from(u64::from(self.retries))),
            ("result_cache", Json::Bool(self.result_cache)),
            ("trace", Json::Bool(self.trace)),
            ("flight_capacity", Json::from(self.flight_capacity)),
            ("span_cap", Json::from(self.span_cap)),
            (
                "store",
                self.store
                    .as_deref()
                    .map(Json::from)
                    .unwrap_or(Json::Null),
            ),
            ("store_readonly", Json::Bool(self.store_readonly)),
            ("zones", Json::Bool(self.zones)),
            (
                "zone_cap",
                self.zone_cap.map(Json::UInt).unwrap_or(Json::Null),
            ),
            (
                "zone_advance",
                self.zone_advance
                    .as_deref()
                    .map(Json::from)
                    .unwrap_or(Json::Null),
            ),
        ])
    }
}

/// A waiter: the connection's serialized writer, the request id the result
/// must echo, and the request's trace state (`None` with `--no-trace`).
type Waiter = (Arc<Mutex<TcpStream>>, String, Option<ReqTrace>);

/// Fleet-level instruments, registered once so the `metrics` response can
/// render them in a fixed order.
struct Instruments {
    requests: obs::Counter,
    analyze: obs::Counter,
    results: obs::Counter,
    coalesced: obs::Counter,
    cache_hits: obs::Counter,
    rejected_rate_limit: obs::Counter,
    rejected_queue_full: obs::Counter,
    timeouts: obs::Counter,
    cancelled: obs::Counter,
    retries: obs::Counter,
    errors: obs::Counter,
    queue_depth: obs::Gauge,
    jobs_running: obs::Gauge,
    connections: obs::Gauge,
    request_wall: obs::Histogram,
    // Per-stage latency distributions (recorder clock, trace mode only).
    queue_wait: obs::Histogram,
    exec: obs::Histogram,
    serialize: obs::Histogram,
    coalesce_wait: obs::Histogram,
    cache_hit_wall: obs::Histogram,
}

impl Instruments {
    fn new(rec: &obs::Recorder) -> Instruments {
        Instruments {
            requests: rec.counter("served.requests"),
            analyze: rec.counter("served.analyze"),
            results: rec.counter("served.results"),
            coalesced: rec.counter("served.coalesced"),
            cache_hits: rec.counter("served.cache_hits"),
            rejected_rate_limit: rec.counter("served.rejected_rate_limit"),
            rejected_queue_full: rec.counter("served.rejected_queue_full"),
            timeouts: rec.counter("served.timeouts"),
            cancelled: rec.counter("served.cancelled"),
            retries: rec.counter("served.retries"),
            errors: rec.counter("served.errors"),
            queue_depth: rec.gauge("served.queue_depth"),
            jobs_running: rec.gauge("served.jobs_running"),
            connections: rec.gauge("served.connections"),
            request_wall: rec.histogram("served.request_wall"),
            queue_wait: rec.histogram("served.queue_wait"),
            exec: rec.histogram("served.exec"),
            serialize: rec.histogram("served.serialize"),
            coalesce_wait: rec.histogram("served.coalesce_wait"),
            cache_hit_wall: rec.histogram("served.cache_hit_wall"),
        }
    }
}

/// Shared daemon state: the job table, the request queue, the limiter, the
/// warm term store, and the fleet instruments.
pub struct Daemon {
    cfg: Config,
    jobs: JobTable<Waiter>,
    queue: BoundedQueue<String>,
    limiter: RateLimiter,
    rec: obs::Recorder,
    clock: Arc<dyn obs::Clock>,
    /// The warm term store: shared across every request of the daemon's
    /// lifetime, so structurally identical subterms (and whole models)
    /// intern once, and repeat requests skip the re-hashing a cold CLI
    /// process pays on every start.
    store: Arc<TermStore>,
    /// The cross-run artifact store (`--store`), consulted and fed by every
    /// exploration and by the boot-warm/drain-persist of the result cache.
    /// `None` = caching stays in-process only.
    cas: Option<Arc<cas::CasStore>>,
    draining: AtomicBool,
    m: Instruments,
    /// The flight recorder: last N request events, dumped on trouble and
    /// drained into the fleet report (DESIGN.md §15).
    flight: obs::FlightRecorder,
    /// Request sequence numbers (the `req` span field), starting at 1.
    req_seq: AtomicU64,
    /// The daemon's run id: hashes the configured address plus — under the
    /// real clock only — the daemon start time, so two daemon *processes*
    /// are distinguishable in collected reports while fake-clock replays
    /// stay byte-stable.
    run_id: String,
}

impl Daemon {
    fn update_gauges(&self) {
        self.m.queue_depth.set(self.queue.len() as i64);
        self.m.jobs_running.set(self.jobs.running_count() as i64);
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Dump the flight window to stderr — called on panic-retry, timeout
    /// and queue-full, so the evidence survives even if the daemon dies
    /// before a `flight` command or the shutdown report.
    fn dump_flight(&self, why: &str) {
        eprintln!(
            "aadlschedd flight recorder ({why}): {}",
            self.flight.to_json().to_compact()
        );
    }
}

/// Build the daemon clock honoring `AADLSCHED_FAKE_CLOCK` (a tick in ns per
/// reading — the same contract as the CLI). Two independent instances:
/// one `Arc` for deadlines/limiter, one boxed for the recorder.
fn build_clock() -> Result<(Arc<dyn obs::Clock>, Box<dyn obs::Clock>), String> {
    match std::env::var("AADLSCHED_FAKE_CLOCK") {
        Ok(tick) => {
            let tick: u64 = tick
                .parse()
                .map_err(|e| format!("AADLSCHED_FAKE_CLOCK must be a tick in ns: {e}"))?;
            Ok((
                Arc::new(obs::FakeClock::new(tick)),
                Box::new(obs::FakeClock::new(tick)),
            ))
        }
        Err(_) => Ok((
            Arc::new(obs::MonotonicClock::new()),
            Box::new(obs::MonotonicClock::new()),
        )),
    }
}

/// Run the daemon until a `shutdown` request drains it. Prints
/// `aadlschedd listening on <addr>` once the socket is bound — the line
/// clients and the smoke test parse for the ephemeral port.
pub fn run(cfg: Config) -> Result<(), String> {
    let (clock, rec_clock) = build_clock()?;
    let rec = obs::Recorder::with_clock(rec_clock).with_span_cap(cfg.span_cap);
    // Fold the daemon start time into the run id under the real clock so
    // two runs of the same configuration yield distinguishable reports;
    // under AADLSCHED_FAKE_CLOCK the salt is fixed so replays stay
    // byte-identical.
    let start_salt: u64 = if std::env::var("AADLSCHED_FAKE_CLOCK").is_ok() {
        0
    } else {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0)
    };
    let run_id = obs::run_id(&[
        b"aadlschedd",
        cfg.addr.as_bytes(),
        &start_salt.to_le_bytes(),
    ]);
    let listener = TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    println!("aadlschedd listening on {local}");
    // The line above is the readiness signal; make sure it leaves the
    // process even when stdout is a pipe.
    std::io::stdout().flush().ok();

    let artifacts = match &cfg.store {
        None => None,
        Some(dir) => {
            let mode = if cfg.store_readonly {
                cas::Mode::ReadOnly
            } else {
                cas::Mode::ReadWrite
            };
            let store = cas::CasStore::open(dir, mode)
                .map_err(|e| format!("cannot open artifact store {dir}: {e}"))?;
            // Register the cas counters up front so `stats`/`metrics`
            // responses are shaped the same before and after the first
            // store-touching request.
            for name in ["cas.hits", "cas.misses", "cas.writes", "cas.invalidations"] {
                rec.counter(name);
            }
            Some(Arc::new(store))
        }
    };

    let daemon = Arc::new(Daemon {
        limiter: RateLimiter::new(cfg.rate_limit, cfg.burst, clock.clone()),
        jobs: JobTable::new(if cfg.result_cache {
            cfg.cache_capacity
        } else {
            0
        }),
        queue: BoundedQueue::new(cfg.queue_capacity),
        m: Instruments::new(&rec),
        rec,
        clock,
        store: Arc::new(TermStore::new()),
        cas: artifacts,
        draining: AtomicBool::new(false),
        flight: obs::FlightRecorder::new(cfg.flight_capacity),
        req_seq: AtomicU64::new(0),
        run_id,
        cfg,
    });

    // Boot-warm: re-seed the in-process result cache from the snapshot a
    // previous daemon persisted on drain. A missing snapshot is the normal
    // first boot; a corrupt or alien-version one counts an invalidation and
    // the daemon starts cold — never a wrong verdict.
    if let Some(store) = &daemon.cas {
        if daemon.cfg.result_cache {
            match store.get(&persist::snapshot_key(daemon.cfg.max_states)) {
                cas::Lookup::Hit(bytes) => match persist::decode_snapshot(&bytes) {
                    Some(entries) => {
                        let mut warmed = 0usize;
                        for (digest, result) in entries {
                            if daemon.jobs.warm(digest, result) {
                                warmed += 1;
                            }
                        }
                        daemon.rec.counter("cas.hits").inc();
                        // Informational only, and the readiness line may be
                        // the last one a supervisor reads — never panic on a
                        // closed stdout pipe.
                        let _ = writeln!(
                            std::io::stdout(),
                            "aadlschedd store: warmed {warmed} cached verdict(s)"
                        );
                    }
                    None => daemon.rec.counter("cas.invalidations").inc(),
                },
                cas::Lookup::Miss => daemon.rec.counter("cas.misses").inc(),
                cas::Lookup::Invalid => daemon.rec.counter("cas.invalidations").inc(),
            }
        }
    }

    let workers: Vec<_> = (0..daemon.cfg.workers.max(1))
        .map(|wi| {
            let d = daemon.clone();
            std::thread::Builder::new()
                .name(format!("aadlschedd-worker-{wi}"))
                .spawn(move || {
                    while let Some(digest) = d.queue.pop() {
                        d.update_gauges();
                        run_job(&d, &digest);
                    }
                })
                .expect("spawn worker")
        })
        .collect();

    let reaper = {
        let d = daemon.clone();
        std::thread::Builder::new()
            .name("aadlschedd-reaper".into())
            .spawn(move || loop {
                if d.draining() && d.queue.is_empty() && d.jobs.running_count() == 0 {
                    break;
                }
                // The worker that observes the fired token counts the
                // timeout; the reaper only fires it.
                d.jobs.reap(|| d.clock.now_ns());
                std::thread::sleep(std::time::Duration::from_millis(20));
            })
            .expect("spawn reaper")
    };

    // Track live client sockets so drain can unblock their readers. Keyed
    // by a connection id so each handler thread can drop its own entry on
    // exit — retaining every clone for the daemon's lifetime would keep one
    // fd per past connection alive (CLOSE_WAIT) until the fd limit kills
    // `accept`.
    let conns: Arc<Mutex<std::collections::HashMap<u64, TcpStream>>> =
        Arc::new(Mutex::new(std::collections::HashMap::new()));
    let mut next_conn_id: u64 = 0;
    for stream in listener.incoming() {
        if daemon.draining() {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Responses are small back-to-back lines (`accepted` then `result`);
        // without nodelay, Nagle + delayed ACK adds ~40 ms per exchange.
        stream.set_nodelay(true).ok();
        let conn_id = next_conn_id;
        next_conn_id += 1;
        if let Ok(clone) = stream.try_clone() {
            conns.lock().expect("conns poisoned").insert(conn_id, clone);
        }
        let d = daemon.clone();
        let local = local.to_string();
        let conns_for_thread = conns.clone();
        std::thread::Builder::new()
            .name("aadlschedd-conn".into())
            .spawn(move || {
                handle_conn(d, stream, &local);
                conns_for_thread
                    .lock()
                    .expect("conns poisoned")
                    .remove(&conn_id);
            })
            .expect("spawn conn");
    }

    // Drain: workers finish what was queued, every result is fanned out,
    // then readers are unblocked and the metrics report is written.
    for w in workers {
        w.join().expect("worker panicked");
    }
    reaper.join().expect("reaper panicked");
    // Drain-persist: snapshot the result cache into the artifact store so
    // the next daemon boots warm. Read-only stores skip it (and the store
    // itself refuses writes anyway).
    if let Some(store) = &daemon.cas {
        if daemon.cfg.result_cache && !store.read_only() {
            let entries = daemon.jobs.cached_entries();
            let payload = persist::encode_snapshot(&entries);
            if let Ok(true) = store.put(&persist::snapshot_key(daemon.cfg.max_states), &payload)
            {
                daemon.rec.counter("cas.writes").inc();
            }
        }
    }
    for c in conns.lock().expect("conns poisoned").values() {
        c.shutdown(std::net::Shutdown::Both).ok();
    }
    if let Some(path) = &daemon.cfg.metrics_path {
        let report = metrics_report(&daemon);
        std::fs::write(path, report).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(())
}

/// The end-of-life fleet report through the schema-versioned report sink,
/// with the drained flight-recorder window as its `flight` section.
fn metrics_report(d: &Daemon) -> String {
    let mut report = obs::Report::new(&d.run_id, "aadlschedd");
    report.set("config", d.cfg.to_json());
    report.set("flight", d.flight.to_json());
    report.attach_run(&d.rec.finish());
    report.to_json()
}

/// Largest request line the daemon will buffer, excluding the newline.
/// Inline model sources fit comfortably; anything bigger is a hostile or
/// broken client streaming bytes without a newline, which must not be able
/// to grow daemon memory without bound.
const MAX_REQUEST_LINE_BYTES: usize = 4 * 1024 * 1024;

/// Read one newline-terminated request line, buffering at most
/// [`MAX_REQUEST_LINE_BYTES`]. `Ok(None)` ends the connection (EOF, an I/O
/// error, or invalid UTF-8 — the same cases `BufRead::lines` treated as
/// terminal); `Err(())` means the cap was hit before a newline arrived.
fn read_request_line(reader: &mut BufReader<TcpStream>) -> Result<Option<String>, ()> {
    let mut buf = Vec::new();
    let mut limited = reader.by_ref().take(MAX_REQUEST_LINE_BYTES as u64 + 1);
    match limited.read_until(b'\n', &mut buf) {
        Ok(0) | Err(_) => Ok(None),
        Ok(_) => {
            if buf.last() == Some(&b'\n') {
                buf.pop();
                if buf.last() == Some(&b'\r') {
                    buf.pop();
                }
            } else if buf.len() > MAX_REQUEST_LINE_BYTES {
                return Err(());
            }
            Ok(String::from_utf8(buf).ok())
        }
    }
}

fn write_line(writer: &Arc<Mutex<TcpStream>>, v: Json) {
    write_raw(writer, v.to_compact());
}

fn write_raw(writer: &Arc<Mutex<TcpStream>>, mut line: String) {
    line.push('\n');
    writer
        .lock()
        .expect("writer poisoned")
        .write_all(line.as_bytes())
        .ok();
}

fn handle_conn(d: Arc<Daemon>, stream: TcpStream, local_addr: &str) {
    let peer = stream
        .peer_addr()
        .map(|a| a.ip().to_string())
        .unwrap_or_else(|_| "unknown".into());
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(write_half));
    d.m.connections.set(d.m.connections.get() + 1);
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_request_line(&mut reader) {
            Ok(Some(line)) => line,
            Ok(None) => break,
            Err(()) => {
                // Oversized line: tell the client why, then hang up — the
                // rest of its stream is the tail of the same giant line.
                d.m.errors.inc();
                write_line(&writer, wire::error_response(None, "request line too long"));
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        // The `parse` stage starts here: receipt stamp on the recorder
        // clock, covering the rate-limit check and request parsing.
        let recv_ns = if d.cfg.trace { d.rec.now_ns() } else { 0 };
        if !d.limiter.allow(&peer) {
            // Rate-limited lines count only in `served.rejected_rate_limit`;
            // they never became requests.
            d.m.rejected_rate_limit.inc();
            write_line(&writer, wire::error_response(None, "rate limit exceeded"));
            continue;
        }
        let req = match wire::parse_request(&line) {
            Ok(req) => req,
            Err(message) => {
                // Malformed lines still count as requests — the client paid
                // a round-trip and got an `error` response.
                d.m.requests.inc();
                d.m.errors.inc();
                // Echo the id when the malformed request still carried one.
                let id = Json::parse(&line)
                    .ok()
                    .and_then(|v| v.get("id").and_then(Json::as_str).map(String::from));
                write_line(&writer, wire::error_response(id.as_deref(), &message));
                continue;
            }
        };
        // Introspection (`stats`/`health`/`flight`) is excluded from
        // `served.requests`, so polling the instruments never perturbs
        // them — the byte-identity guarantee of consecutive `stats`.
        if !req.is_introspection() {
            d.m.requests.inc();
        }
        match req {
            Request::Analyze {
                id,
                source,
                options,
            } => {
                let ctx = d.cfg.trace.then(|| {
                    let parsed_ns = d.rec.now_ns();
                    let req_no = d.req_seq.fetch_add(1, Ordering::Relaxed) + 1;
                    (req_no, recv_ns, parsed_ns)
                });
                handle_analyze(&d, &writer, &id, source, options, ctx)
            }
            Request::Status { id, job } => {
                let resp = match job {
                    Some(job) => match d.jobs.status(&job) {
                        Some((state, result)) => {
                            wire::status_job(&id, &job, state, result.as_deref())
                        }
                        None => wire::status_job(&id, &job, "unknown", None),
                    },
                    None => wire::status_summary(
                        &id,
                        d.queue.len(),
                        d.jobs.running_count(),
                        d.draining(),
                    ),
                };
                write_line(&writer, resp);
            }
            Request::Cancel { id, job } => {
                let was = d.jobs.cancel(&job);
                if was == "queued" || was == "running" {
                    d.m.cancelled.inc();
                }
                write_line(&writer, wire::cancelled_response(&id, &job, was));
            }
            Request::Metrics { id } => write_line(&writer, metrics_response(&d, &id)),
            Request::Stats { id } => write_line(&writer, stats_response(&d, &id)),
            Request::Health { id } => write_line(&writer, health_response(&d, &id)),
            Request::Flight { id } => write_line(&writer, flight_response(&d, &id)),
            Request::Shutdown { id } => {
                write_line(&writer, wire::shutting_down(&id));
                d.draining.store(true, Ordering::Release);
                d.queue.close();
                // Wake the accept loop so it observes the drain flag.
                TcpStream::connect(local_addr).ok();
                break;
            }
        }
    }
    d.m.connections.set(d.m.connections.get() - 1);
}

/// Retroactively record one stage as a child span of the root (explicit
/// timestamps, no clock reads — see `obs::Span::child_at`).
fn stage_span(d: &Daemon, root: Option<u64>, name: &'static str, start_ns: u64, end_ns: u64) {
    if let Some(rid) = root {
        d.rec.span_handle(rid).child_at(name, start_ns).end_at(end_ns);
    }
}

/// Finish one request's trace: close the root span (with `code` and
/// `slack_ns` fields) and record the flight event. `Σ stages + slack_ns`
/// equals the root span's duration exactly, by construction.
fn finish_trace(
    d: &Daemon,
    wt: &ReqTrace,
    id: &str,
    job: &str,
    outcome: &str,
    code: u8,
    end_ns: u64,
) {
    if let Some(rid) = wt.root {
        let root = d.rec.span_handle(rid);
        root.set("code", i64::from(code));
        root.set("slack_ns", wt.slack_ns(end_ns) as i64);
        root.end_at(end_ns);
    }
    d.flight.record(obs::FlightEvent {
        seq: 0,
        req: wt.req,
        id: id.to_string(),
        job: job.to_string(),
        outcome: outcome.to_string(),
        code,
        stages: wt.stages.clone(),
    });
}

fn handle_analyze(
    d: &Arc<Daemon>,
    writer: &Arc<Mutex<TcpStream>>,
    id: &str,
    source: ModelSource,
    mut options: AnalyzeOptions,
    ctx: Option<(u64, u64, u64)>,
) {
    d.m.analyze.inc();
    // The daemon-wide `--zones` default folds into the request *before* the
    // digest is computed, so zone-mode results are keyed apart from
    // concrete ones even when the request line itself never mentions zones.
    if d.cfg.zones {
        options.zones = true;
    }
    if options.zone_cap.is_none() {
        options.zone_cap = d.cfg.zone_cap;
    }
    if options.zone_advance.is_none() {
        options.zone_advance = d.cfg.zone_advance.clone();
    }
    // Open the root span first, so even rejected requests leave a tree.
    let mut trace = ctx.map(|(req, recv_ns, parsed_ns)| {
        let root = d.rec.span_at("served.request", recv_ns);
        root.set("req", req as i64);
        let root_id = root.id();
        stage_span(d, root_id, "served.parse", recv_ns, parsed_ns);
        let mut t = ReqTrace {
            req,
            root: root_id,
            recv_ns,
            dispatched_ns: parsed_ns,
            stages: Vec::new(),
        };
        t.stage("parse", parsed_ns.saturating_sub(recv_ns));
        t
    });
    if d.draining() {
        d.m.errors.inc();
        write_line(writer, wire::error_response(Some(id), "shutting down"));
        if let Some(wt) = &trace {
            finish_trace(d, wt, id, "", "rejected", 2, d.rec.now_ns());
        }
        return;
    }
    let source = match source {
        ModelSource::Inline(text) => text,
        ModelSource::File(path) => match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                d.m.errors.inc();
                write_line(
                    writer,
                    wire::error_response(Some(id), &format!("cannot read `{path}`: {e}")),
                );
                if let Some(wt) = &trace {
                    finish_trace(d, wt, id, "", "rejected", 2, d.rec.now_ns());
                }
                return;
            }
        },
    };
    let digest = wire::job_digest(&source, &options);
    let timeout_ms = options.timeout_ms.or(d.cfg.default_timeout_ms);
    let deadline_ns = timeout_ms.map(|ms| d.clock.now_ns().saturating_add(ms * 1_000_000));
    // The `dispatch` stage ends here: the job is about to be submitted.
    // The few instructions between this stamp and the queue push land in
    // `queue_wait`, which keeps the trace fully built before the waiter —
    // and its clone of the trace — enters the job table.
    if let Some(wt) = &mut trace {
        let dispatched_ns = d.rec.now_ns();
        stage_span(d, wt.root, "served.dispatch", wt.dispatched_ns, dispatched_ns);
        wt.stage("dispatch", dispatched_ns.saturating_sub(wt.dispatched_ns));
        wt.dispatched_ns = dispatched_ns;
    }
    // Hold the write lock across the whole dispatch: the fan-out cannot
    // deliver our own result before we have written `accepted`.
    let mut guard = writer.lock().expect("writer poisoned");
    let payload = JobPayload {
        source,
        options,
        trace: trace.as_ref().map(|t| JobMeta {
            req: t.req,
            root: t.root,
        }),
    };
    let waiter = (writer.clone(), id.to_string(), trace.clone());
    let mut lines: Vec<Json> = Vec::new();
    let mut cached: Option<Arc<JobResult>> = None;
    match d.jobs.submit(&digest, payload, waiter, deadline_ns) {
        Submit::Cached(result) => {
            d.m.cache_hits.inc();
            lines.push(wire::accepted(id, &digest, false));
            lines.push(wire::result_response(id, &digest, &result, true));
            // The waiter (and its trace clone) was dropped by `submit`; the
            // local trace finishes below, around the serialize stage.
            cached = Some(result);
        }
        Submit::Coalesced => {
            d.m.coalesced.inc();
            lines.push(wire::accepted(id, &digest, true));
            // The waiter's trace clone is now canonical; the fan-out
            // finishes it.
            trace = None;
        }
        Submit::New => match d.queue.try_push(digest.clone()) {
            Ok(()) => {
                d.update_gauges();
                lines.push(wire::accepted(id, &digest, false));
                trace = None;
            }
            Err(_) => {
                d.m.rejected_queue_full.inc();
                // A concurrent identical request may have coalesced onto the
                // entry between our `submit` and `try_push`; it was already
                // sent `accepted`, so every waiter abort() hands back must
                // be told the job died or its client hangs forever.
                for (w, wid, wtrace) in d.jobs.abort(&digest) {
                    if let Some(wt) = &wtrace {
                        finish_trace(d, wt, &wid, &digest, "queue-full", 2, d.rec.now_ns());
                    }
                    if Arc::ptr_eq(&w, writer) {
                        // Same connection as ours: its writer lock is the
                        // one we already hold, so queue the line instead of
                        // deadlocking in `write_line`.
                        if wid != id {
                            lines.push(wire::error_response(
                                Some(&wid),
                                "queue full, retry later",
                            ));
                        }
                    } else {
                        write_line(&w, wire::error_response(Some(&wid), "queue full, retry later"));
                    }
                }
                lines.push(wire::error_response(Some(id), "queue full, retry later"));
                // Our own trace came back through `abort` and is finished;
                // drop the local copy.
                trace = None;
                if d.cfg.trace {
                    d.dump_flight("queue full");
                }
            }
        },
    }
    // Cache hits are terminal here: time the serialize stage around the
    // writes and finish the trace on this thread.
    let serialize_start = trace.as_ref().map(|_| d.rec.now_ns());
    for v in lines {
        let mut line = v.to_compact();
        line.push('\n');
        guard.write_all(line.as_bytes()).ok();
    }
    if let (Some(mut wt), Some(result), Some(t0)) = (trace, cached, serialize_start) {
        let t1 = d.rec.now_ns();
        stage_span(d, wt.root, "served.serialize", t0, t1);
        wt.stage("serialize", t1.saturating_sub(t0));
        d.m.serialize.observe(t1.saturating_sub(t0));
        d.m.cache_hit_wall.observe(t1.saturating_sub(wt.recv_ns));
        finish_trace(d, &wt, id, &digest, "cache-hit", result.code, t1);
    }
}

/// Execute one job end to end: deadline and cancellation checks, the
/// translate→explore→diagnose pipeline with bounded retries on panics, and
/// the fan-out of the result to every waiter.
fn run_job(d: &Arc<Daemon>, digest: &str) {
    let Some((payload, cancel, deadline_ns)) = d.jobs.take_running(digest) else {
        return;
    };
    d.update_gauges();
    let meta = payload.trace;
    // Recorder-clock claim stamp: the end of the owner's `queue_wait`.
    let claim_ns = meta.map(|_| d.rec.now_ns());
    let started = d.clock.now_ns();
    let mut exec_span: Option<u64> = None;
    let mut executed = false;
    let mut panicked = false;
    let result = if cancel.is_cancelled() {
        // Cancelled (or reaped) while still queued.
        if d.jobs.timed_out(digest) {
            d.m.timeouts.inc();
            JobResult::unknown("timeout")
        } else {
            JobResult::unknown("cancelled")
        }
    } else if deadline_ns.is_some_and(|dl| started >= dl) {
        // Deterministic immediate timeout (`timeout_ms: 0`), or a job that
        // sat in the queue past its whole deadline.
        d.jobs.mark_timed_out(digest);
        d.m.timeouts.inc();
        JobResult::unknown("timeout")
    } else {
        executed = true;
        // The `served.exec` span anchors the engine's own spans: a scoped
        // recorder parents everything the pipeline opens (`translate`,
        // `explore`, …) under it and tags it with the owner's `req`. With
        // `--no-trace` the engine runs on a disabled recorder — the
        // allocation-free zero-sink path measured by EXPERIMENTS.md Q11.
        let engine_rec = match (meta, claim_ns) {
            (Some(m), Some(tc)) => match m.root {
                Some(rid) => {
                    let exec = d.rec.span_handle(rid).child_at("served.exec", tc);
                    exec_span = exec.id();
                    exec.set("req", m.req as i64);
                    d.rec.scoped(&exec, m.req as i64)
                }
                // Root dropped by the span cap: engine metrics still record.
                None => d.rec.clone(),
            },
            _ => obs::Recorder::disabled(),
        };
        let mut attempts = 0;
        loop {
            attempts += 1;
            match std::panic::catch_unwind(AssertUnwindSafe(|| {
                analyze_source(d, &payload, &cancel, &engine_rec)
            })) {
                Ok(mut result) => {
                    // The explorer reports `cancelled`; the daemon knows
                    // whether the token was fired by a deadline.
                    if result.reason.as_deref() == Some("cancelled")
                        && d.jobs.timed_out(digest)
                    {
                        result.reason = Some("timeout".into());
                        d.m.timeouts.inc();
                    }
                    break result;
                }
                Err(_) if attempts <= d.cfg.retries => {
                    // Transient failure (a panic in the pipeline): bounded
                    // retry, then give up with an error result. The flight
                    // window at this moment is the evidence trail — dump it
                    // before state moves on.
                    d.m.retries.inc();
                    if meta.is_some() {
                        d.dump_flight("panic retry");
                    }
                    continue;
                }
                Err(_) => {
                    d.m.errors.inc();
                    panicked = true;
                    break JobResult::input_error("analysis panicked; giving up after retries");
                }
            }
        }
    };
    let done_ns = claim_ns.map(|_| d.rec.now_ns());
    if let (Some(eid), Some(td)) = (exec_span, done_ns) {
        d.rec.span_handle(eid).end_at(td);
    }
    if let (true, Some(tc), Some(td)) = (executed, claim_ns, done_ns) {
        d.m.exec.observe(td.saturating_sub(tc));
    }
    d.m.request_wall
        .observe(d.clock.now_ns().saturating_sub(started));
    d.m.results.inc();
    // Verdicts cache; input errors and interruptions do not (a retry might
    // succeed under a fresh deadline or budget).
    let cacheable = d.cfg.result_cache && matches!(result.code, 0 | 1);
    let waiters = d.jobs.complete(digest, result.clone(), cacheable);
    d.update_gauges();
    let outcome = outcome_str(&result);
    for (writer, id, wtrace) in waiters {
        let Some(mut wt) = wtrace else {
            write_line(&writer, wire::result_response(&id, digest, &result, false));
            continue;
        };
        let (tc, td) = (claim_ns.unwrap_or(0), done_ns.unwrap_or(0));
        if meta.is_some_and(|m| m.req == wt.req) {
            // The owner waited for a worker, then for the analysis.
            stage_span(d, wt.root, "served.queue_wait", wt.dispatched_ns, tc);
            wt.stage("queue_wait", tc.saturating_sub(wt.dispatched_ns));
            d.m.queue_wait.observe(tc.saturating_sub(wt.dispatched_ns));
            if executed {
                // The exec span is already in the tree (opened live above).
                wt.stage("exec", td.saturating_sub(tc));
            }
        } else {
            // A coalesced waiter waited for someone else's execution.
            stage_span(d, wt.root, "served.coalesce_wait", wt.dispatched_ns, td);
            wt.stage("coalesce_wait", td.saturating_sub(wt.dispatched_ns));
            d.m.coalesce_wait
                .observe(td.saturating_sub(wt.dispatched_ns));
        }
        // The serialize stage times the response *rendering*; the socket
        // write happens after the trace is fully committed (span ended,
        // histograms observed, flight event recorded), so a client that
        // reacts to the result line — e.g. with an immediate `stats` or
        // `flight` — is guaranteed to observe the completed trace. That
        // ordering is what keeps the PROTOCOL.md transcripts replayable.
        let t0 = d.rec.now_ns();
        let line = wire::result_response(&id, digest, &result, false).to_compact();
        let t1 = d.rec.now_ns();
        stage_span(d, wt.root, "served.serialize", t0, t1);
        wt.stage("serialize", t1.saturating_sub(t0));
        d.m.serialize.observe(t1.saturating_sub(t0));
        finish_trace(d, &wt, &id, digest, &outcome, result.code, t1);
        write_raw(&writer, line);
    }
    if meta.is_some() && (outcome == "timeout" || panicked) {
        d.dump_flight(if panicked { "analysis panicked" } else { "timeout" });
    }
}

/// The translate→explore→diagnose pipeline for one request, sharing the
/// daemon's warm store — the same stages as the `aadlsched` CLI, returning
/// the wire-level result instead of exiting. `rec` is the request-scoped
/// recorder (engine spans parent under the request's `served.exec`), or a
/// disabled one with `--no-trace`.
fn analyze_source(
    d: &Arc<Daemon>,
    payload: &JobPayload,
    cancel: &versa::CancelToken,
    rec: &obs::Recorder,
) -> JobResult {
    let o = &payload.options;
    let pkg = match parse_package(&payload.source) {
        Ok(pkg) => pkg,
        Err(e) => return JobResult::input_error(format!("parse error: {e}")),
    };
    let root = match &o.root {
        Some(root) => root.clone(),
        None => match pkg.default_root() {
            Ok(root) => root,
            Err(e) => return JobResult::input_error(e),
        },
    };
    let model = match instantiate(&pkg, &root) {
        Ok(m) => m,
        Err(e) => return JobResult::input_error(format!("instantiation error: {e}")),
    };
    let protocol = match &o.protocol {
        None => None,
        Some(p) => match ConcurrencyControlProtocol::parse(p) {
            Some(p) => Some(p),
            None => {
                return JobResult::input_error(format!("unknown protocol `{p}` (none | pip | pcp)"))
            }
        },
    };
    let topts = TranslateOptions {
        compact: o.compact,
        quantum: o.quantum_ms.map(TimeVal::ms),
        protocol_override: protocol,
        store: Some(d.store.clone()),
        obs: rec.clone(),
        ..Default::default()
    };
    let tm = match translate(&model, &topts) {
        Ok(tm) => tm,
        Err(TranslateError::Validation(errs)) => {
            let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
            return JobResult::input_error(format!("translation error: {}", msgs.join("; ")));
        }
        Err(e) => return JobResult::input_error(format!("translation error: {e}")),
    };
    let mut aopts = if o.exhaustive {
        AnalysisOptions::exhaustive()
    } else {
        AnalysisOptions::default()
    };
    aopts.explore.threads = o.threads.max(1);
    aopts.explore.memo = o.memo;
    aopts.explore.zones = o.zones;
    if let Some(cap) = o.zone_cap {
        aopts.explore.zone_cap = cap as usize;
    }
    if o.zone_advance.as_deref() == Some("replay") {
        aopts.explore.zone_advance = versa::ZoneAdvance::Replay;
    }
    aopts.explore.max_states = o.max_states.unwrap_or(usize::MAX).min(d.cfg.max_states);
    aopts.explore.cancel = cancel.clone();
    aopts.explore.obs = rec.clone();
    aopts.explore.cas = d.cas.clone();
    let outcome = analyze_translated(&model, &tm, &aopts);
    JobResult::from_outcome(&outcome)
}

/// The `metrics` response: every fleet counter and gauge in a fixed order.
/// The `cas.*` counters appear only when an artifact store is configured,
/// so store-less daemons keep their historical response shape.
fn metrics_response(d: &Daemon, id: &str) -> Json {
    let m = &d.m;
    let mut counters = vec![
        ("served.requests".to_string(), Json::from(m.requests.get())),
        ("served.analyze".to_string(), Json::from(m.analyze.get())),
        ("served.results".to_string(), Json::from(m.results.get())),
        (
            "served.coalesced".to_string(),
            Json::from(m.coalesced.get()),
        ),
        (
            "served.cache_hits".to_string(),
            Json::from(m.cache_hits.get()),
        ),
        (
            "served.rejected_rate_limit".to_string(),
            Json::from(m.rejected_rate_limit.get()),
        ),
        (
            "served.rejected_queue_full".to_string(),
            Json::from(m.rejected_queue_full.get()),
        ),
        ("served.timeouts".to_string(), Json::from(m.timeouts.get())),
        (
            "served.cancelled".to_string(),
            Json::from(m.cancelled.get()),
        ),
        ("served.retries".to_string(), Json::from(m.retries.get())),
        ("served.errors".to_string(), Json::from(m.errors.get())),
    ];
    if d.cas.is_some() {
        for name in ["cas.hits", "cas.misses", "cas.writes", "cas.invalidations"] {
            counters.push((name.to_string(), Json::from(d.rec.counter(name).get())));
        }
    }
    Json::obj([
        ("type", Json::from("metrics")),
        ("id", Json::from(id)),
        ("counters", Json::Obj(counters)),
        (
            "gauges",
            Json::obj([
                ("served.queue_depth", Json::Int(m.queue_depth.get())),
                ("served.jobs_running", Json::Int(m.jobs_running.get())),
                ("served.connections", Json::Int(m.connections.get())),
            ]),
        ),
    ])
}

/// The `stats` response: every counter, gauge and histogram the recorder
/// knows (fleet *and* engine instruments), in name order, with p50/p90/p99
/// quantile estimates per histogram. Reads no clock and mutates nothing, so
/// two consecutive snapshots with no traffic in between are byte-identical
/// — even under the real clock.
fn stats_response(d: &Daemon, id: &str) -> Json {
    let run = d.rec.metrics_data();
    Json::obj([
        ("type", Json::from("stats")),
        ("id", Json::from(id)),
        ("schema", Json::from(obs::SCHEMA)),
        ("version", Json::UInt(obs::SCHEMA_VERSION)),
        ("run_id", Json::from(d.run_id.as_str())),
        (
            "counters",
            Json::Obj(
                run.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                    .collect(),
            ),
        ),
        (
            "gauges",
            Json::Obj(
                run.gauges
                    .iter()
                    .map(|(k, value, peak)| {
                        (
                            k.clone(),
                            Json::obj([
                                ("value", Json::Int(*value)),
                                ("peak", Json::Int(*peak)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "histograms",
            Json::Obj(
                run.histograms
                    .iter()
                    .map(|(k, snap)| (k.clone(), obs::histogram_json(snap)))
                    .collect(),
            ),
        ),
    ])
}

/// The `health` response: liveness at a glance. The single clock read (for
/// `uptime_ns`) is on the recorder clock.
fn health_response(d: &Daemon, id: &str) -> Json {
    Json::obj([
        ("type", Json::from("health")),
        ("id", Json::from(id)),
        (
            "uptime_ns",
            Json::UInt(d.rec.now_ns().saturating_sub(d.rec.start_ns())),
        ),
        ("queue_depth", Json::from(d.queue.len())),
        ("workers", Json::from(d.cfg.workers.max(1))),
        ("jobs_running", Json::from(d.jobs.running_count())),
        ("connections", Json::Int(d.m.connections.get())),
        ("cache_entries", Json::from(d.jobs.cached_count())),
        (
            "cache_capacity",
            Json::from(if d.cfg.result_cache {
                d.cfg.cache_capacity
            } else {
                0
            }),
        ),
        ("draining", Json::Bool(d.draining())),
    ])
}

/// The `flight` response: the ring-buffer window, oldest event first.
fn flight_response(d: &Daemon, id: &str) -> Json {
    let mut pairs = vec![
        ("type".to_string(), Json::from("flight")),
        ("id".to_string(), Json::from(id)),
    ];
    if let Json::Obj(fields) = d.flight.to_json() {
        pairs.extend(fields);
    }
    Json::Obj(pairs)
}
