//! A bounded MPMC request queue: `Mutex<VecDeque>` + `Condvar`, std-only.
//!
//! The listener pushes job digests with [`BoundedQueue::try_push`] — which
//! *rejects* when the queue is full instead of blocking, so a traffic burst
//! degrades into fast `error` responses rather than unbounded memory — and
//! the worker pool blocks on [`BoundedQueue::pop`]. Closing the queue lets
//! workers drain what was already accepted and then exit: the graceful-drain
//! half of shutdown.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A bounded multi-producer/multi-consumer FIFO.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
}

struct Inner<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                capacity: capacity.max(1),
                closed: false,
            }),
            not_empty: Condvar::new(),
        }
    }

    /// Enqueue without blocking. Returns the item back when the queue is
    /// full or closed, so the caller can turn it into a rejection response.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed || inner.items.len() >= inner.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue, blocking while the queue is empty and open. Returns `None`
    /// once the queue is closed *and* drained — the worker's exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue poisoned");
        }
    }

    /// Number of queued items right now.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Close the queue: no further pushes succeed; blocked and future `pop`s
    /// drain the remaining items and then return `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_fifo_order() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_stops() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.close();
        assert_eq!(q.try_push("b"), Err("b"));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_a_push_arrives() {
        let q = Arc::new(BoundedQueue::new(1));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.try_push(42).unwrap();
        assert_eq!(h.join().unwrap(), Some(42));
    }
}
