//! The job table: every analysis the daemon knows about, keyed by its
//! digest, plus the bounded result cache.
//!
//! The table is the meeting point of the three daemon layers: connection
//! threads *submit* (and attach themselves as waiters), the worker pool
//! *takes* payloads and *completes* them, and the deadline reaper *cancels*
//! what has overrun. All transitions happen under one mutex; the analysis
//! itself never runs under it.
//!
//! Coalescing falls out of the keying: a second `analyze` with the same
//! digest finds the live entry and becomes another waiter instead of another
//! exploration. A digest resubmitted after completion is a result-cache hit
//! while the entry survives (bounded FIFO eviction; input errors are never
//! cached).

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use versa::CancelToken;

use crate::trace::JobMeta;
use crate::wire::{AnalyzeOptions, JobResult};

/// What a worker needs to run a job.
#[derive(Clone, Debug)]
pub struct JobPayload {
    /// The AADL source text (already read from disk for `file` requests).
    pub source: String,
    /// The request options.
    pub options: AnalyzeOptions,
    /// The owning request's trace anchor (`None` with `--no-trace`), so the
    /// worker can hang the `served.exec` span under the right span tree.
    pub trace: Option<JobMeta>,
}

/// Lifecycle of a job.
enum State {
    Queued(JobPayload),
    Running,
    Done(Arc<JobResult>),
}

struct Entry<W> {
    state: State,
    cancel: CancelToken,
    /// Wall-clock deadline (clock ns) after which the reaper cancels the
    /// job; `None` = no timeout.
    deadline_ns: Option<u64>,
    /// Set when the cancellation came from the deadline, so the result says
    /// `timeout` rather than `cancelled`.
    timed_out: bool,
    waiters: Vec<W>,
}

/// Outcome of a submission.
pub enum Submit {
    /// Fresh job — the caller must enqueue the digest for the worker pool.
    New,
    /// An identical job is queued or running; the waiter was attached to it.
    Coalesced,
    /// An identical job already completed and its result is still cached.
    Cached(Arc<JobResult>),
}

/// The shared job table. `W` is the waiter handle a completion is fanned
/// out to (the server uses a connection writer + request id; tests use
/// plain values).
pub struct JobTable<W> {
    inner: Mutex<Tables<W>>,
}

struct Tables<W> {
    jobs: HashMap<String, Entry<W>>,
    /// Completion order of cached results, oldest first, for FIFO eviction.
    cache_order: VecDeque<String>,
    cache_capacity: usize,
}

impl<W> JobTable<W> {
    /// A table caching at most `cache_capacity` completed results
    /// (`0` disables the result cache entirely).
    pub fn new(cache_capacity: usize) -> JobTable<W> {
        JobTable {
            inner: Mutex::new(Tables {
                jobs: HashMap::new(),
                cache_order: VecDeque::new(),
                cache_capacity,
            }),
        }
    }

    /// Submit a job: attach `waiter` to the live entry when one exists,
    /// otherwise create a queued entry. The caller enqueues the digest only
    /// for [`Submit::New`]; on [`Submit::Cached`] the waiter is *not*
    /// attached (the caller already has the result).
    pub fn submit(
        &self,
        digest: &str,
        payload: JobPayload,
        waiter: W,
        deadline_ns: Option<u64>,
    ) -> Submit {
        let mut t = self.inner.lock().expect("job table poisoned");
        match t.jobs.get_mut(digest) {
            Some(entry) => match &entry.state {
                State::Done(result) => Submit::Cached(result.clone()),
                State::Queued(_) | State::Running => {
                    entry.waiters.push(waiter);
                    Submit::Coalesced
                }
            },
            None => {
                t.jobs.insert(
                    digest.to_string(),
                    Entry {
                        state: State::Queued(payload),
                        cancel: CancelToken::new(),
                        deadline_ns,
                        timed_out: false,
                        waiters: vec![waiter],
                    },
                );
                Submit::New
            }
        }
    }

    /// Remove a freshly submitted job again (the request queue was full),
    /// returning its waiters so they can be told.
    pub fn abort(&self, digest: &str) -> Vec<W> {
        let mut t = self.inner.lock().expect("job table poisoned");
        t.jobs
            .remove(digest)
            .map(|e| e.waiters)
            .unwrap_or_default()
    }

    /// Worker entry point: move the job to `Running` and hand out what it
    /// needs. `None` when the entry vanished (aborted).
    pub fn take_running(&self, digest: &str) -> Option<(JobPayload, CancelToken, Option<u64>)> {
        let mut t = self.inner.lock().expect("job table poisoned");
        let entry = t.jobs.get_mut(digest)?;
        match std::mem::replace(&mut entry.state, State::Running) {
            State::Queued(payload) => {
                Some((payload, entry.cancel.clone(), entry.deadline_ns))
            }
            other => {
                entry.state = other;
                None
            }
        }
    }

    /// Complete a job, returning the waiters to fan the result out to.
    /// Cacheable results (`cache` true and capacity > 0) stay in the table
    /// until FIFO eviction; everything else is dropped immediately, so the
    /// next identical request runs fresh.
    pub fn complete(&self, digest: &str, result: JobResult, cache: bool) -> Vec<W> {
        let mut t = self.inner.lock().expect("job table poisoned");
        let cache = cache && t.cache_capacity > 0;
        let Some(entry) = t.jobs.get_mut(digest) else {
            return Vec::new();
        };
        let waiters = std::mem::take(&mut entry.waiters);
        if cache {
            entry.state = State::Done(Arc::new(result));
            t.cache_order.push_back(digest.to_string());
            while t.cache_order.len() > t.cache_capacity {
                if let Some(old) = t.cache_order.pop_front() {
                    t.jobs.remove(&old);
                }
            }
        } else {
            t.jobs.remove(digest);
        }
        waiters
    }

    /// Cancel a job. Returns the state it was observed in: `"queued"`,
    /// `"running"`, `"done"` or `"unknown"`. Queued and running jobs get
    /// their token fired; the worker turns that into a `cancelled` result
    /// delivered to every waiter.
    pub fn cancel(&self, digest: &str) -> &'static str {
        let t = self.inner.lock().expect("job table poisoned");
        match t.jobs.get(digest) {
            None => "unknown",
            Some(entry) => match &entry.state {
                State::Done(_) => "done",
                State::Queued(_) => {
                    entry.cancel.cancel();
                    "queued"
                }
                State::Running => {
                    entry.cancel.cancel();
                    "running"
                }
            },
        }
    }

    /// True when the job's cancellation came from its deadline.
    pub fn timed_out(&self, digest: &str) -> bool {
        let t = self.inner.lock().expect("job table poisoned");
        t.jobs.get(digest).map(|e| e.timed_out).unwrap_or(false)
    }

    /// Fire the token of every running job whose deadline has passed,
    /// marking it timed out. `now_ns` is only called when at least one
    /// running job carries a deadline, so idle fake-clock runs stay
    /// deterministic (no spurious clock reads). Returns the number of jobs
    /// newly timed out.
    pub fn reap(&self, now_ns: impl FnOnce() -> u64) -> usize {
        let mut t = self.inner.lock().expect("job table poisoned");
        let armed = t.jobs.values().any(|e| {
            matches!(e.state, State::Queued(_) | State::Running)
                && e.deadline_ns.is_some()
                && !e.cancel.is_cancelled()
        });
        if !armed {
            return 0;
        }
        let now = now_ns();
        let mut reaped = 0;
        for entry in t.jobs.values_mut() {
            if matches!(entry.state, State::Queued(_) | State::Running)
                && entry.deadline_ns.is_some_and(|d| now >= d)
                && !entry.cancel.is_cancelled()
            {
                entry.cancel.cancel();
                entry.timed_out = true;
                reaped += 1;
            }
        }
        reaped
    }

    /// Mark a job timed out directly (the worker does this when the
    /// deadline had already passed before the analysis started — the
    /// deterministic `timeout_ms: 0` path).
    pub fn mark_timed_out(&self, digest: &str) {
        let mut t = self.inner.lock().expect("job table poisoned");
        if let Some(entry) = t.jobs.get_mut(digest) {
            entry.timed_out = true;
            entry.cancel.cancel();
        }
    }

    /// Status of one job: `("queued" | "running" | "done", result-if-done)`.
    pub fn status(&self, digest: &str) -> Option<(&'static str, Option<Arc<JobResult>>)> {
        let t = self.inner.lock().expect("job table poisoned");
        t.jobs.get(digest).map(|e| match &e.state {
            State::Queued(_) => ("queued", None),
            State::Running => ("running", None),
            State::Done(r) => ("done", Some(r.clone())),
        })
    }

    /// Number of jobs currently running.
    pub fn running_count(&self) -> usize {
        let t = self.inner.lock().expect("job table poisoned");
        t.jobs
            .values()
            .filter(|e| matches!(e.state, State::Running))
            .count()
    }

    /// Pre-populate the result cache with an already-completed result (the
    /// daemon's boot-warm from the artifact store). FIFO eviction applies
    /// exactly as for live completions. Returns `false` when the cache is
    /// disabled or the digest is already present.
    pub fn warm(&self, digest: String, result: JobResult) -> bool {
        let mut t = self.inner.lock().expect("job table poisoned");
        if t.cache_capacity == 0 || t.jobs.contains_key(&digest) {
            return false;
        }
        t.jobs.insert(
            digest.clone(),
            Entry {
                state: State::Done(Arc::new(result)),
                cancel: CancelToken::new(),
                deadline_ns: None,
                timed_out: false,
                waiters: Vec::new(),
            },
        );
        t.cache_order.push_back(digest);
        while t.cache_order.len() > t.cache_capacity {
            if let Some(old) = t.cache_order.pop_front() {
                t.jobs.remove(&old);
            }
        }
        true
    }

    /// Snapshot of the cached results in completion order (oldest first),
    /// for the drain-time persist into the artifact store.
    pub fn cached_entries(&self) -> Vec<(String, Arc<JobResult>)> {
        let t = self.inner.lock().expect("job table poisoned");
        t.cache_order
            .iter()
            .filter_map(|d| match t.jobs.get(d).map(|e| &e.state) {
                Some(State::Done(r)) => Some((d.clone(), r.clone())),
                _ => None,
            })
            .collect()
    }

    /// Number of completed results currently held in the cache (the `health`
    /// response's `cache_entries`).
    pub fn cached_count(&self) -> usize {
        let t = self.inner.lock().expect("job table poisoned");
        t.jobs
            .values()
            .filter(|e| matches!(e.state, State::Done(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload() -> JobPayload {
        JobPayload {
            source: "package P end P;".into(),
            options: AnalyzeOptions::default(),
            trace: None,
        }
    }

    fn done(code: u8) -> JobResult {
        JobResult {
            code,
            verdict: "schedulable".into(),
            reason: None,
            stats: None,
            violations: Vec::new(),
            at_quantum: None,
        }
    }

    #[test]
    fn coalesce_then_cache_then_evict() {
        let table: JobTable<u32> = JobTable::new(1);
        assert!(matches!(table.submit("d1", payload(), 1, None), Submit::New));
        assert!(matches!(
            table.submit("d1", payload(), 2, None),
            Submit::Coalesced
        ));
        let (_p, _tok, _dl) = table.take_running("d1").unwrap();
        assert!(matches!(
            table.submit("d1", payload(), 3, None),
            Submit::Coalesced
        ));
        let mut waiters = table.complete("d1", done(0), true);
        waiters.sort_unstable();
        assert_eq!(waiters, vec![1, 2, 3]);
        // Now cached.
        assert_eq!(table.cached_count(), 1);
        assert!(matches!(
            table.submit("d1", payload(), 4, None),
            Submit::Cached(_)
        ));
        // A second completed digest evicts the first (capacity 1).
        assert!(matches!(table.submit("d2", payload(), 5, None), Submit::New));
        table.take_running("d2").unwrap();
        table.complete("d2", done(0), true);
        assert_eq!(table.cached_count(), 1);
        assert!(matches!(table.submit("d1", payload(), 6, None), Submit::New));
    }

    #[test]
    fn abort_returns_every_attached_waiter() {
        // A duplicate can coalesce between `submit` and the queue push; if
        // the push then fails, abort must hand back *all* waiters so the
        // server can tell each one the job died.
        let table: JobTable<u32> = JobTable::new(8);
        assert!(matches!(table.submit("d", payload(), 1, None), Submit::New));
        assert!(matches!(
            table.submit("d", payload(), 2, None),
            Submit::Coalesced
        ));
        let mut waiters = table.abort("d");
        waiters.sort_unstable();
        assert_eq!(waiters, vec![1, 2]);
        // The entry is gone: the digest submits fresh again.
        assert!(matches!(table.submit("d", payload(), 3, None), Submit::New));
        assert!(table.abort("missing").is_empty());
    }

    #[test]
    fn input_errors_are_not_cached() {
        let table: JobTable<u32> = JobTable::new(8);
        table.submit("d", payload(), 1, None);
        table.take_running("d").unwrap();
        table.complete("d", done(2), false);
        assert!(matches!(table.submit("d", payload(), 2, None), Submit::New));
    }

    #[test]
    fn cancel_states_and_reaper() {
        let table: JobTable<u32> = JobTable::new(8);
        assert_eq!(table.cancel("missing"), "unknown");
        table.submit("d", payload(), 1, Some(1_000));
        assert_eq!(table.cancel("d"), "queued");
        let (_p, token, _dl) = table.take_running("d").unwrap();
        assert!(token.is_cancelled());
        // Reaper: a running job past its deadline gets marked timed out.
        let t2: JobTable<u32> = JobTable::new(8);
        t2.submit("x", payload(), 1, Some(500));
        let (_p, tok, dl) = t2.take_running("x").unwrap();
        assert_eq!(dl, Some(500));
        assert_eq!(t2.reap(|| 499), 0);
        assert!(!tok.is_cancelled());
        assert_eq!(t2.reap(|| 500), 1);
        assert!(tok.is_cancelled());
        assert!(t2.timed_out("x"));
        // Idle table: the reaper never needs the clock.
        let idle: JobTable<u32> = JobTable::new(8);
        assert_eq!(idle.reap(|| panic!("clock read on idle table")), 0);
    }
}
