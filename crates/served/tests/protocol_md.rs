//! Keeps `PROTOCOL.md` honest: every ```transcript fenced block in the
//! specification is replayed against a freshly started daemon — each `> `
//! line is sent, each `< ` line is byte-compared against the actual
//! response. A drifting response renderer (or a hand-edited example) fails
//! this test.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};

fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

/// Extract every ```transcript fenced block as a list of
/// (direction, line) pairs.
fn transcript_blocks(md: &str) -> Vec<Vec<(char, String)>> {
    let mut blocks = Vec::new();
    let mut current: Option<Vec<(char, String)>> = None;
    for line in md.lines() {
        match (&mut current, line.trim_end()) {
            (None, "```transcript") => current = Some(Vec::new()),
            (Some(block), "```") => {
                blocks.push(std::mem::take(block));
                current = None;
            }
            (Some(block), l) => {
                if let Some(rest) = l.strip_prefix("> ") {
                    block.push(('>', rest.to_string()));
                } else if let Some(rest) = l.strip_prefix("< ") {
                    block.push(('<', rest.to_string()));
                } else if !l.is_empty() {
                    panic!("transcript line must start with `> ` or `< `: {l:?}");
                }
            }
            _ => {}
        }
    }
    assert!(current.is_none(), "unterminated ```transcript block");
    blocks
}

#[test]
fn protocol_md_transcripts_replay_byte_exactly() {
    let md = std::fs::read_to_string(repo_root().join("PROTOCOL.md")).expect("read PROTOCOL.md");
    let blocks = transcript_blocks(&md);
    assert!(
        !blocks.is_empty(),
        "PROTOCOL.md must contain at least one ```transcript block"
    );
    for (bi, block) in blocks.iter().enumerate() {
        // A fresh daemon per block, exactly as the spec describes: one
        // worker, fake clock, repo root as working directory.
        let mut child = Command::new(env!("CARGO_BIN_EXE_aadlschedd"))
            .args(["--workers", "1"])
            .env("AADLSCHED_FAKE_CLOCK", "1000")
            .current_dir(repo_root())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn aadlschedd");
        let mut ready = String::new();
        BufReader::new(child.stdout.take().unwrap())
            .read_line(&mut ready)
            .expect("readiness line");
        let addr = ready.trim().rsplit(' ').next().unwrap().to_string();
        let stream = TcpStream::connect(&addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        for (i, (dir, line)) in block.iter().enumerate() {
            match dir {
                '>' => {
                    writer
                        .write_all(format!("{line}\n").as_bytes())
                        .expect("send");
                }
                '<' => {
                    let mut actual = String::new();
                    reader.read_line(&mut actual).expect("recv");
                    assert_eq!(
                        actual.trim_end(),
                        line,
                        "transcript block {bi}, line {i}: response drifted \
                         from PROTOCOL.md"
                    );
                }
                _ => unreachable!(),
            }
        }
        // Transcripts end with a shutdown exchange, so the daemon exits 0.
        let status = child.wait().expect("wait");
        assert!(status.success(), "daemon exit after block {bi}: {status:?}");
    }
}
