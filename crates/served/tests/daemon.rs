//! End-to-end tests of `aadlschedd`: a real daemon process on an ephemeral
//! port, driven by raw line-protocol clients — concurrent connections,
//! duplicate coalescing, cancellation, deterministic timeouts, cache hits,
//! fleet metrics, and byte-stable responses under the fake clock.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

/// A model whose exhaustive state space takes seconds to explore (three
/// rate-monotonic threads with wide execution-time ranges → heavy
/// branching): the deterministic "slow job" that keeps the single worker
/// busy while coalescing and cancellation are exercised. It is always
/// cancelled, so the tests never pay the full exploration.
const SLOW_MODEL: &str = r#"package Slow
public
  processor cpu
    properties
      Scheduling_Protocol => RMS;
  end cpu;
  thread A
    properties
      Dispatch_Protocol => Periodic;
      Period => 200 ms;
      Compute_Execution_Time => 1 ms .. 60 ms;
      Compute_Deadline => 200 ms;
  end A;
  thread B
    properties
      Dispatch_Protocol => Periodic;
      Period => 100 ms;
      Compute_Execution_Time => 1 ms .. 30 ms;
      Compute_Deadline => 100 ms;
  end B;
  thread C
    properties
      Dispatch_Protocol => Periodic;
      Period => 50 ms;
      Compute_Execution_Time => 1 ms .. 20 ms;
      Compute_Deadline => 50 ms;
  end C;
  process proc
  end proc;
  process implementation proc.impl
    subcomponents
      a: thread A;
      b: thread B;
      c: thread C;
  end proc.impl;
  system top
  end top;
  system implementation top.impl
    subcomponents
      p: process proc.impl;
      cpu0: processor cpu;
    properties
      Actual_Processor_Binding => reference (cpu0) applies to p.a;
      Actual_Processor_Binding => reference (cpu0) applies to p.b;
      Actual_Processor_Binding => reference (cpu0) applies to p.c;
  end top.impl;
end Slow;
"#;

fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn model_path(name: &str) -> String {
    repo_root()
        .join("examples/models")
        .join(name)
        .to_str()
        .unwrap()
        .to_string()
}

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn start(args: &[&str], fake_clock: Option<&str>) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_aadlschedd"));
        cmd.args(args)
            .current_dir(repo_root())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        match fake_clock {
            Some(tick) => cmd.env("AADLSCHED_FAKE_CLOCK", tick),
            None => cmd.env_remove("AADLSCHED_FAKE_CLOCK"),
        };
        let mut child = cmd.spawn().expect("spawn aadlschedd");
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("readiness line");
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .expect("address in readiness line")
            .to_string();
        assert!(
            line.starts_with("aadlschedd listening on "),
            "unexpected readiness line: {line:?}"
        );
        Daemon { child, addr }
    }

    fn connect(&self) -> Conn {
        let stream = TcpStream::connect(&self.addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Conn {
            writer: stream,
            reader,
        }
    }

    /// Graceful shutdown; asserts the daemon process exits 0.
    fn shutdown(mut self) {
        let mut conn = self.connect();
        conn.send(r#"{"type":"shutdown","id":"bye"}"#);
        assert_eq!(
            conn.recv(),
            r#"{"type":"shutting-down","id":"bye"}"#,
            "shutdown acknowledgement"
        );
        let status = self.child.wait().expect("wait for daemon");
        assert!(status.success(), "daemon exit status: {status:?}");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn send(&mut self, line: &str) {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        assert!(!line.is_empty(), "connection closed while expecting a line");
        line.trim_end().to_string()
    }
}

fn field<'a>(line: &'a str, key: &str) -> String {
    // Tiny field extractor for test assertions; the values we need are
    // strings/bools/ints without nested quotes.
    let needle = format!("\"{key}\":");
    let at = line.find(&needle).unwrap_or_else(|| {
        panic!("no field `{key}` in {line}");
    }) + needle.len();
    let rest = &line[at..];
    if let Some(s) = rest.strip_prefix('"') {
        s[..s.find('"').unwrap()].to_string()
    } else {
        rest[..rest.find([',', '}']).unwrap()].to_string()
    }
}

fn analyze_file(id: &str, name: &str) -> String {
    format!(
        r#"{{"type":"analyze","id":"{id}","file":"{}"}}"#,
        model_path(name)
    )
}

#[test]
fn verdicts_match_the_cli_contract_and_duplicates_hit_the_cache() {
    let daemon = Daemon::start(&["--workers", "2"], None);
    let mut conn = daemon.connect();
    // The four bundled models and their CLI exit codes.
    let expected = [
        ("cruise_control.aadl", "schedulable", "0"),
        ("flight_control.aadl", "schedulable", "0"),
        ("inversion.aadl", "unschedulable", "1"),
        ("overloaded.aadl", "unschedulable", "1"),
    ];
    let mut first_result = String::new();
    for (i, (model, verdict, code)) in expected.iter().enumerate() {
        let id = format!("m{i}");
        conn.send(&analyze_file(&id, model));
        let accepted = conn.recv();
        assert_eq!(field(&accepted, "type"), "accepted");
        assert_eq!(field(&accepted, "coalesced"), "false");
        let result = conn.recv();
        assert_eq!(field(&result, "id"), id);
        assert_eq!(field(&result, "verdict"), *verdict, "{model}: {result}");
        assert_eq!(field(&result, "code"), *code, "{model}: {result}");
        assert_eq!(field(&result, "cached"), "false");
        if i == 0 {
            first_result = result;
        }
    }
    // The identical request again: a result-cache hit, byte-identical to
    // the first result apart from the cached flag.
    conn.send(&analyze_file("m0", "cruise_control.aadl"));
    let accepted = conn.recv();
    assert_eq!(field(&accepted, "coalesced"), "false");
    let cached = conn.recv();
    assert_eq!(field(&cached, "cached"), "true");
    assert_eq!(
        cached.replace("\"cached\":true", "\"cached\":false"),
        first_result,
        "cached result must be byte-identical apart from the cached flag"
    );
    // The warm-store/dedup hit is visible in the fleet metrics.
    conn.send(r#"{"type":"metrics","id":"m"}"#);
    let metrics = conn.recv();
    assert_eq!(field(&metrics, "served.cache_hits"), "1", "{metrics}");
    assert_eq!(field(&metrics, "served.results"), "4", "{metrics}");
    daemon.shutdown();
}

#[test]
fn concurrent_clients_coalesce_cancel_and_time_out() {
    // One worker, so job order is deterministic: the slow job occupies the
    // worker while everything else queues behind it.
    let daemon = Daemon::start(&["--workers", "1"], None);
    let mut a = daemon.connect();
    let mut b = daemon.connect();

    // Client A: the slow job (inline), then a fast one queued behind it.
    let slow_req = obs::Json::obj([
        ("type", obs::Json::from("analyze")),
        ("id", obs::Json::from("a-slow")),
        ("model", obs::Json::from(SLOW_MODEL)),
        (
            "options",
            obs::Json::obj([("exhaustive", obs::Json::Bool(true))]),
        ),
    ])
    .to_compact();
    a.send(&slow_req);
    let slow_acc = a.recv();
    assert_eq!(field(&slow_acc, "coalesced"), "false");
    let slow_job = field(&slow_acc, "job");

    a.send(&analyze_file("a-inv", "inversion.aadl"));
    let inv_acc = a.recv();
    assert_eq!(field(&inv_acc, "coalesced"), "false");
    let inv_job = field(&inv_acc, "job");

    // Client B: the identical inversion request must coalesce — the worker
    // is pinned on the slow job, so the duplicate finds the queued entry.
    b.send(&analyze_file("b-inv", "inversion.aadl"));
    let dup_acc = b.recv();
    assert_eq!(field(&dup_acc, "coalesced"), "true", "{dup_acc}");
    assert_eq!(field(&dup_acc, "job"), inv_job);

    // Client B cancels the slow job (observed queued or running, depending
    // on whether the worker has popped it yet).
    b.send(&format!(
        r#"{{"type":"cancel","id":"b-cancel","job":"{slow_job}"}}"#
    ));
    let cancelled = b.recv();
    assert_eq!(field(&cancelled, "type"), "cancelled");
    let was = field(&cancelled, "was");
    assert!(was == "running" || was == "queued", "was: {was}");

    // Client A now receives the slow job's cancelled result, then the
    // inversion verdict; client B receives the same verdict under its id.
    let slow_res = a.recv();
    assert_eq!(field(&slow_res, "id"), "a-slow");
    assert_eq!(field(&slow_res, "verdict"), "unknown");
    assert_eq!(field(&slow_res, "reason"), "cancelled");
    assert_eq!(field(&slow_res, "code"), "3");
    let a_inv = a.recv();
    assert_eq!(field(&a_inv, "id"), "a-inv");
    assert_eq!(field(&a_inv, "verdict"), "unschedulable");
    let b_inv = b.recv();
    assert_eq!(field(&b_inv, "id"), "b-inv");
    assert_eq!(field(&b_inv, "verdict"), "unschedulable");
    assert_eq!(field(&b_inv, "job"), inv_job);

    // Deterministic timeout: `timeout_ms: 0` expires before the worker
    // starts, so the result is a typed unknown without any clock races.
    b.send(
        r#"{"type":"analyze","id":"b-slow2","model":"package P end P;","options":{"timeout_ms":0}}"#,
    );
    let t_acc = b.recv();
    assert_eq!(field(&t_acc, "type"), "accepted");
    let t_res = b.recv();
    assert_eq!(field(&t_res, "verdict"), "unknown");
    assert_eq!(field(&t_res, "reason"), "timeout");
    assert_eq!(field(&t_res, "code"), "3");

    // Malformed requests are protocol errors; the id is echoed when one
    // can still be extracted.
    b.send("this is not json");
    let err = b.recv();
    assert_eq!(field(&err, "type"), "error");
    assert_eq!(field(&err, "code"), "2");
    b.send(r#"{"type":"explode","id":"b-bad"}"#);
    let err = b.recv();
    assert_eq!(field(&err, "id"), "b-bad");

    // Fleet metrics saw all of it.
    b.send(r#"{"type":"metrics","id":"b-m"}"#);
    let metrics = b.recv();
    assert_eq!(field(&metrics, "served.coalesced"), "1", "{metrics}");
    assert_eq!(field(&metrics, "served.cancelled"), "1", "{metrics}");
    assert_eq!(field(&metrics, "served.timeouts"), "1", "{metrics}");
    assert_eq!(field(&metrics, "served.errors"), "2", "{metrics}");
    daemon.shutdown();
}

#[test]
fn hostile_input_is_rejected_not_fatal() {
    let daemon = Daemon::start(&["--workers", "1"], None);

    // Deeply nested JSON: the recursive-descent parser must answer with a
    // protocol error instead of blowing the connection thread's stack — a
    // stack overflow aborts the whole daemon process.
    let mut a = daemon.connect();
    a.send(&"[".repeat(100_000));
    let err = a.recv();
    assert_eq!(field(&err, "type"), "error");
    assert_eq!(field(&err, "code"), "2");

    // A giant line with no newline: rejected at the framing cap with a
    // protocol error, then the daemon hangs up — it must not buffer an
    // endless stream into memory. (Exactly cap+1 bytes, so the daemon's
    // close is a clean FIN and the error response is reliably readable.)
    let mut b = daemon.connect();
    b.writer
        .write_all(&vec![b'x'; 4 * 1024 * 1024 + 1])
        .expect("send oversized blob");
    let err = b.recv();
    assert_eq!(field(&err, "type"), "error");
    assert!(err.contains("request line too long"), "{err}");
    let mut end = String::new();
    b.reader.read_line(&mut end).expect("read after error");
    assert!(end.is_empty(), "daemon must close the oversized connection");

    // The daemon is still fully alive for well-behaved clients.
    let mut c = daemon.connect();
    c.send(&analyze_file("ok", "cruise_control.aadl"));
    assert_eq!(field(&c.recv(), "type"), "accepted");
    assert_eq!(field(&c.recv(), "verdict"), "schedulable");
    daemon.shutdown();
}

#[test]
fn responses_are_byte_stable_under_the_fake_clock() {
    let transcript = |run: usize| {
        let daemon = Daemon::start(&["--workers", "1"], Some("1000"));
        let mut conn = daemon.connect();
        let mut lines = Vec::new();
        conn.send(&analyze_file("r1", "overloaded.aadl"));
        lines.push(conn.recv());
        lines.push(conn.recv());
        conn.send(
            r#"{"type":"analyze","id":"r2","model":"package P end P;","options":{"timeout_ms":0}}"#,
        );
        lines.push(conn.recv());
        lines.push(conn.recv());
        daemon.shutdown();
        (run, lines)
    };
    let (_, first) = transcript(1);
    let (_, second) = transcript(2);
    assert_eq!(first, second, "two fake-clock runs must render the same bytes");
    assert_eq!(field(&first[1], "verdict"), "unschedulable");
    assert_eq!(field(&first[1], "at_quantum"), "5");
    assert_eq!(field(&first[3], "reason"), "timeout");
}

/// Send one introspection request and return the response line.
fn introspect(conn: &mut Conn, kind: &str, id: &str) -> String {
    conn.send(&format!(r#"{{"type":"{kind}","id":"{id}"}}"#));
    conn.recv()
}

fn parse_json(line: &str) -> obs::Json {
    obs::Json::parse(line).unwrap_or_else(|e| panic!("bad JSON `{line}`: {e}"))
}

fn uint_at<'a>(v: &obs::Json, path: &[&str]) -> u64 {
    let mut cur = v;
    for key in path {
        cur = cur
            .get(key)
            .unwrap_or_else(|| panic!("no `{key}` in {}", v.to_compact()));
    }
    cur.as_u64()
        .unwrap_or_else(|| panic!("`{path:?}` is not a uint in {}", v.to_compact()))
}

#[test]
fn introspection_is_live_and_stats_snapshots_are_byte_identical() {
    let daemon = Daemon::start(&["--workers", "1"], Some("1000"));
    let mut conn = daemon.connect();

    // Health before any traffic.
    let health = parse_json(&introspect(&mut conn, "health", "h0"));
    assert_eq!(uint_at(&health, &["queue_depth"]), 0);
    assert_eq!(uint_at(&health, &["workers"]), 1);
    assert_eq!(uint_at(&health, &["jobs_running"]), 0);
    assert_eq!(uint_at(&health, &["cache_entries"]), 0);
    assert_eq!(health.get("draining"), Some(&obs::Json::Bool(false)));

    // Two consecutive snapshots with no traffic in between: byte-identical.
    // Introspection is excluded from `served.requests`, reads no clock and
    // mutates nothing, so polling the instruments never perturbs them.
    let quiet_a = introspect(&mut conn, "stats", "s");
    let quiet_b = introspect(&mut conn, "stats", "s");
    assert_eq!(quiet_a, quiet_b, "stats must not perturb itself");
    assert_eq!(
        uint_at(&parse_json(&quiet_a), &["counters", "served.requests"]),
        0,
        "introspection must not count as a request"
    );

    // Four real analyses through the single worker.
    for (i, model) in [
        "cruise_control.aadl",
        "flight_control.aadl",
        "inversion.aadl",
        "overloaded.aadl",
    ]
    .iter()
    .enumerate()
    {
        conn.send(&analyze_file(&format!("m{i}"), model));
        assert_eq!(field(&conn.recv(), "type"), "accepted");
        assert_eq!(field(&conn.recv(), "type"), "result");
    }
    // The worker observes the serialize stage just *after* writing the
    // result line, so poll until its bookkeeping for the 4th request has
    // landed before asserting on the snapshot.
    let mut snap = String::new();
    for _ in 0..200 {
        snap = introspect(&mut conn, "stats", "s");
        if uint_at(&parse_json(&snap), &["histograms", "served.serialize", "count"]) >= 4 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let stats = parse_json(&snap);
    assert_eq!(uint_at(&stats, &["counters", "served.requests"]), 4);
    assert_eq!(uint_at(&stats, &["counters", "served.results"]), 4);
    // Per-stage histograms are present and non-empty after the smoke run.
    for stage in [
        "served.queue_wait",
        "served.exec",
        "served.serialize",
        "served.request_wall",
    ] {
        assert_eq!(
            uint_at(&stats, &["histograms", stage, "count"]),
            4,
            "{stage} in {snap}"
        );
    }
    // Quantile estimates are monotone on every histogram in the snapshot.
    match stats.get("histograms") {
        Some(obs::Json::Obj(hists)) => {
            assert!(!hists.is_empty());
            for (name, h) in hists {
                let (p50, p90, p99, max) = (
                    uint_at(h, &["p50"]),
                    uint_at(h, &["p90"]),
                    uint_at(h, &["p99"]),
                    uint_at(h, &["max"]),
                );
                assert!(
                    p50 <= p90 && p90 <= p99 && p99 <= max,
                    "{name}: p50={p50} p90={p90} p99={p99} max={max}"
                );
            }
        }
        other => panic!("histograms section missing: {other:?}"),
    }
    // Byte-identity again, now with warm instruments.
    assert_eq!(snap, introspect(&mut conn, "stats", "s"));

    // Health reflects the populated result cache.
    let health = parse_json(&introspect(&mut conn, "health", "h1"));
    assert_eq!(uint_at(&health, &["cache_entries"]), 4);
    daemon.shutdown();
}

#[test]
fn timed_out_requests_land_in_the_flight_recorder() {
    let daemon = Daemon::start(&["--workers", "1"], Some("1000"));
    let mut conn = daemon.connect();
    conn.send(
        r#"{"type":"analyze","id":"t1","model":"package P end P;","options":{"timeout_ms":0}}"#,
    );
    assert_eq!(field(&conn.recv(), "type"), "accepted");
    let res = conn.recv();
    assert_eq!(field(&res, "reason"), "timeout");
    // The flight event is recorded just after the result line is written;
    // poll until it lands.
    let mut line = String::new();
    for _ in 0..200 {
        line = introspect(&mut conn, "flight", "f");
        if uint_at(&parse_json(&line), &["recorded"]) >= 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let flight = parse_json(&line);
    assert_eq!(field(&line, "type"), "flight");
    assert!(uint_at(&flight, &["capacity"]) >= 1);
    let events = match flight.get("events") {
        Some(obs::Json::Arr(events)) => events,
        other => panic!("no events array: {other:?}"),
    };
    assert_eq!(events.len(), 1, "{line}");
    let ev = &events[0];
    assert_eq!(ev.get("id"), Some(&obs::Json::from("t1")));
    assert_eq!(ev.get("outcome"), Some(&obs::Json::from("timeout")));
    assert_eq!(uint_at(ev, &["code"]), 3);
    assert_eq!(uint_at(ev, &["req"]), 1);
    // The job timed out before execution: stage timings cover the queue
    // wait and the serialize window but there is no exec stage.
    for stage in ["parse", "dispatch", "queue_wait", "serialize"] {
        assert!(
            ev.get("stages").and_then(|s| s.get(stage)).is_some(),
            "missing stage `{stage}` in {line}"
        );
    }
    assert!(ev.get("stages").and_then(|s| s.get("exec")).is_none());
    daemon.shutdown();
}

#[test]
fn span_tree_stages_account_for_the_root_duration_exactly() {
    let metrics = std::env::temp_dir().join(format!("aadlschedd-trace-{}.json", std::process::id()));
    let metrics_str = metrics.to_str().unwrap().to_string();
    let daemon = Daemon::start(&["--workers", "1", "--metrics", &metrics_str], Some("1000"));
    let mut conn = daemon.connect();
    conn.send(&analyze_file("r1", "cruise_control.aadl"));
    assert_eq!(field(&conn.recv(), "type"), "accepted");
    assert_eq!(field(&conn.recv(), "verdict"), "schedulable");
    daemon.shutdown(); // joins the workers, then writes the report
    let report = parse_json(&std::fs::read_to_string(&metrics).expect("fleet report"));
    std::fs::remove_file(&metrics).ok();

    let spans = match report.get("spans") {
        Some(obs::Json::Arr(spans)) => spans,
        other => panic!("no spans in report: {other:?}"),
    };
    let by_name = |name: &str| {
        spans
            .iter()
            .find(|s| s.get("name") == Some(&obs::Json::from(name)))
            .unwrap_or_else(|| panic!("no span `{name}`"))
    };
    // One request → one `served.request` root whose per-stage children plus
    // the recorded slack account for its duration *exactly* (the stamps all
    // come from one clock and the slack is derived, not measured).
    let root = by_name("served.request");
    assert!(root.get("parent") == Some(&obs::Json::Null));
    assert_eq!(uint_at(root, &["fields", "req"]), 1);
    assert_eq!(uint_at(root, &["fields", "code"]), 0);
    let root_id = uint_at(root, &["id"]);
    let stage_sum: u64 = spans
        .iter()
        .filter(|s| {
            s.get("parent") == Some(&obs::Json::UInt(root_id))
                && matches!(
                    s.get("name").and_then(obs::Json::as_str),
                    Some(
                        "served.parse"
                            | "served.dispatch"
                            | "served.queue_wait"
                            | "served.exec"
                            | "served.serialize"
                    )
                )
        })
        .map(|s| uint_at(s, &["duration_ns"]))
        .sum();
    assert!(stage_sum > 0);
    assert_eq!(
        stage_sum + uint_at(root, &["fields", "slack_ns"]),
        uint_at(root, &["duration_ns"]),
        "stages + slack must equal the root duration: {}",
        report.to_compact()
    );
    // The engine's own spans nest under `served.exec` and carry the tag.
    let exec_id = uint_at(by_name("served.exec"), &["id"]);
    for engine in ["translate", "explore"] {
        let s = by_name(engine);
        assert_eq!(uint_at(s, &["parent"]), exec_id, "{engine}");
        assert_eq!(uint_at(s, &["fields", "req"]), 1, "{engine}");
    }
    // The flight window drained into the shutdown report.
    assert_eq!(uint_at(&report, &["flight", "recorded"]), 1);
    let ev = match report.get("flight").and_then(|f| f.get("events")) {
        Some(obs::Json::Arr(events)) => &events[0],
        other => panic!("no flight events: {other:?}"),
    };
    assert_eq!(ev.get("outcome"), Some(&obs::Json::from("schedulable")));
}

#[test]
fn run_ids_replay_under_the_fake_clock_and_differ_under_the_real_clock() {
    let run_id = |fake: Option<&str>| {
        let daemon = Daemon::start(&["--workers", "1"], fake);
        let mut conn = daemon.connect();
        let id = field(&introspect(&mut conn, "stats", "s"), "run_id");
        daemon.shutdown();
        id
    };
    // Fixed salt under the fake clock: replays yield the same run id.
    assert_eq!(run_id(Some("1000")), run_id(Some("1000")));
    // Under the real clock the daemon start time is folded in, so two
    // daemon processes are distinguishable in archived reports.
    assert_ne!(run_id(None), run_id(None));
}

#[test]
fn aadlschedc_covers_the_introspection_commands() {
    let daemon = Daemon::start(&["--workers", "1"], Some("1000"));
    let client = |args: &[&str]| {
        let out = Command::new(env!("CARGO_BIN_EXE_aadlschedc"))
            .arg("--addr")
            .arg(&daemon.addr)
            .args(args)
            .output()
            .expect("run aadlschedc");
        (
            out.status.code().expect("exit code"),
            String::from_utf8(out.stdout).expect("utf8 stdout"),
        )
    };
    let (code, out) = client(&["stats"]);
    assert_eq!(code, 0);
    assert_eq!(field(out.trim(), "type"), "stats");
    let (code, out) = client(&["health"]);
    assert_eq!(code, 0);
    assert_eq!(field(out.trim(), "type"), "health");
    let (code, out) = client(&["flight"]);
    assert_eq!(code, 0);
    assert_eq!(field(out.trim(), "type"), "flight");
    // `--summary` renders one human-readable line instead of raw JSON.
    let (code, out) = client(&["health", "--summary"]);
    assert_eq!(code, 0);
    assert!(out.starts_with("health: up "), "{out}");
    assert_eq!(out.lines().count(), 1);
    let (code, out) = client(&["stats", "--summary"]);
    assert_eq!(code, 0);
    assert!(out.starts_with("stats: "), "{out}");
    // Usage errors keep the protocol-error exit code.
    let (code, _) = client(&["stats", "--bogus"]);
    assert_eq!(code, 2);
    daemon.shutdown();
}

#[test]
fn artifact_store_boot_warms_the_cache_across_restarts() {
    let dir = std::env::temp_dir().join(format!("aadlschedd-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = dir.to_str().unwrap().to_string();

    // First life: one verdict computed cold, then a graceful drain
    // persists the result cache into the store.
    let d1 = Daemon::start(&["--workers", "1", "--store", &store], None);
    let mut c = d1.connect();
    c.send(&analyze_file("a", "cruise_control.aadl"));
    c.recv();
    let cold = c.recv();
    assert_eq!(field(&cold, "verdict"), "schedulable");
    assert_eq!(field(&cold, "cached"), "false");
    d1.shutdown();
    assert!(
        std::fs::read_dir(&dir).unwrap().count() >= 2,
        "drain must leave the exploration artifact and the cache snapshot"
    );

    // Second life: the boot-warm makes the identical request a cache hit
    // before any analysis has run in this process.
    let d2 = Daemon::start(&["--workers", "1", "--store", &store], None);
    let mut c = d2.connect();
    c.send(&analyze_file("a", "cruise_control.aadl"));
    c.recv();
    let warm = c.recv();
    assert_eq!(field(&warm, "verdict"), "schedulable");
    assert_eq!(field(&warm, "cached"), "true");
    // With a store configured, `metrics` grows the cas section.
    c.send(r#"{"type":"metrics","id":"m"}"#);
    let metrics = c.recv();
    assert!(metrics.contains("\"cas.hits\":"), "{metrics}");
    d2.shutdown();

    // Third life, read-only: hits are still served but the store gains
    // nothing — not even the drain-time snapshot.
    let entries_before = std::fs::read_dir(&dir).unwrap().count();
    let ro = format!("readonly:{store}");
    let d3 = Daemon::start(&["--workers", "1", "--store", &ro], None);
    let mut c = d3.connect();
    c.send(&analyze_file("a", "cruise_control.aadl"));
    c.recv();
    let ro_hit = c.recv();
    assert_eq!(field(&ro_hit, "cached"), "true");
    d3.shutdown();
    let entries_after = std::fs::read_dir(&dir).unwrap().count();
    assert_eq!(
        entries_before, entries_after,
        "a read-only store must not gain entries"
    );

    // A corrupt snapshot degrades to a cold boot, never a crash: garbage
    // every entry, then boot again and expect a fresh (uncached) verdict.
    for e in std::fs::read_dir(&dir).unwrap().flatten() {
        std::fs::write(e.path(), b"garbage, not a cas entry").unwrap();
    }
    let d4 = Daemon::start(&["--workers", "1", "--store", &store], None);
    let mut c = d4.connect();
    c.send(&analyze_file("a", "cruise_control.aadl"));
    c.recv();
    let fresh = c.recv();
    assert_eq!(field(&fresh, "verdict"), "schedulable");
    assert_eq!(field(&fresh, "cached"), "false");
    d4.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
