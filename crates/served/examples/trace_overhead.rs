//! Q11 helper: in-process A/B of the engine with an enabled vs disabled
//! recorder, isolating the engine-side tracing cost from socket noise.
//! Run from the repo root: `cargo run --release -p served --example trace_overhead`

use std::time::Instant;

fn main() {
    let src = std::fs::read_to_string("examples/models/cruise_control.aadl").expect("model");
    let pkg = aadl::parser::parse_package(&src).expect("parse");
    let root = pkg.default_root().expect("root");
    let model = aadl::instance::instantiate(&pkg, &root).expect("instantiate");
    for label in ["disabled", "enabled", "nospans", "disabled", "enabled", "nospans"] {
        let mut best = u128::MAX;
        for _ in 0..50 {
            let rec = match label {
                "enabled" => obs::Recorder::enabled(),
                "nospans" => obs::Recorder::enabled().with_span_cap(0),
                _ => obs::Recorder::disabled(),
            };
            let t0 = Instant::now();
            let topts = aadl2acsr::TranslateOptions {
                obs: rec.clone(),
                ..Default::default()
            };
            let tm = aadl2acsr::translate(&model, &topts).expect("translate");
            let mut aopts = aadl2acsr::AnalysisOptions::exhaustive();
            aopts.explore.obs = rec.clone();
            let _v = aadl2acsr::analyze_translated(&model, &tm, &aopts);
            best = best.min(t0.elapsed().as_nanos());
        }
        println!("{label}: {} us", best / 1000);
    }
}
