//! `cas` — a std-only, file-backed, content-addressed store for analysis
//! artifacts.
//!
//! The store maps a 64-bit content key (rendered as 16 hex digits) to an
//! opaque payload. Keys are derived by the caller from everything the
//! artifact depends on — model digest, environment fingerprint, canonical
//! option strings — via [`key`], so two runs that would compute the same
//! artifact derive the same key, and any input change derives a fresh one.
//! Invalidation is therefore structural: nothing is ever updated in place,
//! a changed input simply misses.
//!
//! # On-disk layout
//!
//! One flat directory, one file per entry, named `<16 hex digits>.cas`:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"AADLCAS\0"
//! 8       4     entry format version, u32 little-endian (ENTRY_VERSION)
//! 12      8     payload length, u64 little-endian
//! 20      n     payload bytes (opaque to the store)
//! 20+n    8     FNV-1a checksum of the payload, u64 little-endian
//! ```
//!
//! # Robustness contract
//!
//! * [`CasStore::get`] never panics on store content: a missing file is a
//!   [`Lookup::Miss`]; a truncated, bit-flipped, over-long, alien-magic or
//!   alien-version file is a [`Lookup::Invalid`] (callers count it and then
//!   treat it exactly like a miss — recompute and overwrite).
//! * [`CasStore::put`] writes a private temp file and publishes it with
//!   `rename(2)`, which is atomic on POSIX: a concurrent reader sees either
//!   the old complete entry or the new complete entry, never a torn one.
//!   Concurrent writers race benignly — last rename wins, and both wrote
//!   the same bytes for the same key anyway.
//! * A crash mid-`put` leaves at most a stale temp file (ignored by `get`,
//!   swept by the next `open`) or, on power loss before the data reached
//!   the disk, a short/empty published file — which the length and
//!   checksum fields turn into an `Invalid`, i.e. a recompute, never a
//!   wrong artifact.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Magic bytes opening every entry file.
pub const MAGIC: [u8; 8] = *b"AADLCAS\0";

/// On-disk entry format version. Bump on any layout change; readers treat
/// every other version as [`Lookup::Invalid`].
pub const ENTRY_VERSION: u32 = 1;

/// Bytes of framing around the payload: magic + version + length + checksum.
const OVERHEAD: usize = 8 + 4 + 8 + 8;

/// Whether a store accepts writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Normal operation: `get` and `put`.
    ReadWrite,
    /// `put` is a silent no-op (returns `Ok(false)`); nothing on disk is
    /// created or modified, including the store directory itself.
    ReadOnly,
}

/// Result of a [`CasStore::get`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// The entry exists, framed correctly, and its checksum matches.
    Hit(Vec<u8>),
    /// No entry file for this key.
    Miss,
    /// An entry file exists but is truncated, corrupt, or carries an alien
    /// magic/version. Callers must treat this as a miss (recompute); the
    /// distinct variant exists so they can also count it.
    Invalid,
}

/// A file-backed content-addressed artifact store.
///
/// Cheap to share behind an `Arc`; all methods take `&self`.
#[derive(Debug)]
pub struct CasStore {
    dir: PathBuf,
    read_only: bool,
    /// Distinguishes temp files written by concurrent threads of one process.
    tmp_seq: AtomicU64,
}

impl CasStore {
    /// Open (and in [`Mode::ReadWrite`], create) the store directory.
    ///
    /// Read-write opens also sweep temp files abandoned by a crashed
    /// writer. Read-only opens of a nonexistent directory succeed and
    /// behave as an empty store.
    pub fn open(dir: impl Into<PathBuf>, mode: Mode) -> io::Result<CasStore> {
        let dir = dir.into();
        let read_only = matches!(mode, Mode::ReadOnly);
        if !read_only {
            fs::create_dir_all(&dir)?;
            // Sweep temp files from crashed writers. Races with a live
            // writer are harmless: its rename already has its own handle.
            if let Ok(entries) = fs::read_dir(&dir) {
                for e in entries.flatten() {
                    if e.file_name().to_string_lossy().starts_with(".tmp-") {
                        let _ = fs::remove_file(e.path());
                    }
                }
            }
        }
        Ok(CasStore {
            dir,
            read_only,
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The directory this store reads from and writes to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// True when the store was opened [`Mode::ReadOnly`].
    pub fn read_only(&self) -> bool {
        self.read_only
    }

    /// Look up the payload stored under `key`.
    ///
    /// Never panics on store content; see the module docs for the
    /// miss/invalid contract.
    pub fn get(&self, key: &str) -> Lookup {
        if !valid_key(key) {
            return Lookup::Miss;
        }
        let bytes = match fs::read(self.entry_path(key)) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Lookup::Miss,
            // Unreadable (permissions, I/O error): not provably absent,
            // but definitely not servable. Count as invalid, recompute.
            Err(_) => return Lookup::Invalid,
        };
        decode_entry(&bytes)
    }

    /// Store `payload` under `key`, overwriting any previous entry.
    ///
    /// Returns `Ok(true)` if the entry was published, `Ok(false)` in
    /// read-only mode. The write is atomic: temp file + rename.
    pub fn put(&self, key: &str, payload: &[u8]) -> io::Result<bool> {
        if self.read_only {
            return Ok(false);
        }
        if !valid_key(key) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("cas: malformed key {key:?}"),
            ));
        }
        let mut buf = Vec::with_capacity(OVERHEAD + payload.len());
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&ENTRY_VERSION.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        buf.extend_from_slice(payload);
        buf.extend_from_slice(&fnv1a(payload).to_le_bytes());

        let tmp = self.dir.join(format!(
            ".tmp-{}-{}-{key}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed),
        ));
        let publish = || -> io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_data()?;
            drop(f);
            fs::rename(&tmp, self.entry_path(key))
        };
        let res = publish();
        if res.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        res.map(|()| true)
    }

    /// Number of well-formed-looking entry files currently in the store
    /// directory (by name only; contents are not validated).
    pub fn len(&self) -> usize {
        match fs::read_dir(&self.dir) {
            Ok(entries) => entries
                .flatten()
                .filter(|e| {
                    e.file_name()
                        .to_string_lossy()
                        .strip_suffix(".cas")
                        .is_some_and(valid_key)
                })
                .count(),
            Err(_) => 0,
        }
    }

    /// True when [`len`](CasStore::len) is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.cas"))
    }
}

/// Keys are exactly 16 lowercase hex digits — what [`key`] produces. The
/// check doubles as path-traversal hygiene for the filename.
fn valid_key(key: &str) -> bool {
    key.len() == 16
        && key
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

fn decode_entry(bytes: &[u8]) -> Lookup {
    if bytes.len() < OVERHEAD || bytes[..8] != MAGIC {
        return Lookup::Invalid;
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != ENTRY_VERSION {
        return Lookup::Invalid;
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    // Reject lengths that don't match the file size exactly: a torn or
    // appended-to file must not round-trip.
    let Ok(len) = usize::try_from(len) else {
        return Lookup::Invalid;
    };
    if bytes.len() != OVERHEAD + len {
        return Lookup::Invalid;
    }
    let payload = &bytes[20..20 + len];
    let stored_sum = u64::from_le_bytes(bytes[20 + len..].try_into().expect("8 bytes"));
    if fnv1a(payload) != stored_sum {
        return Lookup::Invalid;
    }
    Lookup::Hit(payload.to_vec())
}

/// Derive a store key from an ordered list of input parts.
///
/// Each part is hashed with its length so `["ab", "c"]` and `["a", "bc"]`
/// derive different keys. The result is the 16-hex-digit rendering of a
/// 64-bit FNV-1a digest — stable across processes, platforms, and runs.
pub fn key(parts: &[&[u8]]) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for part in parts {
        for b in (part.len() as u64).to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        for &b in *part {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// 64-bit FNV-1a over a byte slice (the entry checksum).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cas-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_hit() {
        let dir = scratch("roundtrip");
        let store = CasStore::open(&dir, Mode::ReadWrite).unwrap();
        let k = key(&[b"model", b"opts"]);
        assert_eq!(store.get(&k), Lookup::Miss);
        assert!(store.put(&k, b"payload bytes").unwrap());
        assert_eq!(store.get(&k), Lookup::Hit(b"payload bytes".to_vec()));
        assert_eq!(store.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let dir = scratch("empty");
        let store = CasStore::open(&dir, Mode::ReadWrite).unwrap();
        let k = key(&[b"empty"]);
        store.put(&k, b"").unwrap();
        assert_eq!(store.get(&k), Lookup::Hit(Vec::new()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn readonly_never_writes() {
        let dir = scratch("readonly");
        let store = CasStore::open(&dir, Mode::ReadOnly).unwrap();
        let k = key(&[b"x"]);
        assert!(!store.put(&k, b"data").unwrap());
        assert!(!dir.exists(), "read-only open must not create the directory");
        assert_eq!(store.get(&k), Lookup::Miss);
    }

    #[test]
    fn version_mismatch_is_invalid() {
        let dir = scratch("version");
        let store = CasStore::open(&dir, Mode::ReadWrite).unwrap();
        let k = key(&[b"versioned"]);
        store.put(&k, b"payload").unwrap();
        // Rewrite the version field to a future version.
        let path = dir.join(format!("{k}.cas"));
        let mut bytes = fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&(ENTRY_VERSION + 1).to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert_eq!(store.get(&k), Lookup::Invalid);
        // A fresh put repairs the entry.
        store.put(&k, b"payload").unwrap();
        assert_eq!(store.get(&k), Lookup::Hit(b"payload".to_vec()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_invalid_never_panics() {
        let dir = scratch("corrupt");
        let store = CasStore::open(&dir, Mode::ReadWrite).unwrap();
        let k = key(&[b"victim"]);
        store.put(&k, b"some artifact payload").unwrap();
        let path = dir.join(format!("{k}.cas"));
        let good = fs::read(&path).unwrap();

        // Truncations at every length.
        for cut in 0..good.len() {
            fs::write(&path, &good[..cut]).unwrap();
            assert_eq!(store.get(&k), Lookup::Invalid, "truncated at {cut}");
        }
        // Single-bit flips at every position.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            fs::write(&path, &bad).unwrap();
            assert_eq!(store.get(&k), Lookup::Invalid, "bit flip at byte {i}");
        }
        // Trailing garbage.
        let mut long = good.clone();
        long.extend_from_slice(b"garbage");
        fs::write(&path, &long).unwrap();
        assert_eq!(store.get(&k), Lookup::Invalid);
        // Pure garbage.
        fs::write(&path, b"not an entry at all").unwrap();
        assert_eq!(store.get(&k), Lookup::Invalid);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_stale_temp_files() {
        let dir = scratch("sweep");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(".tmp-1-0-deadbeefdeadbeef"), b"abandoned").unwrap();
        let store = CasStore::open(&dir, Mode::ReadWrite).unwrap();
        assert!(store.is_empty());
        assert!(!dir.join(".tmp-1-0-deadbeefdeadbeef").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_last_wins_no_torn_reads() {
        let dir = scratch("concurrent");
        let store = std::sync::Arc::new(CasStore::open(&dir, Mode::ReadWrite).unwrap());
        let k = key(&[b"contended"]);
        let payload = vec![0xabu8; 4096];
        let mut handles = Vec::new();
        for _ in 0..8 {
            let store = store.clone();
            let k = k.clone();
            let payload = payload.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    store.put(&k, &payload).unwrap();
                    match store.get(&k) {
                        Lookup::Hit(p) => assert_eq!(p, payload),
                        other => panic!("torn read: {other:?}"),
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_is_length_prefixed_and_stable() {
        assert_ne!(key(&[b"ab", b"c"]), key(&[b"a", b"bc"]));
        assert_eq!(key(&[b"ab", b"c"]), key(&[b"ab", b"c"]));
        let k = key(&[b"pinned"]);
        assert!(valid_key(&k), "{k}");
    }

    #[test]
    fn malformed_keys_rejected() {
        let dir = scratch("badkey");
        let store = CasStore::open(&dir, Mode::ReadWrite).unwrap();
        assert_eq!(store.get("../../etc/passwd"), Lookup::Miss);
        assert_eq!(store.get("UPPERCASEISNOTOK"), Lookup::Miss);
        assert!(store.put("short", b"x").is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
