//! # aadl — an AADL (SAE AS5506) front end
//!
//! This crate implements the subset of the Architecture Analysis and Design
//! Language needed by the schedulability analysis of Sokolsky, Lee & Clarke,
//! *Schedulability Analysis of AADL Models* (IPDPS 2006). It plays the role
//! the OSATE modeling environment plays for the paper's tool chain: it turns
//! a *declarative* model (component types, implementations, features,
//! connections, properties, modes) into a fully *instantiated and bound*
//! model on which the AADL → ACSR translation operates.
//!
//! The paper's §2 overview fixes the scope:
//!
//! * **Components** — software (system, process, thread, data) and execution
//!   platform (processor, bus, memory, device) categories, with features
//!   (data/event/event-data ports, access), implementations containing
//!   interconnected subcomponents, and typed properties.
//! * **Connections** — syntactic port connections composed into *semantic
//!   connections*: starting from an ultimate source (thread or device), up the
//!   containment hierarchy, across exactly one sibling connection, and down to
//!   the ultimate destination. Connections may be bound to buses.
//! * **Bindings** — application components bound to execution-platform
//!   components (`Actual_Processor_Binding`, `Actual_Connection_Binding`).
//! * **Modes** — declared and instantiated; the translation itself restricts
//!   to single-mode models, as the paper does (§4: "we do not discuss handling
//!   of modes").
//!
//! ## Pipeline
//!
//! ```text
//! .aadl text ──parse──▶ Package (declarative) ──instantiate──▶ InstanceModel
//!                              ▲                                    │
//!                        builder API                            validate (§4.1)
//! ```
//!
//! ```
//! use aadl::parser::parse_package;
//! use aadl::instance::instantiate;
//!
//! let src = r#"
//! package Tiny
//! public
//!   processor cpu_t
//!   end cpu_t;
//!   thread T
//!     properties
//!       Dispatch_Protocol => Periodic;
//!       Period => 10 ms;
//!       Compute_Execution_Time => 2 ms .. 2 ms;
//!       Compute_Deadline => 10 ms;
//!   end T;
//!   system Top
//!   end Top;
//!   system implementation Top.impl
//!     subcomponents
//!       cpu: processor cpu_t;
//!       t1: thread T;
//!     properties
//!       Scheduling_Protocol => RMS applies to cpu;
//!       Actual_Processor_Binding => reference (cpu) applies to t1;
//!   end Top.impl;
//! end Tiny;
//! "#;
//! let pkg = parse_package(src).unwrap();
//! let model = instantiate(&pkg, "Top.impl").unwrap();
//! assert_eq!(model.threads().count(), 1);
//! ```

pub mod builder;
pub mod check;
pub mod examples;
pub mod instance;
pub mod lexer;
pub mod model;
pub mod parser;
pub mod pretty;
pub mod properties;

pub use check::{validate, ValidationError};
pub use instance::{
    instantiate, AccessInstance, CompId, ComponentInstance, ConnectionInstance, InstanceModel,
};
pub use model::{
    Category, ComponentImpl, ComponentType, ConnKind, Connection, EndpointRef, Feature, FeatureKind,
    Package, PortKind, PropertyAssoc, Subcomponent,
};
pub use parser::{parse_package, ParseError};
pub use properties::{
    ConcurrencyControlProtocol, DispatchProtocol, OverflowHandlingProtocol, PropertyValue,
    SchedulingProtocol, SrcSpan, TimeUnit, TimeVal,
};
