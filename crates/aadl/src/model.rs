//! The declarative AADL model: packages, component types and implementations,
//! features, connections, modes and property associations (§2 of the paper).
//!
//! The declarative model is what the parser produces and the builder API
//! constructs; [`instance`](crate::instance) turns it into the instance tree
//! the translation consumes.

use crate::properties::{PropertyValue, SrcSpan};

/// AADL component categories (the subset the analysis handles; §2 of the
/// paper lists processors, buses, memory, devices on the platform side and
/// threads/systems on the application side).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Category {
    /// Unit of composition; may contain software and platform components.
    System,
    /// Protected address space containing threads.
    Process,
    /// Grouping of threads inside a process.
    ThreadGroup,
    /// Unit of execution with the semantic automaton of Fig. 4.
    Thread,
    /// Shared data component (ultimate destination of access connections).
    Data,
    /// Abstraction of hardware + OS; threads are bound to processors.
    Processor,
    /// Physical interconnect or protocol layer; connections bind to buses.
    Bus,
    /// Memory block.
    Memory,
    /// Device interacting with the environment; may terminate connections.
    Device,
}

impl Category {
    /// Parse a category keyword (case-insensitive).
    pub fn parse(s: &str) -> Option<Category> {
        Some(match s.to_ascii_lowercase().as_str() {
            "system" => Category::System,
            "process" => Category::Process,
            "thread" => Category::Thread,
            "data" => Category::Data,
            "processor" => Category::Processor,
            "bus" => Category::Bus,
            "memory" => Category::Memory,
            "device" => Category::Device,
            _ => return None,
        })
    }

    /// True for execution-platform categories.
    pub fn is_platform(self) -> bool {
        matches!(
            self,
            Category::Processor | Category::Bus | Category::Memory | Category::Device
        )
    }

    /// True for categories that can be the ultimate source/destination of a
    /// semantic port connection (§2: "Ultimate sources and destinations can
    /// be thread or device components").
    pub fn is_connection_terminal(self) -> bool {
        matches!(self, Category::Thread | Category::Device)
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Category::System => "system",
            Category::Process => "process",
            Category::ThreadGroup => "thread group",
            Category::Thread => "thread",
            Category::Data => "data",
            Category::Processor => "processor",
            Category::Bus => "bus",
            Category::Memory => "memory",
            Category::Device => "device",
        })
    }
}

/// Kinds of ports.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum PortKind {
    /// Data port: latest-value semantics, no queuing; periodic receivers
    /// sample at dispatch.
    Data,
    /// Event port: queued; dispatches event-driven threads.
    Event,
    /// Event data port: queued event carrying data.
    EventData,
}

impl PortKind {
    /// True for the queued kinds (event, event data) that get a queue process
    /// in the translation (§4.4).
    pub fn is_queued(self) -> bool {
        matches!(self, PortKind::Event | PortKind::EventData)
    }
}

/// Direction of a port feature.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Direction {
    /// Incoming.
    In,
    /// Outgoing.
    Out,
    /// Both (treated as in and out endpoints).
    InOut,
}

impl Direction {
    /// Can act as a source endpoint.
    pub fn is_out(self) -> bool {
        matches!(self, Direction::Out | Direction::InOut)
    }

    /// Can act as a destination endpoint.
    pub fn is_in(self) -> bool {
        matches!(self, Direction::In | Direction::InOut)
    }
}

/// What a feature is.
#[derive(Clone, PartialEq, Debug)]
pub enum FeatureKind {
    /// A port.
    Port {
        /// Direction.
        dir: Direction,
        /// Data / event / event data.
        kind: PortKind,
    },
    /// Requires access to an external data/bus component.
    RequiresAccess {
        /// The category of the accessed component (data or bus).
        category: Category,
    },
    /// Provides access to an internal data/bus component.
    ProvidesAccess {
        /// The category of the accessed component (data or bus).
        category: Category,
    },
}

/// A feature of a component type.
#[derive(Clone, PartialEq, Debug)]
pub struct Feature {
    /// Feature name.
    pub name: String,
    /// Port / access kind.
    pub kind: FeatureKind,
    /// Properties declared directly on the feature (e.g. `Queue_Size`).
    pub properties: Vec<PropertyAssoc>,
}

/// A component type: externally visible features and properties.
#[derive(Clone, PartialEq, Debug)]
pub struct ComponentType {
    /// Type name.
    pub name: String,
    /// Category.
    pub category: Category,
    /// Features.
    pub features: Vec<Feature>,
    /// Property associations.
    pub properties: Vec<PropertyAssoc>,
}

impl ComponentType {
    /// Find a feature by (case-insensitive) name.
    pub fn feature(&self, name: &str) -> Option<&Feature> {
        self.features
            .iter()
            .find(|f| f.name.eq_ignore_ascii_case(name))
    }
}

/// A subcomponent declaration inside an implementation.
#[derive(Clone, PartialEq, Debug)]
pub struct Subcomponent {
    /// Subcomponent name.
    pub name: String,
    /// Category.
    pub category: Category,
    /// Classifier reference: a type name (`T`) or an implementation name
    /// (`T.impl`). Empty for a classifier-less declaration.
    pub classifier: String,
    /// Modes in which the subcomponent is active (empty = all modes).
    pub in_modes: Vec<String>,
}

/// One endpoint of a syntactic connection.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct EndpointRef {
    /// The subcomponent the feature belongs to; `None` when the endpoint is a
    /// feature of the enclosing component itself.
    pub subcomponent: Option<String>,
    /// The feature name.
    pub feature: String,
}

impl EndpointRef {
    /// `sub.feature` endpoint.
    pub fn sub(sub: &str, feature: &str) -> EndpointRef {
        EndpointRef {
            subcomponent: Some(sub.to_owned()),
            feature: feature.to_owned(),
        }
    }

    /// `feature` endpoint on the enclosing component.
    pub fn own(feature: &str) -> EndpointRef {
        EndpointRef {
            subcomponent: None,
            feature: feature.to_owned(),
        }
    }
}

impl std::fmt::Display for EndpointRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.subcomponent {
            Some(s) if self.feature.is_empty() => write!(f, "{s}"),
            Some(s) => write!(f, "{s}.{}", self.feature),
            None => write!(f, "{}", self.feature),
        }
    }
}

/// The kind of a syntactic connection.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum ConnKind {
    /// A port connection (`port a.x -> b.y`).
    #[default]
    Port,
    /// A data access connection (`data access shared -> t.f`): grants the
    /// destination's thread access to the source data component.
    DataAccess,
    /// A bus access connection.
    BusAccess,
}

/// A syntactic connection declared in an implementation.
#[derive(Clone, PartialEq, Debug)]
pub struct Connection {
    /// Connection name (used in diagnostics and binding `applies to`).
    pub name: String,
    /// Port or access connection.
    pub kind: ConnKind,
    /// Source endpoint (for access connections: the accessed component,
    /// encoded as a subcomponent endpoint with an empty feature name).
    pub src: EndpointRef,
    /// Destination endpoint.
    pub dst: EndpointRef,
    /// Properties (e.g. `Actual_Connection_Binding`, `Urgency`).
    pub properties: Vec<PropertyAssoc>,
    /// Modes in which the connection is active (empty = all modes).
    pub in_modes: Vec<String>,
}

/// A mode declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct Mode {
    /// Mode name.
    pub name: String,
    /// True for the initial mode.
    pub initial: bool,
}

/// A mode transition `src -[ trigger ]-> dst`.
#[derive(Clone, PartialEq, Debug)]
pub struct ModeTransition {
    /// Source mode.
    pub src: String,
    /// The event port whose event triggers the switch.
    pub trigger: EndpointRef,
    /// Destination mode.
    pub dst: String,
}

/// A property association, optionally scoped with `applies to`.
///
/// The source span, when the association was parsed from text, rides along
/// for diagnostics but is excluded from equality: parsed and
/// programmatically built models compare equal.
#[derive(Clone, Debug)]
pub struct PropertyAssoc {
    /// Property name.
    pub name: String,
    /// The value.
    pub value: PropertyValue,
    /// Target paths (each a dotted subcomponent path relative to the scope of
    /// the declaration); empty = applies to the declaring element itself.
    pub applies_to: Vec<Vec<String>>,
    /// Source position of the association (parsed models only).
    pub span: Option<SrcSpan>,
}

impl PartialEq for PropertyAssoc {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.value == other.value
            && self.applies_to == other.applies_to
    }
}

impl PropertyAssoc {
    /// Unscoped association.
    pub fn new(name: &str, value: PropertyValue) -> PropertyAssoc {
        PropertyAssoc {
            name: name.to_owned(),
            value,
            applies_to: Vec::new(),
            span: None,
        }
    }

    /// Scoped association (`applies to path`).
    pub fn applied(name: &str, value: PropertyValue, path: &[&str]) -> PropertyAssoc {
        PropertyAssoc {
            name: name.to_owned(),
            value,
            applies_to: vec![path.iter().map(|s| (*s).to_owned()).collect()],
            span: None,
        }
    }
}

/// A component implementation: internal structure of a type.
#[derive(Clone, PartialEq, Debug)]
pub struct ComponentImpl {
    /// Implementation name (`Type.impl_name`).
    pub name: String,
    /// The implemented type's name.
    pub type_name: String,
    /// Category (must match the type's).
    pub category: Category,
    /// Subcomponents.
    pub subcomponents: Vec<Subcomponent>,
    /// Syntactic connections.
    pub connections: Vec<Connection>,
    /// Mode declarations.
    pub modes: Vec<Mode>,
    /// Mode transitions.
    pub mode_transitions: Vec<ModeTransition>,
    /// Property associations (including `applies to` bindings).
    pub properties: Vec<PropertyAssoc>,
}

impl ComponentImpl {
    /// Find a subcomponent by (case-insensitive) name.
    pub fn subcomponent(&self, name: &str) -> Option<&Subcomponent> {
        self.subcomponents
            .iter()
            .find(|s| s.name.eq_ignore_ascii_case(name))
    }
}

/// A package: the unit the parser produces.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Package {
    /// Package name.
    pub name: String,
    /// Component types.
    pub types: Vec<ComponentType>,
    /// Component implementations.
    pub impls: Vec<ComponentImpl>,
}

impl Package {
    /// Find a component type by (case-insensitive) name.
    pub fn find_type(&self, name: &str) -> Option<&ComponentType> {
        self.types
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// Find an implementation by (case-insensitive) name (`Type.impl`).
    pub fn find_impl(&self, name: &str) -> Option<&ComponentImpl> {
        self.impls
            .iter()
            .find(|i| i.name.eq_ignore_ascii_case(name))
    }

    /// Resolve a classifier reference to `(type, Option<impl>)`.
    pub fn resolve(&self, classifier: &str) -> Option<(&ComponentType, Option<&ComponentImpl>)> {
        if classifier.contains('.') {
            let im = self.find_impl(classifier)?;
            let ty = self.find_type(&im.type_name)?;
            Some((ty, Some(im)))
        } else {
            self.find_type(classifier).map(|t| (t, None))
        }
    }

    /// The default analysis root: the unique system implementation that no
    /// other implementation in the package instantiates as a subcomponent —
    /// the top of the instantiation hierarchy. Errors (no candidate, or
    /// several) ask the caller to name the root explicitly; both `aadlsched`
    /// and `aadlschedd` surface them verbatim as input errors.
    ///
    /// # Examples
    ///
    /// ```
    /// let pkg = aadl::parser::parse_package(
    ///     "package p\npublic\n\
    ///      system s\nend s;\n\
    ///      system implementation s.impl\nend s.impl;\n\
    ///      end p;",
    /// )
    /// .unwrap();
    /// assert_eq!(pkg.default_root().unwrap(), "s.impl");
    /// ```
    pub fn default_root(&self) -> Result<String, String> {
        let referenced: std::collections::HashSet<String> = self
            .impls
            .iter()
            .flat_map(|i| i.subcomponents.iter())
            .map(|s| s.classifier.to_ascii_lowercase())
            .collect();
        let candidates: Vec<&str> = self
            .impls
            .iter()
            .filter(|i| i.category == Category::System)
            .filter(|i| {
                !referenced.contains(&i.name.to_ascii_lowercase())
                    && !referenced.contains(&i.type_name.to_ascii_lowercase())
            })
            .map(|i| i.name.as_str())
            .collect();
        match candidates.as_slice() {
            [one] => Ok(one.to_string()),
            [] => Err(
                "no top-level system implementation found; pass <RootSystem.impl> explicitly"
                    .to_string(),
            ),
            many => Err(format!(
                "ambiguous root — {} top-level system implementations ({}); \
                 pass <RootSystem.impl> explicitly",
                many.len(),
                many.join(", ")
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::{PropertyValue, TimeVal};

    fn tiny_package() -> Package {
        Package {
            name: "P".into(),
            types: vec![
                ComponentType {
                    name: "T".into(),
                    category: Category::Thread,
                    features: vec![Feature {
                        name: "out_p".into(),
                        kind: FeatureKind::Port {
                            dir: Direction::Out,
                            kind: PortKind::Data,
                        },
                        properties: vec![],
                    }],
                    properties: vec![PropertyAssoc::new(
                        "Period",
                        PropertyValue::Time(TimeVal::ms(10)),
                    )],
                },
                ComponentType {
                    name: "Top".into(),
                    category: Category::System,
                    features: vec![],
                    properties: vec![],
                },
            ],
            impls: vec![ComponentImpl {
                name: "Top.impl".into(),
                type_name: "Top".into(),
                category: Category::System,
                subcomponents: vec![Subcomponent {
                    name: "t1".into(),
                    category: Category::Thread,
                    classifier: "T".into(),
                    in_modes: vec![],
                }],
                connections: vec![],
                modes: vec![],
                mode_transitions: vec![],
                properties: vec![],
            }],
        }
    }

    #[test]
    fn lookups_are_case_insensitive() {
        let p = tiny_package();
        assert!(p.find_type("t").is_some());
        assert!(p.find_impl("TOP.IMPL").is_some());
        assert!(p.find_type("T").unwrap().feature("OUT_P").is_some());
        assert!(p.find_impl("Top.impl").unwrap().subcomponent("T1").is_some());
    }

    #[test]
    fn resolve_handles_types_and_impls() {
        let p = tiny_package();
        let (ty, im) = p.resolve("T").unwrap();
        assert_eq!(ty.name, "T");
        assert!(im.is_none());
        let (ty, im) = p.resolve("Top.impl").unwrap();
        assert_eq!(ty.name, "Top");
        assert_eq!(im.unwrap().name, "Top.impl");
        assert!(p.resolve("Nope").is_none());
    }

    #[test]
    fn category_predicates() {
        assert!(Category::Processor.is_platform());
        assert!(!Category::Thread.is_platform());
        assert!(Category::Thread.is_connection_terminal());
        assert!(Category::Device.is_connection_terminal());
        assert!(!Category::System.is_connection_terminal());
        assert_eq!(Category::parse("PROCESSOR"), Some(Category::Processor));
        assert_eq!(Category::parse("widget"), None);
    }

    #[test]
    fn port_and_direction_predicates() {
        assert!(PortKind::Event.is_queued());
        assert!(PortKind::EventData.is_queued());
        assert!(!PortKind::Data.is_queued());
        assert!(Direction::InOut.is_in() && Direction::InOut.is_out());
        assert!(Direction::In.is_in() && !Direction::In.is_out());
    }

    #[test]
    fn endpoint_display() {
        assert_eq!(EndpointRef::sub("hci", "speed").to_string(), "hci.speed");
        assert_eq!(EndpointRef::own("speed").to_string(), "speed");
    }
}
