//! Unparser: render a declarative [`Package`] back to AADL text.
//!
//! The output re-parses to an equal model (round-trip property, tested here
//! and in the crate's `det_prop!` suite), which keeps the parser, the builder
//! and the printer honest with one another.

use std::fmt::Write as _;

use crate::model::{
    Category, ComponentImpl, ComponentType, Direction, Feature, FeatureKind, Package, PortKind,
    PropertyAssoc,
};

/// Render a package to AADL text.
pub fn render_package(pkg: &Package) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "package {}", pkg.name);
    let _ = writeln!(out, "public");
    for ty in &pkg.types {
        render_type(&mut out, ty);
    }
    for imp in &pkg.impls {
        render_impl(&mut out, imp);
    }
    let _ = writeln!(out, "end {};", pkg.name);
    out
}

fn render_type(out: &mut String, ty: &ComponentType) {
    let _ = writeln!(out, "  {} {}", category_kw(ty.category), ty.name);
    if !ty.features.is_empty() {
        let _ = writeln!(out, "    features");
        for f in &ty.features {
            render_feature(out, f);
        }
    }
    if !ty.properties.is_empty() {
        let _ = writeln!(out, "    properties");
        for p in &ty.properties {
            render_prop(out, p, "      ");
        }
    }
    let _ = writeln!(out, "  end {};", ty.name);
}

fn render_feature(out: &mut String, f: &Feature) {
    match &f.kind {
        FeatureKind::Port { dir, kind } => {
            let dir_s = match dir {
                Direction::In => "in",
                Direction::Out => "out",
                Direction::InOut => "in out",
            };
            let kind_s = match kind {
                PortKind::Data => "data",
                PortKind::Event => "event",
                PortKind::EventData => "event data",
            };
            let _ = write!(out, "      {}: {dir_s} {kind_s} port", f.name);
        }
        FeatureKind::RequiresAccess { category } => {
            let _ = write!(out, "      {}: requires {} access", f.name, category_kw(*category));
        }
        FeatureKind::ProvidesAccess { category } => {
            let _ = write!(out, "      {}: provides {} access", f.name, category_kw(*category));
        }
    }
    if !f.properties.is_empty() {
        let _ = write!(out, " {{ ");
        for p in &f.properties {
            let _ = write!(out, "{} => {}; ", p.name, p.value);
        }
        let _ = write!(out, "}}");
    }
    let _ = writeln!(out, ";");
}

fn render_impl(out: &mut String, imp: &ComponentImpl) {
    let _ = writeln!(
        out,
        "  {} implementation {}",
        category_kw(imp.category),
        imp.name
    );
    if !imp.subcomponents.is_empty() {
        let _ = writeln!(out, "    subcomponents");
        for s in &imp.subcomponents {
            let _ = write!(out, "      {}: {}", s.name, category_kw(s.category));
            if !s.classifier.is_empty() {
                let _ = write!(out, " {}", s.classifier);
            }
            if !s.in_modes.is_empty() {
                let _ = write!(out, " in modes ({})", s.in_modes.join(", "));
            }
            let _ = writeln!(out, ";");
        }
    }
    if !imp.connections.is_empty() {
        let _ = writeln!(out, "    connections");
        for c in &imp.connections {
            let kw = match c.kind {
                crate::model::ConnKind::Port => "port",
                crate::model::ConnKind::DataAccess => "data access",
                crate::model::ConnKind::BusAccess => "bus access",
            };
            let _ = write!(out, "      {}: {kw} {} -> {}", c.name, c.src, c.dst);
            if !c.properties.is_empty() {
                let _ = write!(out, " {{ ");
                for p in &c.properties {
                    let _ = write!(out, "{} => {}; ", p.name, p.value);
                }
                let _ = write!(out, "}}");
            }
            if !c.in_modes.is_empty() {
                let _ = write!(out, " in modes ({})", c.in_modes.join(", "));
            }
            let _ = writeln!(out, ";");
        }
    }
    if !imp.modes.is_empty() || !imp.mode_transitions.is_empty() {
        let _ = writeln!(out, "    modes");
        for m in &imp.modes {
            let init = if m.initial { "initial " } else { "" };
            let _ = writeln!(out, "      {}: {init}mode;", m.name);
        }
        for t in &imp.mode_transitions {
            let _ = writeln!(out, "      {} -[ {} ]-> {};", t.src, t.trigger, t.dst);
        }
    }
    if !imp.properties.is_empty() {
        let _ = writeln!(out, "    properties");
        for p in &imp.properties {
            render_prop(out, p, "      ");
        }
    }
    let _ = writeln!(out, "  end {};", imp.name);
}

fn render_prop(out: &mut String, p: &PropertyAssoc, indent: &str) {
    let _ = write!(out, "{indent}{} => {}", p.name, p.value);
    if !p.applies_to.is_empty() {
        let paths: Vec<String> = p.applies_to.iter().map(|path| path.join(".")).collect();
        let _ = write!(out, " applies to {}", paths.join(", "));
    }
    let _ = writeln!(out, ";");
}

fn category_kw(c: Category) -> &'static str {
    match c {
        Category::System => "system",
        Category::Process => "process",
        Category::ThreadGroup => "thread",
        Category::Thread => "thread",
        Category::Data => "data",
        Category::Processor => "processor",
        Category::Bus => "bus",
        Category::Memory => "memory",
        Category::Device => "device",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PackageBuilder;
    use crate::parser::parse_package;
    use crate::properties::{names, PropertyValue, TimeVal};

    #[test]
    fn round_trip_through_text() {
        let pkg = PackageBuilder::new("RT")
            .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "EDF"))
            .bus("net")
            .periodic_thread(
                "T1",
                TimeVal::ms(20),
                (TimeVal::ms(3), TimeVal::ms(5)),
                TimeVal::ms(20),
            )
            .thread("T2", |t| {
                t.in_event_port("go")
                    .feature_prop("Queue_Size", PropertyValue::Int(3))
                    .prop_enum(names::DISPATCH_PROTOCOL, "Sporadic")
                    .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(40)))
                    .prop(
                        names::COMPUTE_EXECUTION_TIME,
                        PropertyValue::TimeRange(TimeVal::ms(2), TimeVal::ms(2)),
                    )
                    .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(30)))
            })
            .thread("T0", |t| {
                t.out_event_port("alarm")
                    .prop_enum(names::DISPATCH_PROTOCOL, "Periodic")
                    .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(40)))
                    .prop(
                        names::COMPUTE_EXECUTION_TIME,
                        PropertyValue::TimeRange(TimeVal::ms(1), TimeVal::ms(1)),
                    )
                    .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(40)))
            })
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("b", Category::Bus, "net")
                    .sub("t0", Category::Thread, "T0")
                    .sub("t1", Category::Thread, "T1")
                    .sub("t2", Category::Thread, "T2")
                    .connect("c1", "t0.alarm", "t2.go")
                    .bind_bus("b")
                    .bind_processor("t0", "cpu")
                    .bind_processor("t1", "cpu")
                    .bind_processor("t2", "cpu")
            })
            .build();
        let text = render_package(&pkg);
        let reparsed = parse_package(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert_eq!(pkg, reparsed, "round trip failed:\n{text}");
    }

    #[test]
    fn renders_modes() {
        let pkg = PackageBuilder::new("M")
            .system("S", |s| s)
            .implementation("S.impl", Category::System, |i| {
                i.mode("nominal", true).mode("degraded", false)
            })
            .build();
        let text = render_package(&pkg);
        assert!(text.contains("nominal: initial mode;"));
        assert!(text.contains("degraded: mode;"));
        let reparsed = parse_package(&text).unwrap();
        assert_eq!(pkg, reparsed);
    }
}
