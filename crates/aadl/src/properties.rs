//! The AADL property system (the subset the analysis consumes).
//!
//! Properties carry the timing and deployment information the translation
//! needs (§4.1 of the paper): every thread must specify `Dispatch_Protocol`,
//! `Compute_Execution_Time` and `Compute_Deadline`; every processor with
//! bound threads must specify `Scheduling_Protocol`; event/event-data ports
//! may specify `Queue_Size`, `Overflow_Handling_Protocol` and `Urgency`;
//! bindings are expressed through `Actual_Processor_Binding` and
//! `Actual_Connection_Binding` reference properties.
//!
//! Values are dynamically typed ([`PropertyValue`]); typed accessors live on
//! [`PropertyMap`]. Time values keep their unit until the translation layer
//! converts them to scheduling quanta.

use std::collections::BTreeMap;
use std::fmt;

/// Standard property names used by the tool chain (case preserved for
/// display; lookups are case-insensitive as AADL requires).
pub mod names {
    /// Thread dispatch protocol: `Periodic`, `Aperiodic`, `Sporadic`, `Background`.
    pub const DISPATCH_PROTOCOL: &str = "Dispatch_Protocol";
    /// Period (periodic threads) or minimum inter-arrival separation (sporadic).
    pub const PERIOD: &str = "Period";
    /// Range of execution times for the compute entrypoint.
    pub const COMPUTE_EXECUTION_TIME: &str = "Compute_Execution_Time";
    /// Deadline of the compute entrypoint, relative to dispatch.
    pub const COMPUTE_DEADLINE: &str = "Compute_Deadline";
    /// Scheduling policy of a processor: `RMS`, `DMS`, `EDF`, `LLF`, `HPF`.
    pub const SCHEDULING_PROTOCOL: &str = "Scheduling_Protocol";
    /// Explicit thread priority (used by the `HPF` policy).
    pub const PRIORITY: &str = "Priority";
    /// Event/event-data port queue capacity (default 1, §4.4).
    pub const QUEUE_SIZE: &str = "Queue_Size";
    /// What happens on queue overflow: `DropNewest`, `DropOldest`, `Error` (§4.4).
    pub const OVERFLOW_HANDLING_PROTOCOL: &str = "Overflow_Handling_Protocol";
    /// Priority of a connection's dequeue communication (§4.3).
    pub const URGENCY: &str = "Urgency";
    /// Thread → processor binding (reference value).
    pub const ACTUAL_PROCESSOR_BINDING: &str = "Actual_Processor_Binding";
    /// Connection → bus binding (reference value).
    pub const ACTUAL_CONNECTION_BINDING: &str = "Actual_Connection_Binding";
    /// Extension: the size of one scheduling quantum for the discrete-time
    /// abstraction of §4.1 (defaults to the GCD of all timing properties).
    pub const SCHEDULING_QUANTUM: &str = "Scheduling_Quantum";
    /// Concurrency-control protocol of a shared `data` component:
    /// `None_Specified`, `Priority_Inheritance`, `Priority_Ceiling` (§7 of
    /// the paper names these as the extension point for shared data).
    pub const CONCURRENCY_CONTROL_PROTOCOL: &str = "Concurrency_Control_Protocol";
    /// Extension: the portion of a thread's compute time spent inside the
    /// critical section of a shared data component. Placed on a data access
    /// connection (per accessor) or on the data component (one length for
    /// all accessors).
    pub const CRITICAL_SECTION_EXECUTION_TIME: &str = "Critical_Section_Execution_Time";
}

/// AADL time units.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum TimeUnit {
    /// Picoseconds.
    Ps,
    /// Nanoseconds.
    Ns,
    /// Microseconds.
    Us,
    /// Milliseconds.
    Ms,
    /// Seconds.
    Sec,
    /// Minutes.
    Min,
    /// Hours.
    Hr,
}

impl TimeUnit {
    /// Parse a unit name (case-insensitive).
    pub fn parse(s: &str) -> Option<TimeUnit> {
        Some(match s.to_ascii_lowercase().as_str() {
            "ps" => TimeUnit::Ps,
            "ns" => TimeUnit::Ns,
            "us" => TimeUnit::Us,
            "ms" => TimeUnit::Ms,
            "sec" | "s" => TimeUnit::Sec,
            "min" => TimeUnit::Min,
            "hr" | "h" => TimeUnit::Hr,
            _ => return None,
        })
    }

    /// Factor to picoseconds (the finest AADL unit).
    pub fn to_ps(self) -> i64 {
        match self {
            TimeUnit::Ps => 1,
            TimeUnit::Ns => 1_000,
            TimeUnit::Us => 1_000_000,
            TimeUnit::Ms => 1_000_000_000,
            TimeUnit::Sec => 1_000_000_000_000,
            TimeUnit::Min => 60 * 1_000_000_000_000,
            TimeUnit::Hr => 3600 * 1_000_000_000_000,
        }
    }
}

impl fmt::Display for TimeUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TimeUnit::Ps => "ps",
            TimeUnit::Ns => "ns",
            TimeUnit::Us => "us",
            TimeUnit::Ms => "ms",
            TimeUnit::Sec => "sec",
            TimeUnit::Min => "min",
            TimeUnit::Hr => "hr",
        })
    }
}

/// A time value with its unit.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct TimeVal {
    /// Magnitude in `unit`s.
    pub value: i64,
    /// The unit.
    pub unit: TimeUnit,
}

impl TimeVal {
    /// Construct.
    pub fn new(value: i64, unit: TimeUnit) -> TimeVal {
        TimeVal { value, unit }
    }

    /// Milliseconds shorthand.
    pub fn ms(value: i64) -> TimeVal {
        TimeVal::new(value, TimeUnit::Ms)
    }

    /// Convert to picoseconds.
    pub fn as_ps(self) -> i64 {
        self.value.saturating_mul(self.unit.to_ps())
    }
}

impl PartialOrd for TimeVal {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimeVal {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ps().cmp(&other.as_ps())
    }
}

impl fmt::Display for TimeVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.value, self.unit)
    }
}

/// A dynamically typed AADL property value.
#[derive(Clone, PartialEq, Debug)]
pub enum PropertyValue {
    /// Integer (unitless).
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// String literal.
    Str(String),
    /// Enumeration literal (e.g. `Periodic`).
    Enum(String),
    /// Time with unit.
    Time(TimeVal),
    /// Time range (`min .. max`).
    TimeRange(TimeVal, TimeVal),
    /// Integer range.
    IntRange(i64, i64),
    /// Reference to a component, as a path of subcomponent names.
    Reference(Vec<String>),
    /// List of values.
    List(Vec<PropertyValue>),
}

impl PropertyValue {
    /// As integer, when the value is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            PropertyValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// As time, when the value is a `Time`.
    pub fn as_time(&self) -> Option<TimeVal> {
        match self {
            PropertyValue::Time(t) => Some(*t),
            _ => None,
        }
    }

    /// As a time range; a single `Time` value counts as a point range.
    pub fn as_time_range(&self) -> Option<(TimeVal, TimeVal)> {
        match self {
            PropertyValue::TimeRange(a, b) => Some((*a, *b)),
            PropertyValue::Time(t) => Some((*t, *t)),
            _ => None,
        }
    }

    /// As enumeration literal.
    pub fn as_enum(&self) -> Option<&str> {
        match self {
            PropertyValue::Enum(s) => Some(s),
            _ => None,
        }
    }

    /// As a reference path. A singleton `List` of one reference also counts
    /// (AADL binding properties are list-valued).
    pub fn as_reference(&self) -> Option<&[String]> {
        match self {
            PropertyValue::Reference(p) => Some(p),
            PropertyValue::List(l) if l.len() == 1 => l[0].as_reference(),
            _ => None,
        }
    }

    /// All reference paths contained in this value (for list-valued bindings).
    pub fn references(&self) -> Vec<&[String]> {
        match self {
            PropertyValue::Reference(p) => vec![p.as_slice()],
            PropertyValue::List(l) => l.iter().flat_map(|v| v.references()).collect(),
            _ => Vec::new(),
        }
    }
}

impl fmt::Display for PropertyValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyValue::Int(v) => write!(f, "{v}"),
            PropertyValue::Bool(b) => write!(f, "{b}"),
            PropertyValue::Str(s) => write!(f, "{s:?}"),
            PropertyValue::Enum(e) => write!(f, "{e}"),
            PropertyValue::Time(t) => write!(f, "{t}"),
            PropertyValue::TimeRange(a, b) => write!(f, "{a} .. {b}"),
            PropertyValue::IntRange(a, b) => write!(f, "{a} .. {b}"),
            PropertyValue::Reference(p) => write!(f, "reference ({})", p.join(".")),
            PropertyValue::List(l) => {
                write!(f, "(")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Thread dispatch protocols (§2 of the paper: "Threads are classified into
/// periodic, aperiodic, sporadic, and background threads").
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum DispatchProtocol {
    /// Dispatched by a timer every `Period`; ignores external events.
    Periodic,
    /// Dispatched by an arriving event, no arrival constraint.
    Aperiodic,
    /// Dispatched by an arriving event with minimum separation `Period`.
    Sporadic,
    /// Dispatched once, immediately after initialization; no deadline.
    Background,
}

impl DispatchProtocol {
    /// Parse an enumeration literal (case-insensitive).
    pub fn parse(s: &str) -> Option<DispatchProtocol> {
        Some(match s.to_ascii_lowercase().as_str() {
            "periodic" => DispatchProtocol::Periodic,
            "aperiodic" => DispatchProtocol::Aperiodic,
            "sporadic" => DispatchProtocol::Sporadic,
            "background" => DispatchProtocol::Background,
            _ => return None,
        })
    }

    /// True for the protocols dispatched by incoming events.
    pub fn is_event_driven(self) -> bool {
        matches!(
            self,
            DispatchProtocol::Aperiodic | DispatchProtocol::Sporadic
        )
    }
}

impl fmt::Display for DispatchProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DispatchProtocol::Periodic => "Periodic",
            DispatchProtocol::Aperiodic => "Aperiodic",
            DispatchProtocol::Sporadic => "Sporadic",
            DispatchProtocol::Background => "Background",
        })
    }
}

/// Processor scheduling protocols encodable as ACSR priority assignments
/// (§5 of the paper).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum SchedulingProtocol {
    /// Rate-monotonic: static priorities by ascending period.
    Rms,
    /// Deadline-monotonic: static priorities by ascending deadline.
    Dms,
    /// Fixed priorities from the `Priority` thread property.
    Hpf,
    /// Earliest-deadline-first via the parametric priority `dmax - (d - t)`.
    Edf,
    /// Least-laxity-first via the parametric priority `Lmax - laxity(e, t)`.
    Llf,
}

impl SchedulingProtocol {
    /// Parse an enumeration literal (several OSATE spellings accepted).
    pub fn parse(s: &str) -> Option<SchedulingProtocol> {
        Some(match s.to_ascii_lowercase().as_str() {
            "rms" | "rate_monotonic" | "rate_monotonic_protocol" => SchedulingProtocol::Rms,
            "dms" | "deadline_monotonic" | "deadline_monotonic_protocol" => {
                SchedulingProtocol::Dms
            }
            "hpf" | "fixed_priority" | "posix_1003_highest_priority_first_protocol" => {
                SchedulingProtocol::Hpf
            }
            "edf" | "earliest_deadline_first" | "earliest_deadline_first_protocol" => {
                SchedulingProtocol::Edf
            }
            "llf" | "least_laxity_first" | "least_laxity_first_protocol" => {
                SchedulingProtocol::Llf
            }
            _ => return None,
        })
    }

    /// True for fixed-priority (static) policies.
    pub fn is_static(self) -> bool {
        matches!(
            self,
            SchedulingProtocol::Rms | SchedulingProtocol::Dms | SchedulingProtocol::Hpf
        )
    }
}

impl fmt::Display for SchedulingProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SchedulingProtocol::Rms => "RMS",
            SchedulingProtocol::Dms => "DMS",
            SchedulingProtocol::Hpf => "HPF",
            SchedulingProtocol::Edf => "EDF",
            SchedulingProtocol::Llf => "LLF",
        })
    }
}

/// Behaviour of a full event queue (§4.4 of the paper).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum OverflowHandlingProtocol {
    /// Quietly drop the incoming event (self-loop in the queue process).
    #[default]
    DropNewest,
    /// Drop the oldest queued event. In the counter abstraction of §4.4 the
    /// queue only tracks the number of pending events, so this behaves like
    /// `DropNewest` for analysis purposes.
    DropOldest,
    /// Raise an error: the queue process moves to an error state (a deadlock
    /// distinguishable in diagnostics).
    Error,
}

impl OverflowHandlingProtocol {
    /// Parse an enumeration literal (case-insensitive).
    pub fn parse(s: &str) -> Option<OverflowHandlingProtocol> {
        Some(match s.to_ascii_lowercase().as_str() {
            "dropnewest" | "drop_newest" => OverflowHandlingProtocol::DropNewest,
            "dropoldest" | "drop_oldest" => OverflowHandlingProtocol::DropOldest,
            "error" => OverflowHandlingProtocol::Error,
            _ => return None,
        })
    }
}

impl fmt::Display for OverflowHandlingProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OverflowHandlingProtocol::DropNewest => "DropNewest",
            OverflowHandlingProtocol::DropOldest => "DropOldest",
            OverflowHandlingProtocol::Error => "Error",
        })
    }
}

/// Concurrency-control protocol of a shared `data` component (§7 of the
/// paper: the extension point for shared-data semantics). Governs how the
/// holder of the data's critical section is prioritized while lower- and
/// higher-priority accessors contend for it.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum ConcurrencyControlProtocol {
    /// No protocol: the holder keeps its own priority inside the critical
    /// section, so classic priority inversion is possible.
    #[default]
    NoneSpecified,
    /// Priority inheritance: the holder is elevated to the highest priority
    /// among the accessors it is currently blocking.
    PriorityInheritance,
    /// Priority ceiling (immediate ceiling variant): the holder runs at the
    /// precomputed ceiling — the maximum static priority over all accessors.
    PriorityCeiling,
}

impl ConcurrencyControlProtocol {
    /// Parse an enumeration literal (case-insensitive).
    pub fn parse(s: &str) -> Option<ConcurrencyControlProtocol> {
        Some(match s.to_ascii_lowercase().as_str() {
            "none_specified" | "nonespecified" | "none" => {
                ConcurrencyControlProtocol::NoneSpecified
            }
            "priority_inheritance" | "priorityinheritance" | "pip" => {
                ConcurrencyControlProtocol::PriorityInheritance
            }
            "priority_ceiling" | "priorityceiling" | "pcp" => {
                ConcurrencyControlProtocol::PriorityCeiling
            }
            _ => return None,
        })
    }
}

impl fmt::Display for ConcurrencyControlProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConcurrencyControlProtocol::NoneSpecified => "None_Specified",
            ConcurrencyControlProtocol::PriorityInheritance => "Priority_Inheritance",
            ConcurrencyControlProtocol::PriorityCeiling => "Priority_Ceiling",
        })
    }
}

/// A source position (1-based line and column) of a property association in
/// the `.aadl` text it was parsed from. Builder-constructed models carry no
/// spans; equality of models deliberately ignores them.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct SrcSpan {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for SrcSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A case-insensitive property name → value map with typed accessors.
///
/// Source spans, when known, are kept in a side table ([`PropertyMap::span_of`])
/// that does not participate in equality: a parsed model and the same model
/// rebuilt programmatically compare equal.
#[derive(Clone, Debug, Default)]
pub struct PropertyMap {
    entries: BTreeMap<String, PropertyValue>,
    spans: BTreeMap<String, SrcSpan>,
}

impl PartialEq for PropertyMap {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl PropertyMap {
    /// Empty map.
    pub fn new() -> PropertyMap {
        PropertyMap::default()
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    /// Insert (or overwrite) a property.
    pub fn set(&mut self, name: &str, value: PropertyValue) {
        self.entries.insert(Self::key(name), value);
    }

    /// Insert (or overwrite) a property, recording the source span it came
    /// from when one is known.
    pub fn set_spanned(&mut self, name: &str, value: PropertyValue, span: Option<SrcSpan>) {
        let key = Self::key(name);
        match span {
            Some(s) => {
                self.spans.insert(key.clone(), s);
            }
            None => {
                self.spans.remove(&key);
            }
        }
        self.entries.insert(key, value);
    }

    /// The source span of a property, when it was parsed from text.
    pub fn span_of(&self, name: &str) -> Option<SrcSpan> {
        self.spans.get(&Self::key(name)).copied()
    }

    /// Look up a property.
    pub fn get(&self, name: &str) -> Option<&PropertyValue> {
        self.entries.get(&Self::key(name))
    }

    /// True when the property is present.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(&Self::key(name))
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate (lower-cased name, value).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &PropertyValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Typed: the thread's dispatch protocol.
    pub fn dispatch_protocol(&self) -> Option<DispatchProtocol> {
        self.get(names::DISPATCH_PROTOCOL)?
            .as_enum()
            .and_then(DispatchProtocol::parse)
    }

    /// Typed: the processor's scheduling protocol.
    pub fn scheduling_protocol(&self) -> Option<SchedulingProtocol> {
        self.get(names::SCHEDULING_PROTOCOL)?
            .as_enum()
            .and_then(SchedulingProtocol::parse)
    }

    /// Typed: the period / minimum separation.
    pub fn period(&self) -> Option<TimeVal> {
        self.get(names::PERIOD)?.as_time()
    }

    /// Typed: the `(min, max)` compute execution time.
    pub fn compute_execution_time(&self) -> Option<(TimeVal, TimeVal)> {
        self.get(names::COMPUTE_EXECUTION_TIME)?.as_time_range()
    }

    /// Typed: the compute deadline.
    pub fn compute_deadline(&self) -> Option<TimeVal> {
        self.get(names::COMPUTE_DEADLINE)?.as_time()
    }

    /// Typed: explicit priority.
    pub fn priority(&self) -> Option<i64> {
        self.get(names::PRIORITY)?.as_int()
    }

    /// Typed: queue size (§4.4: "Queue size of 1 is assumed if the property
    /// is not specified").
    pub fn queue_size(&self) -> i64 {
        self.get(names::QUEUE_SIZE)
            .and_then(PropertyValue::as_int)
            .unwrap_or(1)
    }

    /// Typed: overflow handling protocol (defaults to `DropNewest`).
    pub fn overflow_handling(&self) -> OverflowHandlingProtocol {
        self.get(names::OVERFLOW_HANDLING_PROTOCOL)
            .and_then(|v| v.as_enum())
            .and_then(OverflowHandlingProtocol::parse)
            .unwrap_or_default()
    }

    /// Typed: connection urgency (defaults to 1 — communication must still
    /// preempt idling).
    pub fn urgency(&self) -> i64 {
        self.get(names::URGENCY)
            .and_then(PropertyValue::as_int)
            .unwrap_or(1)
    }

    /// Typed: the concurrency-control protocol of a shared data component
    /// (defaults to [`ConcurrencyControlProtocol::NoneSpecified`]).
    pub fn concurrency_control(&self) -> ConcurrencyControlProtocol {
        self.get(names::CONCURRENCY_CONTROL_PROTOCOL)
            .and_then(|v| v.as_enum())
            .and_then(ConcurrencyControlProtocol::parse)
            .unwrap_or_default()
    }

    /// Typed: the critical-section execution time (on a data access
    /// connection or a data component).
    pub fn critical_section_time(&self) -> Option<TimeVal> {
        self.get(names::CRITICAL_SECTION_EXECUTION_TIME)?.as_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversion_and_ordering() {
        assert_eq!(TimeVal::ms(1).as_ps(), 1_000_000_000);
        assert_eq!(TimeVal::new(1, TimeUnit::Sec).as_ps(), TimeVal::ms(1000).as_ps());
        assert!(TimeVal::new(999, TimeUnit::Us) < TimeVal::ms(1));
        assert_eq!(TimeVal::new(1000, TimeUnit::Us), TimeVal::new(1000, TimeUnit::Us));
    }

    #[test]
    fn unit_parsing_is_case_insensitive() {
        assert_eq!(TimeUnit::parse("Ms"), Some(TimeUnit::Ms));
        assert_eq!(TimeUnit::parse("SEC"), Some(TimeUnit::Sec));
        assert_eq!(TimeUnit::parse("fortnight"), None);
    }

    #[test]
    fn property_map_is_case_insensitive() {
        let mut m = PropertyMap::new();
        m.set("Dispatch_Protocol", PropertyValue::Enum("Periodic".into()));
        assert!(m.contains("dispatch_protocol"));
        assert_eq!(m.dispatch_protocol(), Some(DispatchProtocol::Periodic));
    }

    #[test]
    fn typed_accessors() {
        let mut m = PropertyMap::new();
        m.set(names::PERIOD, PropertyValue::Time(TimeVal::ms(50)));
        m.set(
            names::COMPUTE_EXECUTION_TIME,
            PropertyValue::TimeRange(TimeVal::ms(5), TimeVal::ms(10)),
        );
        m.set(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(50)));
        m.set(names::PRIORITY, PropertyValue::Int(7));
        assert_eq!(m.period(), Some(TimeVal::ms(50)));
        assert_eq!(
            m.compute_execution_time(),
            Some((TimeVal::ms(5), TimeVal::ms(10)))
        );
        assert_eq!(m.compute_deadline(), Some(TimeVal::ms(50)));
        assert_eq!(m.priority(), Some(7));
    }

    #[test]
    fn point_execution_time_counts_as_range() {
        let mut m = PropertyMap::new();
        m.set(
            names::COMPUTE_EXECUTION_TIME,
            PropertyValue::Time(TimeVal::ms(3)),
        );
        assert_eq!(
            m.compute_execution_time(),
            Some((TimeVal::ms(3), TimeVal::ms(3)))
        );
    }

    #[test]
    fn queue_defaults_match_the_paper() {
        let m = PropertyMap::new();
        assert_eq!(m.queue_size(), 1); // §4.4
        assert_eq!(m.overflow_handling(), OverflowHandlingProtocol::DropNewest);
        assert_eq!(m.urgency(), 1);
    }

    #[test]
    fn protocols_parse_common_spellings() {
        assert_eq!(
            SchedulingProtocol::parse("RATE_MONOTONIC_PROTOCOL"),
            Some(SchedulingProtocol::Rms)
        );
        assert_eq!(SchedulingProtocol::parse("edf"), Some(SchedulingProtocol::Edf));
        assert!(SchedulingProtocol::parse("RMS").unwrap().is_static());
        assert!(!SchedulingProtocol::parse("LLF").unwrap().is_static());
        assert_eq!(
            DispatchProtocol::parse("Sporadic"),
            Some(DispatchProtocol::Sporadic)
        );
        assert!(DispatchProtocol::Sporadic.is_event_driven());
        assert!(!DispatchProtocol::Periodic.is_event_driven());
        assert_eq!(
            OverflowHandlingProtocol::parse("error"),
            Some(OverflowHandlingProtocol::Error)
        );
    }

    #[test]
    fn concurrency_control_parses_and_defaults() {
        assert_eq!(
            ConcurrencyControlProtocol::parse("Priority_Ceiling"),
            Some(ConcurrencyControlProtocol::PriorityCeiling)
        );
        assert_eq!(
            ConcurrencyControlProtocol::parse("priority_inheritance"),
            Some(ConcurrencyControlProtocol::PriorityInheritance)
        );
        assert_eq!(
            ConcurrencyControlProtocol::parse("None_Specified"),
            Some(ConcurrencyControlProtocol::NoneSpecified)
        );
        assert_eq!(ConcurrencyControlProtocol::parse("mutex"), None);
        let mut m = PropertyMap::new();
        assert_eq!(
            m.concurrency_control(),
            ConcurrencyControlProtocol::NoneSpecified
        );
        m.set(
            names::CONCURRENCY_CONTROL_PROTOCOL,
            PropertyValue::Enum("Priority_Ceiling".into()),
        );
        assert_eq!(
            m.concurrency_control(),
            ConcurrencyControlProtocol::PriorityCeiling
        );
        m.set(
            names::CRITICAL_SECTION_EXECUTION_TIME,
            PropertyValue::Time(TimeVal::ms(2)),
        );
        assert_eq!(m.critical_section_time(), Some(TimeVal::ms(2)));
    }

    #[test]
    fn spans_are_kept_aside_and_ignored_by_equality() {
        let mut with_span = PropertyMap::new();
        with_span.set_spanned(
            names::PERIOD,
            PropertyValue::Time(TimeVal::ms(10)),
            Some(SrcSpan { line: 7, col: 3 }),
        );
        let mut without = PropertyMap::new();
        without.set(names::PERIOD, PropertyValue::Time(TimeVal::ms(10)));
        assert_eq!(with_span, without);
        assert_eq!(with_span.span_of("period"), Some(SrcSpan { line: 7, col: 3 }));
        assert_eq!(without.span_of(names::PERIOD), None);
        assert_eq!(SrcSpan { line: 7, col: 3 }.to_string(), "7:3");
    }

    #[test]
    fn references_flatten_from_lists() {
        let v = PropertyValue::List(vec![
            PropertyValue::Reference(vec!["cpu1".into()]),
            PropertyValue::Reference(vec!["bus".into(), "b0".into()]),
        ]);
        let refs = v.references();
        assert_eq!(refs.len(), 2);
        assert_eq!(refs[1], &["bus".to_string(), "b0".to_string()][..]);
        assert!(v.as_reference().is_none()); // two entries: ambiguous
        let single = PropertyValue::List(vec![PropertyValue::Reference(vec!["cpu".into()])]);
        assert_eq!(single.as_reference().unwrap(), &["cpu".to_string()][..]);
    }

    #[test]
    fn display_round_trip_style() {
        assert_eq!(TimeVal::ms(50).to_string(), "50 ms");
        assert_eq!(
            PropertyValue::TimeRange(TimeVal::ms(5), TimeVal::ms(10)).to_string(),
            "5 ms .. 10 ms"
        );
        assert_eq!(
            PropertyValue::Reference(vec!["hci".into(), "cpu".into()]).to_string(),
            "reference (hci.cpu)"
        );
    }
}
