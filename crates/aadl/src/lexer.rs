//! Tokenizer for the AADL textual subset.
//!
//! AADL is case-insensitive for keywords; identifiers keep their spelling.
//! Comments run from `--` to end of line. Tokens carry line/column spans for
//! error reporting.

use std::fmt;

/// A token kind.
#[derive(Clone, PartialEq, Debug)]
pub enum Tok {
    /// Identifier or keyword (original spelling preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal (contents, unescaped).
    Str(String),
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `->`
    Arrow,
    /// `=>`
    FatArrow,
    /// `-[`
    TransArrowOpen,
    /// `]->`
    TransArrowClose,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(v) => write!(f, "integer `{v}`"),
            Tok::Str(s) => write!(f, "string {s:?}"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::DotDot => write!(f, "`..`"),
            Tok::Arrow => write!(f, "`->`"),
            Tok::FatArrow => write!(f, "`=>`"),
            Tok::TransArrowOpen => write!(f, "`-[`"),
            Tok::TransArrowClose => write!(f, "`]->`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position (1-based line/column).
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Line (1-based).
    pub line: u32,
    /// Column (1-based).
    pub col: u32,
}

/// A lexing error.
#[derive(Clone, PartialEq, Debug)]
pub struct LexError {
    /// Offending character.
    pub ch: char,
    /// Line (1-based).
    pub line: u32,
    /// Column (1-based).
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unexpected character {:?} at line {}, column {}",
            self.ch, self.line, self.col
        )
    }
}

impl std::error::Error for LexError {}

/// Tokenize `src`, appending a final [`Tok::Eof`].
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! push {
        ($tok:expr, $l:expr, $c:expr) => {
            out.push(Token {
                tok: $tok,
                line: $l,
                col: $c,
            })
        };
    }

    while let Some(&c) = chars.peek() {
        let (tl, tc) = (line, col);
        match c {
            '\n' => {
                chars.next();
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                chars.next();
                col += 1;
            }
            '-' => {
                chars.next();
                col += 1;
                match chars.peek() {
                    Some('-') => {
                        // comment to end of line
                        for c2 in chars.by_ref() {
                            if c2 == '\n' {
                                line += 1;
                                col = 1;
                                break;
                            }
                        }
                    }
                    Some('>') => {
                        chars.next();
                        col += 1;
                        push!(Tok::Arrow, tl, tc);
                    }
                    Some('[') => {
                        chars.next();
                        col += 1;
                        push!(Tok::TransArrowOpen, tl, tc);
                    }
                    other => {
                        return Err(LexError {
                            ch: other.copied().unwrap_or('-'),
                            line,
                            col,
                        })
                    }
                }
            }
            ']' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'-') {
                    chars.next();
                    col += 1;
                    if chars.peek() == Some(&'>') {
                        chars.next();
                        col += 1;
                        push!(Tok::TransArrowClose, tl, tc);
                    } else {
                        return Err(LexError {
                            ch: chars.peek().copied().unwrap_or(']'),
                            line,
                            col,
                        });
                    }
                } else {
                    return Err(LexError { ch: ']', line, col });
                }
            }
            '=' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'>') {
                    chars.next();
                    col += 1;
                    push!(Tok::FatArrow, tl, tc);
                } else {
                    return Err(LexError { ch: '=', line, col });
                }
            }
            '.' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'.') {
                    chars.next();
                    col += 1;
                    push!(Tok::DotDot, tl, tc);
                } else {
                    push!(Tok::Dot, tl, tc);
                }
            }
            ':' => {
                chars.next();
                col += 1;
                push!(Tok::Colon, tl, tc);
            }
            ';' => {
                chars.next();
                col += 1;
                push!(Tok::Semi, tl, tc);
            }
            ',' => {
                chars.next();
                col += 1;
                push!(Tok::Comma, tl, tc);
            }
            '(' => {
                chars.next();
                col += 1;
                push!(Tok::LParen, tl, tc);
            }
            ')' => {
                chars.next();
                col += 1;
                push!(Tok::RParen, tl, tc);
            }
            '{' => {
                chars.next();
                col += 1;
                push!(Tok::LBrace, tl, tc);
            }
            '}' => {
                chars.next();
                col += 1;
                push!(Tok::RBrace, tl, tc);
            }
            '"' => {
                chars.next();
                col += 1;
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => {
                            col += 1;
                            break;
                        }
                        Some('\n') => {
                            line += 1;
                            col = 1;
                            s.push('\n');
                        }
                        Some(c2) => {
                            col += 1;
                            s.push(c2);
                        }
                        None => return Err(LexError { ch: '"', line, col }),
                    }
                }
                push!(Tok::Str(s), tl, tc);
            }
            c if c.is_ascii_digit() => {
                let mut v: i64 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(dv) = d.to_digit(10) {
                        v = v.saturating_mul(10).saturating_add(dv as i64);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                push!(Tok::Int(v), tl, tc);
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&a) = chars.peek() {
                    if a.is_alphanumeric() || a == '_' {
                        s.push(a);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                push!(Tok::Ident(s), tl, tc);
            }
            other => {
                return Err(LexError {
                    ch: other,
                    line,
                    col,
                })
            }
        }
    }
    push!(Tok::Eof, line, col);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        let ts = kinds("t1: thread T { Period => 50 ms; };");
        assert_eq!(
            ts,
            vec![
                Tok::Ident("t1".into()),
                Tok::Colon,
                Tok::Ident("thread".into()),
                Tok::Ident("T".into()),
                Tok::LBrace,
                Tok::Ident("Period".into()),
                Tok::FatArrow,
                Tok::Int(50),
                Tok::Ident("ms".into()),
                Tok::Semi,
                Tok::RBrace,
                Tok::Semi,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn arrows_and_ranges() {
        assert_eq!(
            kinds("a.b -> c 5 ms .. 10 ms"),
            vec![
                Tok::Ident("a".into()),
                Tok::Dot,
                Tok::Ident("b".into()),
                Tok::Arrow,
                Tok::Ident("c".into()),
                Tok::Int(5),
                Tok::Ident("ms".into()),
                Tok::DotDot,
                Tok::Int(10),
                Tok::Ident("ms".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let ts = kinds("a -- this is a comment -> => ..\nb");
        assert_eq!(
            ts,
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn mode_transition_arrows() {
        assert_eq!(
            kinds("m1 -[ p ]-> m2"),
            vec![
                Tok::Ident("m1".into()),
                Tok::TransArrowOpen,
                Tok::Ident("p".into()),
                Tok::TransArrowClose,
                Tok::Ident("m2".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn strings_and_positions() {
        let ts = lex("x\n  \"hello world\"").unwrap();
        assert_eq!(ts[1].tok, Tok::Str("hello world".into()));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }

    #[test]
    fn lex_error_reports_position() {
        let err = lex("abc\n  @").unwrap_err();
        assert_eq!(err.ch, '@');
        assert_eq!((err.line, err.col), (2, 3));
    }

    #[test]
    fn bare_equals_is_an_error() {
        assert!(lex("a = b").is_err());
    }
}
