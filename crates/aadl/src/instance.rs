//! Instantiation: from the declarative model to the bound instance model.
//!
//! The translation of the paper "applies to systems that are completely
//! instantiated and bound" (§4.1). This module builds that instance model:
//!
//! 1. **Component tree** — the root implementation is expanded recursively;
//!    each instance carries its merged property map (type properties, then
//!    implementation properties, then `applies to` associations from enclosing
//!    scopes, most specific last).
//! 2. **Semantic connections** (§2) — starting from each *ultimate source*
//!    (an out port of a thread or device), syntactic connections are followed
//!    up the containment hierarchy, across sibling connections, and down to
//!    every reachable *ultimate destination* (an in port of a thread or
//!    device). Fan-out yields one semantic connection per destination. Each
//!    semantic connection merges the properties of its syntactic segments and
//!    of the destination port (whose `Queue_Size` governs the queue process,
//!    §4.4), and resolves `Actual_Connection_Binding` references to bus
//!    instances.
//! 3. **Bindings** — `Actual_Processor_Binding` references are resolved
//!    relative to their declaration scope and rewritten to absolute instance
//!    paths, so `InstanceModel::bound_processor` is a simple lookup.

use std::collections::HashMap;
use std::fmt;

use crate::model::{
    Category, ComponentImpl, Connection, EndpointRef, FeatureKind, Mode, Package, PortKind,
    PropertyAssoc,
};
use crate::properties::{names, PropertyMap, PropertyValue};

/// Identifier of a component instance within an [`InstanceModel`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CompId(pub u32);

impl CompId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An instantiated feature.
#[derive(Clone, Debug)]
pub struct FeatureInstance {
    /// Feature name.
    pub name: String,
    /// Port/access kind.
    pub kind: FeatureKind,
    /// Properties declared on the feature.
    pub properties: PropertyMap,
}

/// An instantiated component.
#[derive(Clone, Debug)]
pub struct ComponentInstance {
    /// This instance's id.
    pub id: CompId,
    /// Parent instance (`None` for the root).
    pub parent: Option<CompId>,
    /// Subcomponent name (root: the implementation name).
    pub name: String,
    /// Dotted path below the root (root: empty string).
    pub path: String,
    /// Category.
    pub category: Category,
    /// The classifier this instance was created from.
    pub classifier: String,
    /// Instantiated features.
    pub features: Vec<FeatureInstance>,
    /// Merged properties.
    pub properties: PropertyMap,
    /// Children.
    pub children: Vec<CompId>,
    /// Mode declarations of this instance's implementation.
    pub modes: Vec<Mode>,
    /// Mode transitions of this instance's implementation.
    pub mode_transitions: Vec<crate::model::ModeTransition>,
    /// Modes (of the *parent*'s implementation) in which this subcomponent
    /// is active; empty = active in all modes.
    pub in_modes: Vec<String>,
}

impl ComponentInstance {
    /// Find a feature index by (case-insensitive) name.
    pub fn feature_index(&self, name: &str) -> Option<usize> {
        self.features
            .iter()
            .position(|f| f.name.eq_ignore_ascii_case(name))
    }

    /// Display path (root shows its own name).
    pub fn display_path(&self) -> &str {
        if self.path.is_empty() {
            &self.name
        } else {
            &self.path
        }
    }
}

/// One semantic connection: ultimate source to ultimate destination.
#[derive(Clone, Debug)]
pub struct ConnectionInstance {
    /// Name: the syntactic connection names joined with `/`.
    pub name: String,
    /// Ultimate source `(component, feature index)`.
    pub src: (CompId, usize),
    /// Ultimate destination `(component, feature index)`.
    pub dst: (CompId, usize),
    /// The kind of the destination port (determines queueing).
    pub kind: PortKind,
    /// Merged properties: segment connection properties, then the destination
    /// port's properties (most specific last).
    pub properties: PropertyMap,
    /// Buses the connection is bound to.
    pub buses: Vec<CompId>,
}

/// A resolved data access connection: the thread may use the shared data
/// component (one scheduling quantum at a time, §4.1), or — when a
/// critical-section length is declared — under a concurrency-control
/// protocol (the paper's §7 extension).
#[derive(Clone, Debug, PartialEq)]
pub struct AccessInstance {
    /// The accessing thread.
    pub thread: CompId,
    /// The shared data component.
    pub data: CompId,
    /// The syntactic connection's name.
    pub name: String,
    /// Properties declared on the access connection (e.g.
    /// `Critical_Section_Execution_Time`).
    pub properties: PropertyMap,
}

/// The fully instantiated and bound model.
#[derive(Clone, Debug)]
pub struct InstanceModel {
    components: Vec<ComponentInstance>,
    /// Semantic connections.
    pub connections: Vec<ConnectionInstance>,
    /// Resolved data access connections.
    pub accesses: Vec<AccessInstance>,
}

/// Instantiation errors.
#[derive(Clone, PartialEq, Debug)]
pub struct InstanceError {
    /// Human-readable message with instance-path context.
    pub message: String,
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for InstanceError {}

fn err<T>(message: impl Into<String>) -> Result<T, InstanceError> {
    Err(InstanceError {
        message: message.into(),
    })
}

impl InstanceModel {
    /// The root instance.
    pub fn root(&self) -> CompId {
        CompId(0)
    }

    /// Access an instance.
    pub fn component(&self, id: CompId) -> &ComponentInstance {
        &self.components[id.index()]
    }

    /// All instances, in creation (pre-)order.
    pub fn components(&self) -> impl Iterator<Item = &ComponentInstance> {
        self.components.iter()
    }

    /// Number of instances.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// All thread instances.
    pub fn threads(&self) -> impl Iterator<Item = &ComponentInstance> {
        self.components
            .iter()
            .filter(|c| c.category == Category::Thread)
    }

    /// All processor instances.
    pub fn processors(&self) -> impl Iterator<Item = &ComponentInstance> {
        self.components
            .iter()
            .filter(|c| c.category == Category::Processor)
    }

    /// All bus instances.
    pub fn buses(&self) -> impl Iterator<Item = &ComponentInstance> {
        self.components
            .iter()
            .filter(|c| c.category == Category::Bus)
    }

    /// All device instances.
    pub fn devices(&self) -> impl Iterator<Item = &ComponentInstance> {
        self.components
            .iter()
            .filter(|c| c.category == Category::Device)
    }

    /// Find an instance by dotted path below the root (empty = root).
    pub fn find(&self, path: &str) -> Option<CompId> {
        if path.is_empty() {
            return Some(self.root());
        }
        let mut cur = self.root();
        for seg in path.split('.') {
            cur = *self.components[cur.index()]
                .children
                .iter()
                .find(|&&c| self.components[c.index()].name.eq_ignore_ascii_case(seg))?;
        }
        Some(cur)
    }

    /// The processor a thread is bound to, via its (resolved, absolute)
    /// `Actual_Processor_Binding` property.
    pub fn bound_processor(&self, thread: CompId) -> Option<CompId> {
        let c = self.component(thread);
        let r = c.properties.get(names::ACTUAL_PROCESSOR_BINDING)?;
        let path = r.as_reference()?;
        self.find(&path.join("."))
    }

    /// Threads bound to `processor`, in instance order (the set `T_p` of
    /// Algorithm 1).
    pub fn threads_on(&self, processor: CompId) -> Vec<CompId> {
        self.threads()
            .filter(|t| self.bound_processor(t.id) == Some(processor))
            .map(|t| t.id)
            .collect()
    }

    /// Semantic connections whose ultimate source is `comp` (the set
    /// `E_t^out` of Algorithm 1).
    pub fn connections_from(&self, comp: CompId) -> Vec<&ConnectionInstance> {
        self.connections
            .iter()
            .filter(|c| c.src.0 == comp)
            .collect()
    }

    /// Semantic connections whose ultimate destination is `comp` (the set
    /// `E_t^in` of Algorithm 1).
    pub fn connections_to(&self, comp: CompId) -> Vec<&ConnectionInstance> {
        self.connections
            .iter()
            .filter(|c| c.dst.0 == comp)
            .collect()
    }

    /// Data components shared with `thread` via access connections (the
    /// resource set `R` of Fig. 5).
    pub fn accesses_of(&self, thread: CompId) -> Vec<&AccessInstance> {
        self.accesses
            .iter()
            .filter(|a| a.thread == thread)
            .collect()
    }

    /// Render the instance tree as indented text, with categories, bindings
    /// and timing summaries — the `aadlsched --tree` view.
    pub fn render_tree(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut stack: Vec<(CompId, usize)> = vec![(self.root(), 0)];
        while let Some((id, depth)) = stack.pop() {
            let c = self.component(id);
            let _ = write!(out, "{}{} : {}", "  ".repeat(depth), c.name, c.category);
            if !c.classifier.is_empty() {
                let _ = write!(out, " ({})", c.classifier);
            }
            if c.category == Category::Thread {
                if let Some(d) = c.properties.dispatch_protocol() {
                    let _ = write!(out, " [{d}");
                    if let Some(p) = c.properties.period() {
                        let _ = write!(out, ", P={p}");
                    }
                    if let Some((lo, hi)) = c.properties.compute_execution_time() {
                        let _ = write!(out, ", C={lo}..{hi}");
                    }
                    if let Some(d) = c.properties.compute_deadline() {
                        let _ = write!(out, ", D={d}");
                    }
                    let _ = write!(out, "]");
                }
                if let Some(cpu) = self.bound_processor(id) {
                    let _ = write!(out, " -> {}", self.component(cpu).display_path());
                }
            }
            if !c.in_modes.is_empty() {
                let _ = write!(out, " in modes ({})", c.in_modes.join(", "));
            }
            let _ = writeln!(out);
            for &child in c.children.iter().rev() {
                stack.push((child, depth + 1));
            }
        }
        out
    }

    /// True when the whole model declares at most one mode anywhere — the
    /// restriction under which the paper's translation operates (§4).
    pub fn is_single_mode(&self) -> bool {
        self.components.iter().all(|c| c.modes.len() <= 1)
    }
}

/// Instantiate `root_impl` (an implementation name like `Top.impl`) from
/// `pkg`, producing the bound instance model.
pub fn instantiate(pkg: &Package, root_impl: &str) -> Result<InstanceModel, InstanceError> {
    let rimpl = match pkg.find_impl(root_impl) {
        Some(i) => i,
        None => return err(format!("implementation `{root_impl}` not found in package")),
    };
    let mut b = Builder {
        pkg,
        components: Vec::new(),
        scoped: Vec::new(),
        conn_props: HashMap::new(),
    };
    let root = b.build(rimpl.name.clone(), None, String::new())?;
    debug_assert_eq!(root, CompId(0));
    b.apply_scoped()?;
    let connections = b.resolve_semantic_connections()?;
    let accesses = b.resolve_accesses()?;
    Ok(InstanceModel {
        components: b.components,
        connections,
        accesses,
    })
}

/// A property association waiting for `applies to` resolution.
struct ScopedAssoc {
    declared_at: CompId,
    assoc: PropertyAssoc,
}

struct Builder<'a> {
    pkg: &'a Package,
    components: Vec<ComponentInstance>,
    scoped: Vec<ScopedAssoc>,
    /// Connection-scoped properties: (owner instance, connection name) → assocs.
    conn_props: HashMap<(CompId, String), Vec<(String, PropertyValue)>>,
}

impl<'a> Builder<'a> {
    fn build(
        &mut self,
        classifier: String,
        parent: Option<CompId>,
        name_hint: String,
    ) -> Result<CompId, InstanceError> {
        let (ty, imp) = match self.pkg.resolve(&classifier) {
            Some(r) => r,
            None => {
                // A classifier-less subcomponent: allowed, yields a leaf
                // instance with no features or properties of its own.
                let id = self.alloc(parent, name_hint.clone(), classifier.clone());
                return Ok(id);
            }
        };
        let name = if name_hint.is_empty() {
            classifier.clone()
        } else {
            name_hint
        };
        let id = self.alloc(parent, name, classifier.clone());
        self.components[id.index()].category = ty.category;

        // Features from the type.
        for f in &ty.features {
            let mut props = PropertyMap::new();
            for pa in &f.properties {
                props.set(&pa.name, pa.value.clone());
            }
            self.components[id.index()].features.push(FeatureInstance {
                name: f.name.clone(),
                kind: f.kind.clone(),
                properties: props,
            });
        }

        // Unscoped properties: type first, implementation overrides.
        for pa in &ty.properties {
            self.queue_assoc(id, pa);
        }
        if let Some(imp) = imp {
            for pa in &imp.properties {
                self.queue_assoc(id, pa);
            }
            self.components[id.index()].modes = imp.modes.clone();
            self.components[id.index()].mode_transitions = imp.mode_transitions.clone();
            // Children.
            for sub in &imp.subcomponents {
                let child = if sub.classifier.is_empty() {
                    let c = self.alloc(Some(id), sub.name.clone(), String::new());
                    self.components[c.index()].category = sub.category;
                    c
                } else {
                    let c = self.build(sub.classifier.clone(), Some(id), sub.name.clone())?;
                    if self.components[c.index()].category != sub.category
                        && !self.components[c.index()].classifier.is_empty()
                    {
                        return err(format!(
                            "subcomponent `{}` declared as {} but classifier `{}` is {}",
                            sub.name,
                            sub.category,
                            sub.classifier,
                            self.components[c.index()].category
                        ));
                    }
                    c
                };
                self.components[child.index()].in_modes = sub.in_modes.clone();
                self.components[id.index()].children.push(child);
            }
        }
        Ok(id)
    }

    fn alloc(&mut self, parent: Option<CompId>, name: String, classifier: String) -> CompId {
        let id = CompId(u32::try_from(self.components.len()).expect("instance id overflow"));
        let path = match parent {
            None => String::new(),
            Some(p) => {
                let pp = &self.components[p.index()].path;
                if pp.is_empty() {
                    name.clone()
                } else {
                    format!("{pp}.{name}")
                }
            }
        };
        self.components.push(ComponentInstance {
            id,
            parent,
            name,
            path,
            category: Category::System,
            classifier,
            features: Vec::new(),
            properties: PropertyMap::new(),
            children: Vec::new(),
            modes: Vec::new(),
            mode_transitions: Vec::new(),
            in_modes: Vec::new(),
        });
        id
    }

    /// Apply an unscoped association immediately; defer `applies to`.
    fn queue_assoc(&mut self, id: CompId, pa: &PropertyAssoc) {
        if pa.applies_to.is_empty() {
            let value = self.resolve_references(id, &pa.value);
            self.components[id.index()]
                .properties
                .set_spanned(&pa.name, value, pa.span);
        } else {
            self.scoped.push(ScopedAssoc {
                declared_at: id,
                assoc: pa.clone(),
            });
        }
    }

    /// Rewrite every `Reference` in `value` (resolved relative to `scope`)
    /// to an absolute below-root path, so later consumers need no scope.
    fn resolve_references(&self, scope: CompId, value: &PropertyValue) -> PropertyValue {
        match value {
            PropertyValue::Reference(path) => {
                match self.resolve_path(scope, path) {
                    Some(target) => PropertyValue::Reference(
                        self.components[target.index()]
                            .path
                            .split('.')
                            .map(str::to_owned)
                            .collect(),
                    ),
                    // Leave unresolved references as-is; validation flags them.
                    None => value.clone(),
                }
            }
            PropertyValue::List(items) => PropertyValue::List(
                items
                    .iter()
                    .map(|v| self.resolve_references(scope, v))
                    .collect(),
            ),
            other => other.clone(),
        }
    }

    fn resolve_path(&self, scope: CompId, path: &[String]) -> Option<CompId> {
        let mut cur = scope;
        for seg in path {
            cur = *self.components[cur.index()]
                .children
                .iter()
                .find(|&&c| self.components[c.index()].name.eq_ignore_ascii_case(seg))?;
        }
        Some(cur)
    }

    /// Resolve deferred `applies to` associations onto component instances,
    /// feature instances, or connections.
    fn apply_scoped(&mut self) -> Result<(), InstanceError> {
        let scoped = std::mem::take(&mut self.scoped);
        for sa in scoped {
            let value = self.resolve_references(sa.declared_at, &sa.assoc.value);
            for path in &sa.assoc.applies_to {
                if let Some(target) = self.resolve_path(sa.declared_at, path) {
                    self.components[target.index()]
                        .properties
                        .set_spanned(&sa.assoc.name, value.clone(), sa.assoc.span);
                    continue;
                }
                // Component-prefix + feature name?
                if path.len() >= 2 {
                    if let Some(owner) = self.resolve_path(sa.declared_at, &path[..path.len() - 1])
                    {
                        let fname = &path[path.len() - 1];
                        if let Some(fi) = self.components[owner.index()].feature_index(fname) {
                            self.components[owner.index()].features[fi]
                                .properties
                                .set(&sa.assoc.name, value.clone());
                            continue;
                        }
                    }
                }
                // Component-prefix + connection name?
                let (owner, last) = if path.len() == 1 {
                    (Some(sa.declared_at), &path[0])
                } else {
                    (
                        self.resolve_path(sa.declared_at, &path[..path.len() - 1]),
                        &path[path.len() - 1],
                    )
                };
                if let Some(owner) = owner {
                    if self.impl_of(owner).is_some_and(|imp| {
                        imp.connections
                            .iter()
                            .any(|c| c.name.eq_ignore_ascii_case(last))
                    }) {
                        self.conn_props
                            .entry((owner, last.to_ascii_lowercase()))
                            .or_default()
                            .push((sa.assoc.name.clone(), value.clone()));
                        continue;
                    }
                }
                return err(format!(
                    "property `{}` applies to unresolvable path `{}` (declared at `{}`)",
                    sa.assoc.name,
                    path.join("."),
                    self.components[sa.declared_at.index()].display_path()
                ));
            }
        }
        Ok(())
    }

    fn impl_of(&self, id: CompId) -> Option<&'a ComponentImpl> {
        let cl = &self.components[id.index()].classifier;
        if cl.contains('.') {
            self.pkg.find_impl(cl)
        } else {
            None
        }
    }

    /// Resolve an endpoint of a syntactic connection declared in the
    /// implementation of `owner`.
    fn endpoint_node(
        &self,
        owner: CompId,
        ep: &EndpointRef,
    ) -> Result<(CompId, usize), InstanceError> {
        let comp = match &ep.subcomponent {
            Some(sub) => match self.resolve_path(owner, std::slice::from_ref(sub)) {
                Some(c) => c,
                None => {
                    return err(format!(
                        "connection endpoint `{ep}` in `{}`: no subcomponent `{sub}`",
                        self.components[owner.index()].display_path()
                    ))
                }
            },
            None => owner,
        };
        match self.components[comp.index()].feature_index(&ep.feature) {
            Some(fi) => Ok((comp, fi)),
            None => err(format!(
                "connection endpoint `{ep}` in `{}`: component `{}` has no feature `{}`",
                self.components[owner.index()].display_path(),
                self.components[comp.index()].display_path(),
                ep.feature
            )),
        }
    }

    /// Build the semantic connections by following syntactic edges from every
    /// ultimate source.
    fn resolve_semantic_connections(&self) -> Result<Vec<ConnectionInstance>, InstanceError> {
        // Edges: (node → [(next node, owner, syntactic connection)]).
        type Node = (CompId, usize);
        let mut edges: HashMap<Node, Vec<(Node, CompId, &Connection)>> = HashMap::new();
        for comp in &self.components {
            let Some(imp) = self.impl_of(comp.id) else {
                continue;
            };
            for conn in &imp.connections {
                if conn.kind != crate::model::ConnKind::Port {
                    continue; // access connections are resolved separately
                }
                let src = self.endpoint_node(comp.id, &conn.src)?;
                let dst = self.endpoint_node(comp.id, &conn.dst)?;
                edges.entry(src).or_default().push((dst, comp.id, conn));
            }
        }

        let mut out = Vec::new();
        for comp in &self.components {
            if !comp.category.is_connection_terminal() {
                continue;
            }
            for (fi, feat) in comp.features.iter().enumerate() {
                let FeatureKind::Port { dir, .. } = &feat.kind else {
                    continue;
                };
                if !dir.is_out() {
                    continue;
                }
                // DFS from this ultimate source.
                let start: Node = (comp.id, fi);
                let mut stack: Vec<(Node, Vec<(CompId, &Connection)>)> = vec![(start, Vec::new())];
                let mut visited: Vec<Node> = vec![start];
                while let Some((node, segs)) = stack.pop() {
                    let node_comp = &self.components[node.0.index()];
                    if !segs.is_empty()
                        && node_comp.category.is_connection_terminal()
                        && matches!(
                            &node_comp.features[node.1].kind,
                            FeatureKind::Port { dir, .. } if dir.is_in()
                        )
                    {
                        // Ultimate destination reached.
                        out.push(self.make_semantic(start, node, &segs));
                        continue;
                    }
                    if let Some(nexts) = edges.get(&node) {
                        for (next, owner, conn) in nexts {
                            if visited.contains(next) {
                                continue;
                            }
                            visited.push(*next);
                            let mut segs2 = segs.clone();
                            segs2.push((*owner, *conn));
                            stack.push((*next, segs2));
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    fn make_semantic(
        &self,
        src: (CompId, usize),
        dst: (CompId, usize),
        segs: &[(CompId, &Connection)],
    ) -> ConnectionInstance {
        let dst_feat = &self.components[dst.0.index()].features[dst.1];
        let kind = match &dst_feat.kind {
            FeatureKind::Port { kind, .. } => *kind,
            _ => PortKind::Data,
        };
        let mut properties = PropertyMap::new();
        let mut buses = Vec::new();
        let mut names = Vec::new();
        for (owner, conn) in segs {
            names.push(conn.name.clone());
            for pa in &conn.properties {
                let value = self.resolve_references(*owner, &pa.value);
                if pa.name.eq_ignore_ascii_case(names_actual_connection_binding()) {
                    for r in value.references() {
                        if let Some(b) = self.find_abs(r) {
                            if self.components[b.index()].category == Category::Bus
                                && !buses.contains(&b)
                            {
                                buses.push(b);
                            }
                        }
                    }
                }
                properties.set(&pa.name, value);
            }
            // Connection-scoped `applies to` properties.
            if let Some(extra) = self
                .conn_props
                .get(&(*owner, conn.name.to_ascii_lowercase()))
            {
                for (name, value) in extra {
                    if name.eq_ignore_ascii_case(names_actual_connection_binding()) {
                        for r in value.references() {
                            if let Some(b) = self.find_abs(r) {
                                if self.components[b.index()].category == Category::Bus
                                    && !buses.contains(&b)
                                {
                                    buses.push(b);
                                }
                            }
                        }
                    }
                    properties.set(name, value.clone());
                }
            }
        }
        // The destination ("last") port's properties are most specific (§4.4).
        for (name, value) in dst_feat.properties.iter() {
            properties.set(name, value.clone());
        }
        ConnectionInstance {
            name: names.join("/"),
            src,
            dst,
            kind,
            properties,
            buses,
        }
    }

    /// Resolve data access connections: for each `data access shared -> t.f`
    /// declared in some implementation, find the data component and the
    /// accessing thread. The destination may be the thread itself or one of
    /// its requires-access features; hierarchical chaining is not supported
    /// (the paper omits access connections entirely, §4 — this is the
    /// extension hook for the `R` set of Fig. 5).
    fn resolve_accesses(&self) -> Result<Vec<AccessInstance>, InstanceError> {
        let mut out = Vec::new();
        for comp in &self.components {
            let Some(imp) = self.impl_of(comp.id) else {
                continue;
            };
            for conn in &imp.connections {
                if conn.kind != crate::model::ConnKind::DataAccess {
                    continue;
                }
                let data_name = conn.src.subcomponent.as_deref().unwrap_or("");
                let data = self
                    .resolve_path(comp.id, &[data_name.to_owned()])
                    .filter(|d| self.components[d.index()].category == Category::Data)
                    .ok_or_else(|| InstanceError {
                        message: format!(
                            "access connection `{}` in `{}`: `{}` is not a data subcomponent",
                            conn.name,
                            self.components[comp.id.index()].display_path(),
                            conn.src
                        ),
                    })?;
                // The destination is `thread.feature` or the bare thread name.
                let thread_name = conn
                    .dst
                    .subcomponent
                    .as_deref()
                    .unwrap_or(&conn.dst.feature);
                let thread = self
                    .resolve_path(comp.id, &[thread_name.to_owned()])
                    .filter(|t| self.components[t.index()].category == Category::Thread)
                    .ok_or_else(|| InstanceError {
                        message: format!(
                            "access connection `{}` in `{}`: `{}` is not a thread subcomponent",
                            conn.name,
                            self.components[comp.id.index()].display_path(),
                            conn.dst
                        ),
                    })?;
                let mut properties = PropertyMap::new();
                for pa in &conn.properties {
                    let value = self.resolve_references(comp.id, &pa.value);
                    properties.set_spanned(&pa.name, value, pa.span);
                }
                // Connection-scoped `applies to` properties reach access
                // connections the same way they reach port connections.
                if let Some(extra) = self
                    .conn_props
                    .get(&(comp.id, conn.name.to_ascii_lowercase()))
                {
                    for (name, value) in extra {
                        properties.set(name, value.clone());
                    }
                }
                out.push(AccessInstance {
                    thread,
                    data,
                    name: conn.name.clone(),
                    properties,
                });
            }
        }
        Ok(out)
    }

    /// Find an instance from an absolute below-root path (already rewritten).
    fn find_abs(&self, path: &[String]) -> Option<CompId> {
        let mut cur = CompId(0);
        for seg in path {
            cur = *self.components[cur.index()]
                .children
                .iter()
                .find(|&&c| self.components[c.index()].name.eq_ignore_ascii_case(seg))?;
        }
        Some(cur)
    }
}

fn names_actual_connection_binding() -> &'static str {
    names::ACTUAL_CONNECTION_BINDING
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_package;

    /// A hierarchical model exercising up/sibling/down semantic connection
    /// resolution and bus binding, shaped like the paper's Fig. 1.
    const HIER: &str = r#"
package H
public
  processor cpu_t
    properties
      Scheduling_Protocol => RMS;
  end cpu_t;
  bus vme
  end vme;

  thread Src
    features
      o: out data port;
    properties
      Dispatch_Protocol => Periodic;
      Period => 50 ms;
      Compute_Execution_Time => 5 ms .. 10 ms;
      Compute_Deadline => 50 ms;
  end Src;

  thread Dst
    features
      i: in data port;
    properties
      Dispatch_Protocol => Periodic;
      Period => 100 ms;
      Compute_Execution_Time => 10 ms .. 10 ms;
      Compute_Deadline => 100 ms;
  end Dst;

  system Left
    features
      lo: out data port;
  end Left;
  system implementation Left.impl
    subcomponents
      src: thread Src;
    connections
      up: port src.o -> lo;
  end Left.impl;

  system Right
    features
      ri: in data port;
  end Right;
  system implementation Right.impl
    subcomponents
      dst: thread Dst;
    connections
      down: port ri -> dst.i;
  end Right.impl;

  system Top
  end Top;
  system implementation Top.impl
    subcomponents
      left: system Left.impl;
      right: system Right.impl;
      cpu1: processor cpu_t;
      cpu2: processor cpu_t;
      b: bus vme;
    connections
      sib: port left.lo -> right.ri { Actual_Connection_Binding => reference (b); };
    properties
      Actual_Processor_Binding => reference (cpu1) applies to left.src;
      Actual_Processor_Binding => reference (cpu2) applies to right.dst;
  end Top.impl;
end H;
"#;

    fn model() -> InstanceModel {
        let pkg = parse_package(HIER).unwrap();
        instantiate(&pkg, "Top.impl").unwrap()
    }

    #[test]
    fn tree_structure_and_paths() {
        let m = model();
        assert_eq!(m.threads().count(), 2);
        assert_eq!(m.processors().count(), 2);
        assert_eq!(m.buses().count(), 1);
        let src = m.find("left.src").expect("left.src exists");
        assert_eq!(m.component(src).category, Category::Thread);
        assert_eq!(m.component(src).path, "left.src");
        assert!(m.find("nothing.here").is_none());
        assert_eq!(m.find(""), Some(m.root()));
    }

    #[test]
    fn semantic_connection_spans_three_syntactic_segments() {
        let m = model();
        assert_eq!(m.connections.len(), 1);
        let c = &m.connections[0];
        assert_eq!(c.name, "up/sib/down");
        let src = m.component(c.src.0);
        let dst = m.component(c.dst.0);
        assert_eq!(src.path, "left.src");
        assert_eq!(dst.path, "right.dst");
        assert_eq!(c.kind, PortKind::Data);
    }

    #[test]
    fn connection_binds_to_bus() {
        let m = model();
        let c = &m.connections[0];
        assert_eq!(c.buses.len(), 1);
        assert_eq!(m.component(c.buses[0]).name, "b");
    }

    #[test]
    fn processor_bindings_resolve() {
        let m = model();
        let src = m.find("left.src").unwrap();
        let dst = m.find("right.dst").unwrap();
        let cpu1 = m.find("cpu1").unwrap();
        let cpu2 = m.find("cpu2").unwrap();
        assert_eq!(m.bound_processor(src), Some(cpu1));
        assert_eq!(m.bound_processor(dst), Some(cpu2));
        assert_eq!(m.threads_on(cpu1), vec![src]);
        assert_eq!(m.threads_on(cpu2), vec![dst]);
    }

    #[test]
    fn thread_properties_merge_from_type() {
        let m = model();
        let src = m.component(m.find("left.src").unwrap());
        assert_eq!(
            src.properties.dispatch_protocol(),
            Some(crate::properties::DispatchProtocol::Periodic)
        );
        assert_eq!(
            src.properties.period(),
            Some(crate::properties::TimeVal::ms(50))
        );
    }

    #[test]
    fn connections_from_and_to() {
        let m = model();
        let src = m.find("left.src").unwrap();
        let dst = m.find("right.dst").unwrap();
        assert_eq!(m.connections_from(src).len(), 1);
        assert_eq!(m.connections_to(src).len(), 0);
        assert_eq!(m.connections_to(dst).len(), 1);
    }

    #[test]
    fn single_mode_detection() {
        let m = model();
        assert!(m.is_single_mode());
    }

    #[test]
    fn render_tree_shows_structure_and_bindings() {
        let m = model();
        let tree = m.render_tree();
        assert!(tree.contains("left : system"), "{tree}");
        assert!(tree.contains("src : thread"), "{tree}");
        assert!(tree.contains("-> cpu1"), "{tree}");
        assert!(tree.contains("Periodic"), "{tree}");
        // Indentation reflects depth: src is nested under left.
        let left_line = tree.lines().position(|l| l.trim_start().starts_with("left ")).unwrap();
        let src_line = tree.lines().position(|l| l.trim_start().starts_with("src ")).unwrap();
        assert!(src_line > left_line);
    }

    #[test]
    fn missing_root_impl_is_an_error() {
        let pkg = parse_package(HIER).unwrap();
        assert!(instantiate(&pkg, "Nope.impl").is_err());
    }

    #[test]
    fn dangling_applies_to_is_an_error() {
        let src = r#"
package D
public
  system S
  end S;
  system implementation S.impl
    properties
      Priority => 3 applies to ghost;
  end S.impl;
end D;
"#;
        let pkg = parse_package(src).unwrap();
        let e = instantiate(&pkg, "S.impl").unwrap_err();
        assert!(e.message.contains("ghost"), "{e}");
    }

    #[test]
    fn feature_scoped_applies_to() {
        let src = r#"
package F
public
  thread T
    features
      p: in event port;
  end T;
  system S
  end S;
  system implementation S.impl
    subcomponents
      t: thread T;
    properties
      Queue_Size => 4 applies to t.p;
  end S.impl;
end F;
"#;
        let pkg = parse_package(src).unwrap();
        let m = instantiate(&pkg, "S.impl").unwrap();
        let t = m.component(m.find("t").unwrap());
        let fi = t.feature_index("p").unwrap();
        assert_eq!(t.features[fi].properties.queue_size(), 4);
    }

    #[test]
    fn fan_out_yields_multiple_semantic_connections() {
        let src = r#"
package FO
public
  thread A
    features
      o: out event port;
    properties
      Dispatch_Protocol => Periodic;
  end A;
  thread B
    features
      i: in event port;
    properties
      Dispatch_Protocol => Sporadic;
  end B;
  system S
  end S;
  system implementation S.impl
    subcomponents
      a: thread A;
      b1: thread B;
      b2: thread B;
    connections
      c1: port a.o -> b1.i;
      c2: port a.o -> b2.i;
  end S.impl;
end FO;
"#;
        let pkg = parse_package(src).unwrap();
        let m = instantiate(&pkg, "S.impl").unwrap();
        assert_eq!(m.connections.len(), 2);
        let a = m.find("a").unwrap();
        assert_eq!(m.connections_from(a).len(), 2);
        assert!(m.connections.iter().all(|c| c.kind == PortKind::Event));
    }
}
