//! Fluent programmatic construction of declarative AADL models.
//!
//! The benchmark harness generates hundreds of randomized task sets; writing
//! AADL text and re-parsing it would be wasteful, so this builder constructs
//! [`Package`]s directly. The parser and the builder produce the same data
//! structures, and the pretty-printer ([`crate::pretty`]) closes the loop for
//! round-trip tests.
//!
//! ```
//! use aadl::builder::PackageBuilder;
//! use aadl::properties::{PropertyValue, TimeVal};
//! use aadl::Category;
//!
//! let pkg = PackageBuilder::new("Demo")
//!     .processor("cpu_t", |p| p.prop_enum("Scheduling_Protocol", "RMS"))
//!     .periodic_thread("T1", TimeVal::ms(10), (TimeVal::ms(2), TimeVal::ms(2)), TimeVal::ms(10))
//!     .system("Top", |s| s)
//!     .implementation("Top.impl", Category::System, |i| {
//!         i.sub("cpu", Category::Processor, "cpu_t")
//!             .sub("t1", Category::Thread, "T1")
//!             .bind_processor("t1", "cpu")
//!     })
//!     .build();
//! assert_eq!(pkg.types.len(), 3);
//! ```

use crate::model::{
    Category, ComponentImpl, ComponentType, ConnKind, Connection, Direction, EndpointRef, Feature,
    FeatureKind, Mode, Package, PortKind, PropertyAssoc, Subcomponent,
};
use crate::properties::{names, PropertyValue, TimeVal};

/// Builder for a [`Package`].
pub struct PackageBuilder {
    pkg: Package,
}

/// Builder for a [`ComponentType`].
pub struct TypeBuilder {
    ty: ComponentType,
}

/// Builder for a [`ComponentImpl`].
pub struct ImplBuilder {
    imp: ComponentImpl,
}

impl PackageBuilder {
    /// Start a package.
    pub fn new(name: &str) -> PackageBuilder {
        PackageBuilder {
            pkg: Package {
                name: name.to_owned(),
                types: Vec::new(),
                impls: Vec::new(),
            },
        }
    }

    /// Add a component type of any category.
    pub fn component(
        mut self,
        name: &str,
        category: Category,
        f: impl FnOnce(TypeBuilder) -> TypeBuilder,
    ) -> PackageBuilder {
        let tb = TypeBuilder {
            ty: ComponentType {
                name: name.to_owned(),
                category,
                features: Vec::new(),
                properties: Vec::new(),
            },
        };
        self.pkg.types.push(f(tb).ty);
        self
    }

    /// Add a processor type.
    pub fn processor(
        self,
        name: &str,
        f: impl FnOnce(TypeBuilder) -> TypeBuilder,
    ) -> PackageBuilder {
        self.component(name, Category::Processor, f)
    }

    /// Add a bus type.
    pub fn bus(self, name: &str) -> PackageBuilder {
        self.component(name, Category::Bus, |b| b)
    }

    /// Add a device type.
    pub fn device(
        self,
        name: &str,
        f: impl FnOnce(TypeBuilder) -> TypeBuilder,
    ) -> PackageBuilder {
        self.component(name, Category::Device, f)
    }

    /// Add a system type.
    pub fn system(self, name: &str, f: impl FnOnce(TypeBuilder) -> TypeBuilder) -> PackageBuilder {
        self.component(name, Category::System, f)
    }

    /// Add a thread type.
    pub fn thread(self, name: &str, f: impl FnOnce(TypeBuilder) -> TypeBuilder) -> PackageBuilder {
        self.component(name, Category::Thread, f)
    }

    /// Shorthand: a periodic thread with the three properties §4.1 requires.
    pub fn periodic_thread(
        self,
        name: &str,
        period: TimeVal,
        exec: (TimeVal, TimeVal),
        deadline: TimeVal,
    ) -> PackageBuilder {
        self.thread(name, |t| {
            t.prop_enum(names::DISPATCH_PROTOCOL, "Periodic")
                .prop(names::PERIOD, PropertyValue::Time(period))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(exec.0, exec.1),
                )
                .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(deadline))
        })
    }

    /// Shorthand: a sporadic thread (minimum separation = `period`) with an
    /// incoming event port `trigger`.
    pub fn sporadic_thread(
        self,
        name: &str,
        separation: TimeVal,
        exec: (TimeVal, TimeVal),
        deadline: TimeVal,
    ) -> PackageBuilder {
        self.thread(name, |t| {
            t.in_event_port("trigger")
                .prop_enum(names::DISPATCH_PROTOCOL, "Sporadic")
                .prop(names::PERIOD, PropertyValue::Time(separation))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(exec.0, exec.1),
                )
                .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(deadline))
        })
    }

    /// Add a component implementation.
    pub fn implementation(
        mut self,
        name: &str,
        category: Category,
        f: impl FnOnce(ImplBuilder) -> ImplBuilder,
    ) -> PackageBuilder {
        let type_name = name.split('.').next().unwrap_or(name).to_owned();
        let ib = ImplBuilder {
            imp: ComponentImpl {
                name: name.to_owned(),
                type_name,
                category,
                subcomponents: Vec::new(),
                connections: Vec::new(),
                modes: Vec::new(),
                mode_transitions: Vec::new(),
                properties: Vec::new(),
            },
        };
        self.pkg.impls.push(f(ib).imp);
        self
    }

    /// Finish.
    pub fn build(self) -> Package {
        self.pkg
    }
}

impl TypeBuilder {
    /// Add a port feature.
    pub fn port(mut self, name: &str, dir: Direction, kind: PortKind) -> TypeBuilder {
        self.ty.features.push(Feature {
            name: name.to_owned(),
            kind: FeatureKind::Port { dir, kind },
            properties: Vec::new(),
        });
        self
    }

    /// `out data port`.
    pub fn out_data_port(self, name: &str) -> TypeBuilder {
        self.port(name, Direction::Out, PortKind::Data)
    }

    /// `in data port`.
    pub fn in_data_port(self, name: &str) -> TypeBuilder {
        self.port(name, Direction::In, PortKind::Data)
    }

    /// `out event port`.
    pub fn out_event_port(self, name: &str) -> TypeBuilder {
        self.port(name, Direction::Out, PortKind::Event)
    }

    /// `in event port`.
    pub fn in_event_port(self, name: &str) -> TypeBuilder {
        self.port(name, Direction::In, PortKind::Event)
    }

    /// `in event data port`.
    pub fn in_event_data_port(self, name: &str) -> TypeBuilder {
        self.port(name, Direction::In, PortKind::EventData)
    }

    /// `out event data port`.
    pub fn out_event_data_port(self, name: &str) -> TypeBuilder {
        self.port(name, Direction::Out, PortKind::EventData)
    }

    /// Set a property on the most recently added feature.
    pub fn feature_prop(mut self, name: &str, value: PropertyValue) -> TypeBuilder {
        self.ty
            .features
            .last_mut()
            .expect("feature_prop requires a preceding feature")
            .properties
            .push(PropertyAssoc::new(name, value));
        self
    }

    /// Set a property on the type.
    pub fn prop(mut self, name: &str, value: PropertyValue) -> TypeBuilder {
        self.ty.properties.push(PropertyAssoc::new(name, value));
        self
    }

    /// Set an enumeration property on the type.
    pub fn prop_enum(self, name: &str, literal: &str) -> TypeBuilder {
        self.prop(name, PropertyValue::Enum(literal.to_owned()))
    }

    /// Set an integer property on the type.
    pub fn prop_int(self, name: &str, value: i64) -> TypeBuilder {
        self.prop(name, PropertyValue::Int(value))
    }
}

impl ImplBuilder {
    /// Add a subcomponent.
    pub fn sub(mut self, name: &str, category: Category, classifier: &str) -> ImplBuilder {
        self.imp.subcomponents.push(Subcomponent {
            name: name.to_owned(),
            category,
            classifier: classifier.to_owned(),
            in_modes: Vec::new(),
        });
        self
    }

    /// Add a port connection `src -> dst`; endpoints are `"sub.feature"` or
    /// `"feature"` strings.
    pub fn connect(mut self, name: &str, src: &str, dst: &str) -> ImplBuilder {
        self.imp.connections.push(Connection {
            name: name.to_owned(),
            kind: ConnKind::Port,
            src: parse_endpoint(src),
            dst: parse_endpoint(dst),
            properties: Vec::new(),
            in_modes: Vec::new(),
        });
        self
    }

    /// Add a data access connection `data -> thread.feature`: the thread
    /// gains (quantum-exclusive) access to the shared data subcomponent.
    pub fn connect_data_access(mut self, name: &str, data: &str, dst: &str) -> ImplBuilder {
        self.imp.connections.push(Connection {
            name: name.to_owned(),
            kind: ConnKind::DataAccess,
            src: EndpointRef {
                subcomponent: Some(data.to_owned()),
                feature: String::new(),
            },
            dst: parse_endpoint(dst),
            properties: Vec::new(),
            in_modes: Vec::new(),
        });
        self
    }

    /// Set a property on the most recently added connection.
    pub fn conn_prop(mut self, name: &str, value: PropertyValue) -> ImplBuilder {
        self.imp
            .connections
            .last_mut()
            .expect("conn_prop requires a preceding connection")
            .properties
            .push(PropertyAssoc::new(name, value));
        self
    }

    /// Bind the most recently added connection to a bus (path relative to
    /// this implementation).
    pub fn bind_bus(self, bus: &str) -> ImplBuilder {
        let path: Vec<String> = bus.split('.').map(str::to_owned).collect();
        self.conn_prop(
            names::ACTUAL_CONNECTION_BINDING,
            PropertyValue::Reference(path),
        )
    }

    /// Bind a thread (path) to a processor (path), both relative to this
    /// implementation.
    pub fn bind_processor(mut self, thread: &str, processor: &str) -> ImplBuilder {
        let tpath: Vec<String> = thread.split('.').map(str::to_owned).collect();
        let ppath: Vec<String> = processor.split('.').map(str::to_owned).collect();
        self.imp.properties.push(PropertyAssoc {
            name: names::ACTUAL_PROCESSOR_BINDING.to_owned(),
            value: PropertyValue::Reference(ppath),
            applies_to: vec![tpath],
            span: None,
        });
        self
    }

    /// Set a property, optionally scoped (`applies_to` = dotted path).
    pub fn prop_applied(mut self, name: &str, value: PropertyValue, path: &str) -> ImplBuilder {
        self.imp.properties.push(PropertyAssoc {
            name: name.to_owned(),
            value,
            applies_to: vec![path.split('.').map(str::to_owned).collect()],
            span: None,
        });
        self
    }

    /// Set an unscoped property on the implementation.
    pub fn prop(mut self, name: &str, value: PropertyValue) -> ImplBuilder {
        self.imp.properties.push(PropertyAssoc::new(name, value));
        self
    }

    /// Declare a mode.
    pub fn mode(mut self, name: &str, initial: bool) -> ImplBuilder {
        self.imp.modes.push(Mode {
            name: name.to_owned(),
            initial,
        });
        self
    }

    /// Restrict the most recently added subcomponent to the given modes.
    pub fn in_modes(mut self, modes: &[&str]) -> ImplBuilder {
        self.imp
            .subcomponents
            .last_mut()
            .expect("in_modes requires a preceding subcomponent")
            .in_modes = modes.iter().map(|m| (*m).to_owned()).collect();
        self
    }

    /// Declare a mode transition `src -[ trigger ]-> dst`; the trigger is a
    /// `"sub.port"` endpoint.
    pub fn mode_transition(mut self, src: &str, trigger: &str, dst: &str) -> ImplBuilder {
        self.imp.mode_transitions.push(crate::model::ModeTransition {
            src: src.to_owned(),
            trigger: parse_endpoint(trigger),
            dst: dst.to_owned(),
        });
        self
    }
}

fn parse_endpoint(s: &str) -> EndpointRef {
    match s.split_once('.') {
        Some((sub, feature)) => EndpointRef::sub(sub, feature),
        None => EndpointRef::own(s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::instantiate;

    #[test]
    fn builder_constructs_an_instantiable_model() {
        let pkg = PackageBuilder::new("B")
            .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
            .periodic_thread(
                "T1",
                TimeVal::ms(10),
                (TimeVal::ms(2), TimeVal::ms(3)),
                TimeVal::ms(10),
            )
            .thread("T2", |t| {
                t.in_event_port("go")
                    .feature_prop("Queue_Size", PropertyValue::Int(2))
                    .out_data_port("result")
                    .prop_enum(names::DISPATCH_PROTOCOL, "Aperiodic")
                    .prop(
                        names::COMPUTE_EXECUTION_TIME,
                        PropertyValue::TimeRange(TimeVal::ms(1), TimeVal::ms(1)),
                    )
                    .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(5)))
            })
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("t1", Category::Thread, "T1")
                    .sub("t2", Category::Thread, "T2")
                    .bind_processor("t1", "cpu")
                    .bind_processor("t2", "cpu")
            })
            .build();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        assert_eq!(m.threads().count(), 2);
        let cpu = m.find("cpu").unwrap();
        assert_eq!(m.threads_on(cpu).len(), 2);
        let t2 = m.component(m.find("t2").unwrap());
        let fi = t2.feature_index("go").unwrap();
        assert_eq!(t2.features[fi].properties.queue_size(), 2);
    }

    #[test]
    fn connections_and_bus_binding() {
        let pkg = PackageBuilder::new("C")
            .bus("net")
            .thread("A", |t| {
                t.out_event_port("o")
                    .prop_enum(names::DISPATCH_PROTOCOL, "Periodic")
            })
            .thread("B", |t| {
                t.in_event_port("i")
                    .prop_enum(names::DISPATCH_PROTOCOL, "Sporadic")
            })
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| {
                i.sub("a", Category::Thread, "A")
                    .sub("b", Category::Thread, "B")
                    .sub("bus0", Category::Bus, "net")
                    .connect("c", "a.o", "b.i")
                    .bind_bus("bus0")
            })
            .build();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        assert_eq!(m.connections.len(), 1);
        assert_eq!(m.connections[0].buses.len(), 1);
        assert_eq!(m.component(m.connections[0].buses[0]).name, "bus0");
    }

    #[test]
    fn endpoint_parsing() {
        assert_eq!(parse_endpoint("a.b"), EndpointRef::sub("a", "b"));
        assert_eq!(parse_endpoint("p"), EndpointRef::own("p"));
    }
}
