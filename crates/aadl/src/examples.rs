//! Canned models, headed by the cruise-control system of Fig. 1 of the paper.
//!
//! The paper borrows the cruise-control example from the OSATE release: a
//! `CruiseControl` system containing two processors connected by a bus and two
//! software subsystems, each bound to one processor. `HCI` hosts the threads
//! `DriverModeLogic`, `ButtonPanel`, `RefSpeed` and `InstrumentPanel`;
//! `CruiseControlLaws` hosts `Cruise1` and `Cruise2`. Threads communicate via
//! data ports; the semantic connections leaving `RefSpeed` and
//! `DriverModeLogic` cross subsystem boundaries and are mapped to the bus
//! (§4.2: the *last* computation step of those threads uses the bus resource).
//!
//! The paper prints no timing numbers, so this module assigns documented,
//! harmonic values that make the nominal system schedulable under RMS
//! (HCI utilization 0.6, CCL utilization 0.7), plus an *overloaded* variant
//! whose CCL processor is not schedulable — used throughout the tests,
//! examples and benches.
//!
//! Translating `cruise_control()` must produce exactly the inventory §4.1
//! reports: "six ACSR processes that represent threads and six ACSR processes
//! that represent dispatchers for each thread. All connections in the example
//! are data connections, thus no queue processes are introduced."

use crate::builder::PackageBuilder;
use crate::instance::{instantiate, InstanceModel};
use crate::model::{Category, Package};
use crate::properties::{names, PropertyValue, TimeVal};

/// Timing parameters for one cruise-control thread: (period ms, cmin ms,
/// cmax ms) with deadline = period.
type Timing = (i64, i64, i64);

/// The nominal cruise-control timing (schedulable on both processors).
const NOMINAL: [(&str, Timing); 6] = [
    ("ButtonPanel", (100, 10, 10)),
    ("DriverModeLogic", (50, 5, 10)),
    ("RefSpeed", (50, 5, 10)),
    ("InstrumentPanel", (100, 10, 10)),
    ("Cruise1", (50, 10, 20)),
    ("Cruise2", (100, 20, 30)),
];

/// Overloaded timing: CCL demand exceeds the processor (Cruise1 45/50 +
/// Cruise2 30/100 ⇒ utilization 1.2), so `Cruise2` must miss its deadline.
const OVERLOADED: [(&str, Timing); 6] = [
    ("ButtonPanel", (100, 10, 10)),
    ("DriverModeLogic", (50, 5, 10)),
    ("RefSpeed", (50, 5, 10)),
    ("InstrumentPanel", (100, 10, 10)),
    ("Cruise1", (50, 45, 45)),
    ("Cruise2", (100, 30, 30)),
];

fn timing_of(table: &[(&str, Timing)], name: &str) -> Timing {
    table
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, t)| *t)
        .expect("thread in timing table")
}

fn cruise_control_with(table: &[(&str, Timing)], scheduling: &str) -> Package {
    PackageBuilder::new("CruiseControl")
        .processor("ppc", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, scheduling))
        .bus("vme")
        .thread("ButtonPanel", |t| {
            with_timing(t.out_data_port("cmd"), timing_of(table, "ButtonPanel"))
        })
        .thread("DriverModeLogic", |t| {
            with_timing(
                t.in_data_port("buttons")
                    .out_data_port("mode_cmd")
                    .out_data_port("disp"),
                timing_of(table, "DriverModeLogic"),
            )
        })
        .thread("RefSpeed", |t| {
            with_timing(t.out_data_port("speed"), timing_of(table, "RefSpeed"))
        })
        .thread("InstrumentPanel", |t| {
            with_timing(
                t.in_data_port("disp_in"),
                timing_of(table, "InstrumentPanel"),
            )
        })
        .thread("Cruise1", |t| {
            with_timing(
                t.in_data_port("mode_in")
                    .in_data_port("ref_speed")
                    .out_data_port("ctl"),
                timing_of(table, "Cruise1"),
            )
        })
        .thread("Cruise2", |t| {
            with_timing(t.in_data_port("ctl_in"), timing_of(table, "Cruise2"))
        })
        .system("HCI", |s| {
            s.out_data_port("mode_out").out_data_port("speed_out")
        })
        .implementation("HCI.impl", Category::System, |i| {
            i.sub("button_panel", Category::Thread, "ButtonPanel")
                .sub("driver_mode_logic", Category::Thread, "DriverModeLogic")
                .sub("ref_speed", Category::Thread, "RefSpeed")
                .sub("instrument_panel", Category::Thread, "InstrumentPanel")
                .connect("buttons", "button_panel.cmd", "driver_mode_logic.buttons")
                .connect("disp", "driver_mode_logic.disp", "instrument_panel.disp_in")
                .connect("mode_up", "driver_mode_logic.mode_cmd", "mode_out")
                .connect("speed_up", "ref_speed.speed", "speed_out")
        })
        .system("CruiseControlLaws", |s| {
            s.in_data_port("mode_in").in_data_port("speed_in")
        })
        .implementation("CruiseControlLaws.impl", Category::System, |i| {
            i.sub("cruise1", Category::Thread, "Cruise1")
                .sub("cruise2", Category::Thread, "Cruise2")
                .connect("mode_down", "mode_in", "cruise1.mode_in")
                .connect("speed_down", "speed_in", "cruise1.ref_speed")
                .connect("ctl", "cruise1.ctl", "cruise2.ctl_in")
        })
        .system("CruiseControl", |s| s)
        .implementation("CruiseControl.impl", Category::System, |i| {
            i.sub("hci", Category::System, "HCI.impl")
                .sub("ccl", Category::System, "CruiseControlLaws.impl")
                .sub("hci_processor", Category::Processor, "ppc")
                .sub("ccl_processor", Category::Processor, "ppc")
                .sub("bus0", Category::Bus, "vme")
                .connect("mode_sib", "hci.mode_out", "ccl.mode_in")
                .bind_bus("bus0")
                .connect("speed_sib", "hci.speed_out", "ccl.speed_in")
                .bind_bus("bus0")
                .bind_processor("hci.button_panel", "hci_processor")
                .bind_processor("hci.driver_mode_logic", "hci_processor")
                .bind_processor("hci.ref_speed", "hci_processor")
                .bind_processor("hci.instrument_panel", "hci_processor")
                .bind_processor("ccl.cruise1", "ccl_processor")
                .bind_processor("ccl.cruise2", "ccl_processor")
        })
        .build()
}

fn with_timing(t: crate::builder::TypeBuilder, (p, cmin, cmax): Timing) -> crate::builder::TypeBuilder {
    t.prop_enum(names::DISPATCH_PROTOCOL, "Periodic")
        .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(p)))
        .prop(
            names::COMPUTE_EXECUTION_TIME,
            PropertyValue::TimeRange(TimeVal::ms(cmin), TimeVal::ms(cmax)),
        )
        .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(p)))
}

/// The cruise-control package of Fig. 1 with the nominal (schedulable)
/// timing, scheduled by RMS.
pub fn cruise_control() -> Package {
    cruise_control_with(&NOMINAL, "RMS")
}

/// The cruise-control package with an overloaded `CruiseControlLaws`
/// subsystem (utilization 1.2 on `ccl_processor`) — not schedulable.
pub fn cruise_control_overloaded() -> Package {
    cruise_control_with(&OVERLOADED, "RMS")
}

/// Cruise control with a chosen scheduling protocol on both processors.
pub fn cruise_control_scheduled(protocol: &str) -> Package {
    cruise_control_with(&NOMINAL, protocol)
}

/// Instantiate the nominal cruise-control model.
pub fn cruise_control_model() -> InstanceModel {
    instantiate(&cruise_control(), "CruiseControl.impl").expect("cruise control instantiates")
}

/// A minimal two-thread single-processor package: a periodic producer raising
/// an event consumed by a sporadic handler — the smallest model exercising
/// dispatchers, a queue process and assumption 2 of §4.1.
pub fn producer_handler(queue_size: i64, overflow: &str) -> Package {
    PackageBuilder::new("ProducerHandler")
        .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "DMS"))
        .thread("Producer", |t| {
            t.out_event_port("alarm")
                .prop_enum(names::DISPATCH_PROTOCOL, "Periodic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(20)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(5), TimeVal::ms(5)),
                )
                .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(20)))
        })
        .thread("Handler", |t| {
            t.in_event_port("trigger")
                .feature_prop(names::QUEUE_SIZE, PropertyValue::Int(queue_size))
                .feature_prop(
                    names::OVERFLOW_HANDLING_PROTOCOL,
                    PropertyValue::Enum(overflow.to_owned()),
                )
                .prop_enum(names::DISPATCH_PROTOCOL, "Sporadic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(20)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(5), TimeVal::ms(5)),
                )
                .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(15)))
        })
        .system("Top", |s| s)
        .implementation("Top.impl", Category::System, |i| {
            i.sub("cpu", Category::Processor, "cpu_t")
                .sub("producer", Category::Thread, "Producer")
                .sub("handler", Category::Thread, "Handler")
                .connect("alarm_conn", "producer.alarm", "handler.trigger")
                .bind_processor("producer", "cpu")
                .bind_processor("handler", "cpu")
        })
        .build()
}

/// A three-processor flight-control system exercising every modeled AADL
/// feature at once: a periodic GPS *device* stimulating a *sporadic* filter,
/// a bus-bound data path into the control processor, an *aperiodic* alert
/// handler fed through a bounded queue, and a *shared data* component
/// accessed from two processors.
///
/// ```text
/// gps (device, 40 ms) ──event──▶ nav_filter (sporadic, sensor_cpu)
/// imu_reader (periodic, sensor_cpu)
/// nav_filter ──data/bus──▶ autopilot (periodic, control_cpu)
/// autopilot ──data──▶ servo_driver (periodic, control_cpu)
/// autopilot ──event──▶ alert_mgr (aperiodic, display_cpu; queue 2, DropNewest)
/// display_update (periodic, display_cpu) ⇄ flight_state ⇄ autopilot (shared data)
/// ```
///
/// The timing (quantum 5 ms) keeps every processor comfortably below
/// utilization 0.6, so the system is schedulable — the "everything at once"
/// regression model for tests and benches.
pub fn flight_control() -> Package {
    let periodic = |p: i64, c: i64, d: i64| {
        move |t: crate::builder::TypeBuilder| {
            t.prop_enum(names::DISPATCH_PROTOCOL, "Periodic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(p)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(c), TimeVal::ms(c)),
                )
                .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(d)))
        }
    };
    PackageBuilder::new("FlightControl")
        .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
        .bus("backbone")
        .component("state_t", Category::Data, |d| d)
        .device("Gps", |d| {
            d.out_event_data_port("fix")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(40)))
        })
        .thread("NavFilter", |t| {
            t.in_event_data_port("fix_in")
                .feature_prop(names::QUEUE_SIZE, PropertyValue::Int(1))
                .out_data_port("position")
                .prop_enum(names::DISPATCH_PROTOCOL, "Sporadic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(40)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(5), TimeVal::ms(10)),
                )
                .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(20)))
        })
        .thread("ImuReader", |t| periodic(20, 5, 20)(t))
        .thread("Autopilot", |t| {
            periodic(20, 5, 20)(
                t.in_data_port("position_in")
                    .out_data_port("servo_cmd")
                    .out_event_port("alert"),
            )
        })
        .thread("ServoDriver", |t| periodic(20, 5, 20)(t.in_data_port("cmd")))
        .thread("AlertMgr", |t| {
            t.in_event_port("alert_in")
                .feature_prop(names::QUEUE_SIZE, PropertyValue::Int(2))
                .feature_prop(
                    names::OVERFLOW_HANDLING_PROTOCOL,
                    PropertyValue::Enum("DropNewest".into()),
                )
                .prop_enum(names::DISPATCH_PROTOCOL, "Aperiodic")
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(5), TimeVal::ms(5)),
                )
                .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(20)))
        })
        .thread("DisplayUpdate", |t| periodic(40, 5, 40)(t))
        .system("Top", |s| s)
        .implementation("Top.impl", Category::System, |i| {
            i.sub("sensor_cpu", Category::Processor, "cpu_t")
                .sub("control_cpu", Category::Processor, "cpu_t")
                .sub("display_cpu", Category::Processor, "cpu_t")
                .sub("net", Category::Bus, "backbone")
                .sub("flight_state", Category::Data, "state_t")
                .sub("gps", Category::Device, "Gps")
                .sub("nav_filter", Category::Thread, "NavFilter")
                .sub("imu_reader", Category::Thread, "ImuReader")
                .sub("autopilot", Category::Thread, "Autopilot")
                .sub("servo_driver", Category::Thread, "ServoDriver")
                .sub("alert_mgr", Category::Thread, "AlertMgr")
                .sub("display_update", Category::Thread, "DisplayUpdate")
                .connect("c_fix", "gps.fix", "nav_filter.fix_in")
                .connect("c_pos", "nav_filter.position", "autopilot.position_in")
                .bind_bus("net")
                .connect("c_servo", "autopilot.servo_cmd", "servo_driver.cmd")
                .connect("c_alert", "autopilot.alert", "alert_mgr.alert_in")
                .connect_data_access("a_ap", "flight_state", "autopilot")
                .connect_data_access("a_disp", "flight_state", "display_update")
                .bind_processor("nav_filter", "sensor_cpu")
                .bind_processor("imu_reader", "sensor_cpu")
                .bind_processor("autopilot", "control_cpu")
                .bind_processor("servo_driver", "control_cpu")
                .bind_processor("alert_mgr", "display_cpu")
                .bind_processor("display_update", "display_cpu")
                .prop(
                    names::SCHEDULING_QUANTUM,
                    PropertyValue::Time(TimeVal::ms(5)),
                )
        })
        .build()
}

/// Instantiate the flight-control model.
pub fn flight_control_model() -> InstanceModel {
    instantiate(&flight_control(), "Top.impl").expect("flight control instantiates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::validate;
    use crate::model::PortKind;

    #[test]
    fn cruise_control_matches_fig1_inventory() {
        let m = cruise_control_model();
        assert_eq!(m.threads().count(), 6);
        assert_eq!(m.processors().count(), 2);
        assert_eq!(m.buses().count(), 1);
        // §4.1: all connections are data connections.
        assert!(m.connections.iter().all(|c| c.kind == PortKind::Data));
        // 5 semantic connections: buttons, disp, mode (3 segs), speed (3 segs), ctl.
        assert_eq!(m.connections.len(), 5);
    }

    #[test]
    fn cruise_control_validates() {
        let m = cruise_control_model();
        let errs = validate(&m);
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn bus_mapped_connections_leave_refspeed_and_drivermodelogic() {
        let m = cruise_control_model();
        let bus_srcs: Vec<String> = m
            .connections
            .iter()
            .filter(|c| !c.buses.is_empty())
            .map(|c| m.component(c.src.0).name.clone())
            .collect();
        assert_eq!(bus_srcs.len(), 2);
        assert!(bus_srcs.contains(&"driver_mode_logic".to_string()));
        assert!(bus_srcs.contains(&"ref_speed".to_string()));
    }

    #[test]
    fn bindings_partition_threads_across_processors() {
        let m = cruise_control_model();
        let hci = m.find("hci_processor").unwrap();
        let ccl = m.find("ccl_processor").unwrap();
        assert_eq!(m.threads_on(hci).len(), 4);
        assert_eq!(m.threads_on(ccl).len(), 2);
    }

    #[test]
    fn semantic_connection_crosses_hierarchy() {
        let m = cruise_control_model();
        let speed = m
            .connections
            .iter()
            .find(|c| m.component(c.src.0).name == "ref_speed")
            .unwrap();
        assert_eq!(m.component(speed.dst.0).name, "cruise1");
        // The paper: "This connection contains three syntactic connections".
        assert_eq!(speed.name.split('/').count(), 3);
    }

    #[test]
    fn overloaded_variant_also_validates() {
        let pkg = cruise_control_overloaded();
        let m = instantiate(&pkg, "CruiseControl.impl").unwrap();
        assert!(validate(&m).is_empty());
    }

    #[test]
    fn producer_handler_validates() {
        let pkg = producer_handler(1, "DropNewest");
        let m = instantiate(&pkg, "Top.impl").unwrap();
        assert!(validate(&m).is_empty());
        assert_eq!(m.connections.len(), 1);
        assert_eq!(m.connections[0].kind, PortKind::Event);
        assert_eq!(m.connections[0].properties.queue_size(), 1);
    }

    #[test]
    fn cruise_control_text_round_trips() {
        let pkg = cruise_control();
        let text = crate::pretty::render_package(&pkg);
        let reparsed = crate::parser::parse_package(&text).unwrap();
        assert_eq!(pkg, reparsed);
    }

    #[test]
    fn flight_control_validates_and_round_trips() {
        let m = flight_control_model();
        let errs = validate(&m);
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(m.threads().count(), 6);
        assert_eq!(m.processors().count(), 3);
        assert_eq!(m.devices().count(), 1);
        assert_eq!(m.accesses.len(), 2);
        let pkg = flight_control();
        let text = crate::pretty::render_package(&pkg);
        let reparsed = crate::parser::parse_package(&text).unwrap();
        assert_eq!(pkg, reparsed);
    }

    #[test]
    fn flight_control_connection_structure() {
        let m = flight_control_model();
        // 4 semantic port connections: fix (device→sporadic), pos (bus),
        // servo, alert.
        assert_eq!(m.connections.len(), 4);
        let bus_conns: Vec<_> = m
            .connections
            .iter()
            .filter(|c| !c.buses.is_empty())
            .collect();
        assert_eq!(bus_conns.len(), 1);
        assert_eq!(m.component(bus_conns[0].src.0).name, "nav_filter");
        // The alert queue has size 2.
        let alert = m
            .connections
            .iter()
            .find(|c| m.component(c.dst.0).name == "alert_mgr")
            .unwrap();
        assert_eq!(alert.properties.queue_size(), 2);
    }
}
