//! Validation of the instance model against the translation's assumptions.
//!
//! §4.1 of the paper ("Assumptions and restrictions"):
//!
//! 1. The system contains at least one thread and at least one processor;
//!    every thread is bound to a processor.
//! 2. If a thread is non-periodic (aperiodic, sporadic or background), each of
//!    its `in event` / `in event data` ports must have an incoming connection.
//! 3. Every thread specifies `Dispatch_Protocol`, `Compute_Execution_Time`
//!    and `Compute_Deadline`.
//! 4. Every processor with bound threads specifies `Scheduling_Protocol`.
//!
//! In addition we check structural health: dispatch protocols parse, periodic
//! and sporadic threads have a `Period`, execution-time ranges are ordered and
//! positive, deadlines are positive, `HPF` processors have `Priority` on every
//! bound thread, and processor-binding references resolve.

use std::fmt;

use crate::instance::{CompId, InstanceModel};
use crate::model::FeatureKind;
use crate::properties::{names, DispatchProtocol, SchedulingProtocol};

/// A validation finding (all findings are errors for the translation).
#[derive(Clone, PartialEq, Debug)]
pub enum ValidationError {
    /// The model declares no thread (assumption 1).
    NoThreads,
    /// The model declares no processor (assumption 1).
    NoProcessors,
    /// A thread has no (resolvable) processor binding (assumption 1).
    UnboundThread {
        /// Thread path.
        thread: String,
    },
    /// A required property is missing (assumptions 3–4).
    MissingProperty {
        /// Component path.
        component: String,
        /// Property name.
        property: &'static str,
    },
    /// A property is present but malformed.
    BadProperty {
        /// Component path.
        component: String,
        /// Property name.
        property: &'static str,
        /// Why it is rejected.
        reason: String,
    },
    /// A non-periodic thread has an unconnected in event / event data port
    /// (assumption 2).
    UnconnectedEventPort {
        /// Thread path.
        thread: String,
        /// Port name.
        port: String,
    },
    /// The model declares more than one mode somewhere; the paper's
    /// translation is restricted to single-mode models (§4).
    MultiMode {
        /// Component path.
        component: String,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::NoThreads => write!(f, "the model contains no thread component"),
            ValidationError::NoProcessors => {
                write!(f, "the model contains no processor component")
            }
            ValidationError::UnboundThread { thread } => {
                write!(f, "thread `{thread}` is not bound to a processor")
            }
            ValidationError::MissingProperty {
                component,
                property,
            } => write!(f, "`{component}` is missing required property {property}"),
            ValidationError::BadProperty {
                component,
                property,
                reason,
            } => write!(f, "`{component}`: bad {property}: {reason}"),
            ValidationError::UnconnectedEventPort { thread, port } => write!(
                f,
                "non-periodic thread `{thread}`: in event port `{port}` has no incoming connection"
            ),
            ValidationError::MultiMode { component } => write!(
                f,
                "`{component}` declares multiple modes; the translation handles single-mode models only"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Check the §4.1 assumptions; returns all findings (empty = valid).
pub fn validate(model: &InstanceModel) -> Vec<ValidationError> {
    let mut errors = Vec::new();

    let threads: Vec<CompId> = model.threads().map(|t| t.id).collect();
    if threads.is_empty() {
        errors.push(ValidationError::NoThreads);
    }
    if model.processors().next().is_none() {
        errors.push(ValidationError::NoProcessors);
    }

    for &tid in &threads {
        let t = model.component(tid);
        let path = t.display_path().to_owned();

        if model.bound_processor(tid).is_none() {
            errors.push(ValidationError::UnboundThread {
                thread: path.clone(),
            });
        }

        // Required properties (assumption 3).
        let dispatch = match t.properties.get(names::DISPATCH_PROTOCOL) {
            None => {
                errors.push(ValidationError::MissingProperty {
                    component: path.clone(),
                    property: names::DISPATCH_PROTOCOL,
                });
                None
            }
            Some(v) => match v.as_enum().and_then(DispatchProtocol::parse) {
                Some(d) => Some(d),
                None => {
                    errors.push(ValidationError::BadProperty {
                        component: path.clone(),
                        property: names::DISPATCH_PROTOCOL,
                        reason: format!("unrecognized value `{v}`"),
                    });
                    None
                }
            },
        };

        match t.properties.compute_execution_time() {
            None => errors.push(ValidationError::MissingProperty {
                component: path.clone(),
                property: names::COMPUTE_EXECUTION_TIME,
            }),
            Some((lo, hi)) => {
                if lo.as_ps() <= 0 || hi < lo {
                    errors.push(ValidationError::BadProperty {
                        component: path.clone(),
                        property: names::COMPUTE_EXECUTION_TIME,
                        reason: format!("range {lo} .. {hi} must be positive and ordered"),
                    });
                }
            }
        }

        // Background threads run without a deadline; everyone else needs one.
        if dispatch != Some(DispatchProtocol::Background) {
            match t.properties.compute_deadline() {
                None => errors.push(ValidationError::MissingProperty {
                    component: path.clone(),
                    property: names::COMPUTE_DEADLINE,
                }),
                Some(d) if d.as_ps() <= 0 => errors.push(ValidationError::BadProperty {
                    component: path.clone(),
                    property: names::COMPUTE_DEADLINE,
                    reason: format!("deadline {d} must be positive"),
                }),
                Some(_) => {}
            }
        }

        // Periodic/sporadic threads need a period / minimum separation.
        if matches!(
            dispatch,
            Some(DispatchProtocol::Periodic) | Some(DispatchProtocol::Sporadic)
        ) && t.properties.period().is_none()
        {
            errors.push(ValidationError::MissingProperty {
                component: path.clone(),
                property: names::PERIOD,
            });
        }

        // Assumption 2: event-driven threads must have every in event port
        // connected (otherwise they can never be dispatched).
        if dispatch.is_some_and(DispatchProtocol::is_event_driven) {
            let incoming = model.connections_to(tid);
            for (fi, feat) in t.features.iter().enumerate() {
                let FeatureKind::Port { dir, kind } = &feat.kind else {
                    continue;
                };
                if dir.is_in() && kind.is_queued() {
                    let connected = incoming.iter().any(|c| c.dst == (tid, fi));
                    if !connected {
                        errors.push(ValidationError::UnconnectedEventPort {
                            thread: path.clone(),
                            port: feat.name.clone(),
                        });
                    }
                }
            }
        }
    }

    // Assumption 4 + HPF priorities.
    for proc in model.processors() {
        let bound = model.threads_on(proc.id);
        if bound.is_empty() {
            continue;
        }
        let ppath = proc.display_path().to_owned();
        match proc.properties.get(names::SCHEDULING_PROTOCOL) {
            None => errors.push(ValidationError::MissingProperty {
                component: ppath.clone(),
                property: names::SCHEDULING_PROTOCOL,
            }),
            Some(v) => match v.as_enum().and_then(SchedulingProtocol::parse) {
                None => errors.push(ValidationError::BadProperty {
                    component: ppath.clone(),
                    property: names::SCHEDULING_PROTOCOL,
                    reason: format!("unrecognized value `{v}`"),
                }),
                Some(SchedulingProtocol::Hpf) => {
                    for tid in bound {
                        let t = model.component(tid);
                        if t.properties.priority().is_none() {
                            errors.push(ValidationError::MissingProperty {
                                component: t.display_path().to_owned(),
                                property: names::PRIORITY,
                            });
                        }
                    }
                }
                Some(_) => {}
            },
        }
    }

    // Mode restriction (§4).
    for c in model.components() {
        if c.modes.len() > 1 {
            errors.push(ValidationError::MultiMode {
                component: c.display_path().to_owned(),
            });
        }
    }

    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PackageBuilder;
    use crate::instance::instantiate;
    use crate::model::Category;
    use crate::properties::{PropertyValue, TimeVal};

    fn valid_pkg() -> crate::model::Package {
        PackageBuilder::new("V")
            .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
            .periodic_thread(
                "T",
                TimeVal::ms(10),
                (TimeVal::ms(2), TimeVal::ms(2)),
                TimeVal::ms(10),
            )
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("t", Category::Thread, "T")
                    .bind_processor("t", "cpu")
            })
            .build()
    }

    #[test]
    fn valid_model_passes() {
        let m = instantiate(&valid_pkg(), "Top.impl").unwrap();
        assert!(validate(&m).is_empty());
    }

    #[test]
    fn unbound_thread_is_flagged() {
        let pkg = PackageBuilder::new("U")
            .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
            .periodic_thread(
                "T",
                TimeVal::ms(10),
                (TimeVal::ms(2), TimeVal::ms(2)),
                TimeVal::ms(10),
            )
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("t", Category::Thread, "T")
            })
            .build();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        let errs = validate(&m);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::UnboundThread { thread } if thread == "t")));
    }

    #[test]
    fn missing_properties_are_flagged() {
        let pkg = PackageBuilder::new("M")
            .processor("cpu_t", |p| p)
            .thread("T", |t| t) // nothing specified
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("t", Category::Thread, "T")
                    .bind_processor("t", "cpu")
            })
            .build();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        let errs = validate(&m);
        let missing: Vec<&str> = errs
            .iter()
            .filter_map(|e| match e {
                ValidationError::MissingProperty { property, .. } => Some(*property),
                _ => None,
            })
            .collect();
        assert!(missing.contains(&names::DISPATCH_PROTOCOL));
        assert!(missing.contains(&names::COMPUTE_EXECUTION_TIME));
        assert!(missing.contains(&names::COMPUTE_DEADLINE));
        assert!(missing.contains(&names::SCHEDULING_PROTOCOL));
    }

    #[test]
    fn empty_model_is_flagged() {
        let pkg = PackageBuilder::new("E")
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| i)
            .build();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        let errs = validate(&m);
        assert!(errs.contains(&ValidationError::NoThreads));
        assert!(errs.contains(&ValidationError::NoProcessors));
    }

    #[test]
    fn sporadic_thread_without_connection_is_flagged() {
        let pkg = PackageBuilder::new("S")
            .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
            .sporadic_thread(
                "T",
                TimeVal::ms(20),
                (TimeVal::ms(2), TimeVal::ms(2)),
                TimeVal::ms(20),
            )
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("t", Category::Thread, "T")
                    .bind_processor("t", "cpu")
            })
            .build();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        let errs = validate(&m);
        assert!(errs.iter().any(|e| matches!(
            e,
            ValidationError::UnconnectedEventPort { port, .. } if port == "trigger"
        )));
    }

    #[test]
    fn bad_execution_time_range_is_flagged() {
        let pkg = PackageBuilder::new("B")
            .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
            .periodic_thread(
                "T",
                TimeVal::ms(10),
                (TimeVal::ms(5), TimeVal::ms(2)), // hi < lo
                TimeVal::ms(10),
            )
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("t", Category::Thread, "T")
                    .bind_processor("t", "cpu")
            })
            .build();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        assert!(validate(&m).iter().any(|e| matches!(
            e,
            ValidationError::BadProperty { property, .. } if *property == names::COMPUTE_EXECUTION_TIME
        )));
    }

    #[test]
    fn hpf_requires_thread_priorities() {
        let pkg = PackageBuilder::new("H")
            .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "HPF"))
            .periodic_thread(
                "T",
                TimeVal::ms(10),
                (TimeVal::ms(2), TimeVal::ms(2)),
                TimeVal::ms(10),
            )
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("t", Category::Thread, "T")
                    .bind_processor("t", "cpu")
            })
            .build();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        assert!(validate(&m).iter().any(|e| matches!(
            e,
            ValidationError::MissingProperty { property, .. } if *property == names::PRIORITY
        )));
    }

    #[test]
    fn multi_mode_is_flagged() {
        let pkg = PackageBuilder::new("MM")
            .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
            .periodic_thread(
                "T",
                TimeVal::ms(10),
                (TimeVal::ms(2), TimeVal::ms(2)),
                TimeVal::ms(10),
            )
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("t", Category::Thread, "T")
                    .bind_processor("t", "cpu")
                    .mode("nominal", true)
                    .mode("degraded", false)
            })
            .build();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        assert!(validate(&m)
            .iter()
            .any(|e| matches!(e, ValidationError::MultiMode { .. })));
        assert!(!m.is_single_mode());
    }

    #[test]
    fn background_thread_needs_no_deadline() {
        let pkg = PackageBuilder::new("BG")
            .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
            .thread("T", |t| {
                t.prop_enum(names::DISPATCH_PROTOCOL, "Background").prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(5), TimeVal::ms(5)),
                )
            })
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("t", Category::Thread, "T")
                    .bind_processor("t", "cpu")
            })
            .build();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        assert!(validate(&m).is_empty());
    }
}
