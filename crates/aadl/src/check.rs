//! Validation of the instance model against the translation's assumptions.
//!
//! §4.1 of the paper ("Assumptions and restrictions"):
//!
//! 1. The system contains at least one thread and at least one processor;
//!    every thread is bound to a processor.
//! 2. If a thread is non-periodic (aperiodic, sporadic or background), each of
//!    its `in event` / `in event data` ports must have an incoming connection.
//! 3. Every thread specifies `Dispatch_Protocol`, `Compute_Execution_Time`
//!    and `Compute_Deadline`.
//! 4. Every processor with bound threads specifies `Scheduling_Protocol`.
//!
//! In addition we check structural health: dispatch protocols parse, periodic
//! and sporadic threads have a `Period`, execution-time ranges are ordered and
//! positive, deadlines are positive, `HPF` processors have `Priority` on every
//! bound thread, and processor-binding references resolve.

use std::collections::BTreeMap;
use std::fmt;

use crate::instance::{AccessInstance, CompId, InstanceModel};
use crate::model::FeatureKind;
use crate::properties::{
    names, ConcurrencyControlProtocol, DispatchProtocol, SchedulingProtocol, SrcSpan,
};

/// A validation finding (all findings are errors for the translation).
#[derive(Clone, PartialEq, Debug)]
pub enum ValidationError {
    /// The model declares no thread (assumption 1).
    NoThreads,
    /// The model declares no processor (assumption 1).
    NoProcessors,
    /// A thread has no (resolvable) processor binding (assumption 1).
    UnboundThread {
        /// Thread path.
        thread: String,
    },
    /// A required property is missing (assumptions 3–4).
    MissingProperty {
        /// Component path.
        component: String,
        /// Property name.
        property: &'static str,
    },
    /// A property is present but malformed.
    BadProperty {
        /// Component path.
        component: String,
        /// Property name.
        property: &'static str,
        /// Why it is rejected.
        reason: String,
        /// Source position of the offending association (parsed models only).
        span: Option<SrcSpan>,
    },
    /// A non-periodic thread has an unconnected in event / event data port
    /// (assumption 2).
    UnconnectedEventPort {
        /// Thread path.
        thread: String,
        /// Port name.
        port: String,
    },
    /// The model declares more than one mode somewhere; the paper's
    /// translation is restricted to single-mode models (§4).
    MultiMode {
        /// Component path.
        component: String,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::NoThreads => write!(f, "the model contains no thread component"),
            ValidationError::NoProcessors => {
                write!(f, "the model contains no processor component")
            }
            ValidationError::UnboundThread { thread } => {
                write!(f, "thread `{thread}` is not bound to a processor")
            }
            ValidationError::MissingProperty {
                component,
                property,
            } => write!(f, "`{component}` is missing required property {property}"),
            ValidationError::BadProperty {
                component,
                property,
                reason,
                ..
            } => write!(f, "`{component}`: bad {property}: {reason}"),
            ValidationError::UnconnectedEventPort { thread, port } => write!(
                f,
                "non-periodic thread `{thread}`: in event port `{port}` has no incoming connection"
            ),
            ValidationError::MultiMode { component } => write!(
                f,
                "`{component}` declares multiple modes; the translation handles single-mode models only"
            ),
        }
    }
}

impl ValidationError {
    /// The name of the property this finding is about, when it is about one.
    pub fn property(&self) -> Option<&'static str> {
        match self {
            ValidationError::MissingProperty { property, .. }
            | ValidationError::BadProperty { property, .. } => Some(property),
            _ => None,
        }
    }

    /// The source position of the rejected property association, when the
    /// model was parsed from text.
    pub fn span(&self) -> Option<SrcSpan> {
        match self {
            ValidationError::BadProperty { span, .. } => *span,
            _ => None,
        }
    }
}

impl std::error::Error for ValidationError {}

/// Check the §4.1 assumptions; returns all findings (empty = valid).
pub fn validate(model: &InstanceModel) -> Vec<ValidationError> {
    let mut errors = Vec::new();

    let threads: Vec<CompId> = model.threads().map(|t| t.id).collect();
    if threads.is_empty() {
        errors.push(ValidationError::NoThreads);
    }
    if model.processors().next().is_none() {
        errors.push(ValidationError::NoProcessors);
    }

    for &tid in &threads {
        let t = model.component(tid);
        let path = t.display_path().to_owned();

        if model.bound_processor(tid).is_none() {
            errors.push(ValidationError::UnboundThread {
                thread: path.clone(),
            });
        }

        // Required properties (assumption 3).
        let dispatch = match t.properties.get(names::DISPATCH_PROTOCOL) {
            None => {
                errors.push(ValidationError::MissingProperty {
                    component: path.clone(),
                    property: names::DISPATCH_PROTOCOL,
                });
                None
            }
            Some(v) => match v.as_enum().and_then(DispatchProtocol::parse) {
                Some(d) => Some(d),
                None => {
                    errors.push(ValidationError::BadProperty {
                        component: path.clone(),
                        property: names::DISPATCH_PROTOCOL,
                        reason: format!("unrecognized value `{v}`"),
                        span: t.properties.span_of(names::DISPATCH_PROTOCOL),
                    });
                    None
                }
            },
        };

        match t.properties.compute_execution_time() {
            None => errors.push(ValidationError::MissingProperty {
                component: path.clone(),
                property: names::COMPUTE_EXECUTION_TIME,
            }),
            Some((lo, hi)) => {
                if lo.as_ps() <= 0 || hi < lo {
                    errors.push(ValidationError::BadProperty {
                        component: path.clone(),
                        property: names::COMPUTE_EXECUTION_TIME,
                        reason: format!("range {lo} .. {hi} must be positive and ordered"),
                        span: t.properties.span_of(names::COMPUTE_EXECUTION_TIME),
                    });
                }
            }
        }

        // Background threads run without a deadline; everyone else needs one.
        if dispatch != Some(DispatchProtocol::Background) {
            match t.properties.compute_deadline() {
                None => errors.push(ValidationError::MissingProperty {
                    component: path.clone(),
                    property: names::COMPUTE_DEADLINE,
                }),
                Some(d) if d.as_ps() <= 0 => errors.push(ValidationError::BadProperty {
                    component: path.clone(),
                    property: names::COMPUTE_DEADLINE,
                    reason: format!("deadline {d} must be positive"),
                    span: t.properties.span_of(names::COMPUTE_DEADLINE),
                }),
                Some(_) => {}
            }
        }

        // Periodic/sporadic threads need a period / minimum separation.
        if matches!(
            dispatch,
            Some(DispatchProtocol::Periodic) | Some(DispatchProtocol::Sporadic)
        ) && t.properties.period().is_none()
        {
            errors.push(ValidationError::MissingProperty {
                component: path.clone(),
                property: names::PERIOD,
            });
        }

        // Assumption 2: event-driven threads must have every in event port
        // connected (otherwise they can never be dispatched).
        if dispatch.is_some_and(DispatchProtocol::is_event_driven) {
            let incoming = model.connections_to(tid);
            for (fi, feat) in t.features.iter().enumerate() {
                let FeatureKind::Port { dir, kind } = &feat.kind else {
                    continue;
                };
                if dir.is_in() && kind.is_queued() {
                    let connected = incoming.iter().any(|c| c.dst == (tid, fi));
                    if !connected {
                        errors.push(ValidationError::UnconnectedEventPort {
                            thread: path.clone(),
                            port: feat.name.clone(),
                        });
                    }
                }
            }
        }
    }

    // Assumption 4 + HPF priorities.
    for proc in model.processors() {
        let bound = model.threads_on(proc.id);
        if bound.is_empty() {
            continue;
        }
        let ppath = proc.display_path().to_owned();
        match proc.properties.get(names::SCHEDULING_PROTOCOL) {
            None => errors.push(ValidationError::MissingProperty {
                component: ppath.clone(),
                property: names::SCHEDULING_PROTOCOL,
            }),
            Some(v) => match v.as_enum().and_then(SchedulingProtocol::parse) {
                None => errors.push(ValidationError::BadProperty {
                    component: ppath.clone(),
                    property: names::SCHEDULING_PROTOCOL,
                    reason: format!("unrecognized value `{v}`"),
                    span: proc.properties.span_of(names::SCHEDULING_PROTOCOL),
                }),
                Some(SchedulingProtocol::Hpf) => {
                    for tid in bound {
                        let t = model.component(tid);
                        if t.properties.priority().is_none() {
                            errors.push(ValidationError::MissingProperty {
                                component: t.display_path().to_owned(),
                                property: names::PRIORITY,
                            });
                        }
                    }
                }
                Some(_) => {}
            },
        }
    }

    // Shared-data concurrency control (§7 extension): protocol literals
    // parse, critical sections are consistent with the accessors' timing,
    // and ceilings are computable (all accessors bound, static policies).
    check_concurrency_control(model, &mut errors);

    // Mode restriction (§4).
    for c in model.components() {
        if c.modes.len() > 1 {
            errors.push(ValidationError::MultiMode {
                component: c.display_path().to_owned(),
            });
        }
    }

    errors
}

fn check_concurrency_control(model: &InstanceModel, errors: &mut Vec<ValidationError>) {
    let mut by_data: BTreeMap<CompId, Vec<&AccessInstance>> = BTreeMap::new();
    for acc in &model.accesses {
        by_data.entry(acc.data).or_default().push(acc);
    }
    // Threads with more than one protocol-managed access are rejected: the
    // translation models one critical section per dispatch.
    let mut managed_per_thread: BTreeMap<CompId, usize> = BTreeMap::new();

    for (data, accs) in &by_data {
        let d = model.component(*data);
        let dpath = d.display_path().to_owned();

        let protocol = match d.properties.get(names::CONCURRENCY_CONTROL_PROTOCOL) {
            None => ConcurrencyControlProtocol::NoneSpecified,
            Some(v) => match v.as_enum().and_then(ConcurrencyControlProtocol::parse) {
                Some(p) => p,
                None => {
                    errors.push(ValidationError::BadProperty {
                        component: dpath.clone(),
                        property: names::CONCURRENCY_CONTROL_PROTOCOL,
                        reason: format!(
                            "unrecognized value `{v}` (expected None_Specified, \
                             Priority_Inheritance or Priority_Ceiling)"
                        ),
                        span: d.properties.span_of(names::CONCURRENCY_CONTROL_PROTOCOL),
                    });
                    continue;
                }
            },
        };

        // The data-level critical-section time is the fallback for accesses
        // that declare none of their own.
        if d.properties
            .get(names::CRITICAL_SECTION_EXECUTION_TIME)
            .is_some()
            && d.properties.critical_section_time().is_none()
        {
            errors.push(ValidationError::BadProperty {
                component: dpath.clone(),
                property: names::CRITICAL_SECTION_EXECUTION_TIME,
                reason: "must be a time value".into(),
                span: d.properties.span_of(names::CRITICAL_SECTION_EXECUTION_TIME),
            });
            continue;
        }
        let data_cs = d.properties.critical_section_time();

        let mut any_cs = false;
        let mut missing_cs: Vec<&str> = Vec::new();
        for acc in accs {
            let t = model.component(acc.thread);
            let tpath = t.display_path().to_owned();
            if acc
                .properties
                .get(names::CRITICAL_SECTION_EXECUTION_TIME)
                .is_some()
                && acc.properties.critical_section_time().is_none()
            {
                errors.push(ValidationError::BadProperty {
                    component: format!("{tpath} (access `{}`)", acc.name),
                    property: names::CRITICAL_SECTION_EXECUTION_TIME,
                    reason: "must be a time value".into(),
                    span: acc
                        .properties
                        .span_of(names::CRITICAL_SECTION_EXECUTION_TIME),
                });
                continue;
            }
            let Some(cs) = acc.properties.critical_section_time().or(data_cs) else {
                missing_cs.push(t.display_path());
                continue;
            };
            any_cs = true;
            *managed_per_thread.entry(acc.thread).or_default() += 1;
            // The critical section is the leading part of the compute phase:
            // 0 < cs ≤ min execution time.
            if let Some((lo, _)) = t.properties.compute_execution_time() {
                if cs.as_ps() <= 0 || cs.as_ps() > lo.as_ps() {
                    errors.push(ValidationError::BadProperty {
                        component: format!("{tpath} (access `{}`)", acc.name),
                        property: names::CRITICAL_SECTION_EXECUTION_TIME,
                        reason: format!(
                            "critical section {cs} must be positive and no longer than \
                             the minimum execution time {lo}"
                        ),
                        span: acc
                            .properties
                            .span_of(names::CRITICAL_SECTION_EXECUTION_TIME),
                    });
                }
            }
        }

        // Either every accessor runs a critical section or none does; a mix
        // has no coherent protocol semantics.
        if any_cs && !missing_cs.is_empty() {
            errors.push(ValidationError::BadProperty {
                component: dpath.clone(),
                property: names::CRITICAL_SECTION_EXECUTION_TIME,
                reason: format!(
                    "accessor(s) {} declare no critical-section time while others do",
                    missing_cs
                        .iter()
                        .map(|t| format!("`{t}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                span: d.properties.span_of(names::CONCURRENCY_CONTROL_PROTOCOL),
            });
        }

        if protocol == ConcurrencyControlProtocol::NoneSpecified {
            continue;
        }

        // PIP/PCP ask for elevation, which needs critical sections to exist…
        if !any_cs {
            errors.push(ValidationError::BadProperty {
                component: dpath.clone(),
                property: names::CONCURRENCY_CONTROL_PROTOCOL,
                reason: format!(
                    "{protocol} requires {} on the data component or its accesses",
                    names::CRITICAL_SECTION_EXECUTION_TIME
                ),
                span: d.properties.span_of(names::CONCURRENCY_CONTROL_PROTOCOL),
            });
            continue;
        }
        // …and static priorities for every accessor: the ceiling (and the
        // inherited priority) must be computable at translation time.
        for acc in accs {
            let t = model.component(acc.thread);
            let Some(proc) = model.bound_processor(acc.thread) else {
                // UnboundThread is already reported.
                continue;
            };
            match model.component(proc).properties.scheduling_protocol() {
                Some(p) if p.is_static() => {}
                Some(p) => errors.push(ValidationError::BadProperty {
                    component: dpath.clone(),
                    property: names::CONCURRENCY_CONTROL_PROTOCOL,
                    reason: format!(
                        "{protocol} needs a static scheduling protocol for accessor \
                         `{}`, but its processor runs {p}",
                        t.display_path()
                    ),
                    span: d.properties.span_of(names::CONCURRENCY_CONTROL_PROTOCOL),
                }),
                None => {} // Missing/bad Scheduling_Protocol is already reported.
            }
        }
    }

    for (thread, n) in managed_per_thread {
        if n > 1 {
            errors.push(ValidationError::BadProperty {
                component: model.component(thread).display_path().to_owned(),
                property: names::CRITICAL_SECTION_EXECUTION_TIME,
                reason: format!(
                    "thread holds {n} protocol-managed data accesses; at most one \
                     critical section per thread is supported"
                ),
                span: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PackageBuilder;
    use crate::instance::instantiate;
    use crate::model::Category;
    use crate::properties::{PropertyValue, TimeVal};

    fn valid_pkg() -> crate::model::Package {
        PackageBuilder::new("V")
            .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
            .periodic_thread(
                "T",
                TimeVal::ms(10),
                (TimeVal::ms(2), TimeVal::ms(2)),
                TimeVal::ms(10),
            )
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("t", Category::Thread, "T")
                    .bind_processor("t", "cpu")
            })
            .build()
    }

    #[test]
    fn valid_model_passes() {
        let m = instantiate(&valid_pkg(), "Top.impl").unwrap();
        assert!(validate(&m).is_empty());
    }

    #[test]
    fn unbound_thread_is_flagged() {
        let pkg = PackageBuilder::new("U")
            .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
            .periodic_thread(
                "T",
                TimeVal::ms(10),
                (TimeVal::ms(2), TimeVal::ms(2)),
                TimeVal::ms(10),
            )
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("t", Category::Thread, "T")
            })
            .build();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        let errs = validate(&m);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::UnboundThread { thread } if thread == "t")));
    }

    #[test]
    fn missing_properties_are_flagged() {
        let pkg = PackageBuilder::new("M")
            .processor("cpu_t", |p| p)
            .thread("T", |t| t) // nothing specified
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("t", Category::Thread, "T")
                    .bind_processor("t", "cpu")
            })
            .build();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        let errs = validate(&m);
        let missing: Vec<&str> = errs
            .iter()
            .filter_map(|e| match e {
                ValidationError::MissingProperty { property, .. } => Some(*property),
                _ => None,
            })
            .collect();
        assert!(missing.contains(&names::DISPATCH_PROTOCOL));
        assert!(missing.contains(&names::COMPUTE_EXECUTION_TIME));
        assert!(missing.contains(&names::COMPUTE_DEADLINE));
        assert!(missing.contains(&names::SCHEDULING_PROTOCOL));
    }

    #[test]
    fn empty_model_is_flagged() {
        let pkg = PackageBuilder::new("E")
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| i)
            .build();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        let errs = validate(&m);
        assert!(errs.contains(&ValidationError::NoThreads));
        assert!(errs.contains(&ValidationError::NoProcessors));
    }

    #[test]
    fn sporadic_thread_without_connection_is_flagged() {
        let pkg = PackageBuilder::new("S")
            .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
            .sporadic_thread(
                "T",
                TimeVal::ms(20),
                (TimeVal::ms(2), TimeVal::ms(2)),
                TimeVal::ms(20),
            )
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("t", Category::Thread, "T")
                    .bind_processor("t", "cpu")
            })
            .build();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        let errs = validate(&m);
        assert!(errs.iter().any(|e| matches!(
            e,
            ValidationError::UnconnectedEventPort { port, .. } if port == "trigger"
        )));
    }

    #[test]
    fn bad_execution_time_range_is_flagged() {
        let pkg = PackageBuilder::new("B")
            .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
            .periodic_thread(
                "T",
                TimeVal::ms(10),
                (TimeVal::ms(5), TimeVal::ms(2)), // hi < lo
                TimeVal::ms(10),
            )
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("t", Category::Thread, "T")
                    .bind_processor("t", "cpu")
            })
            .build();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        assert!(validate(&m).iter().any(|e| matches!(
            e,
            ValidationError::BadProperty { property, .. } if *property == names::COMPUTE_EXECUTION_TIME
        )));
    }

    #[test]
    fn hpf_requires_thread_priorities() {
        let pkg = PackageBuilder::new("H")
            .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "HPF"))
            .periodic_thread(
                "T",
                TimeVal::ms(10),
                (TimeVal::ms(2), TimeVal::ms(2)),
                TimeVal::ms(10),
            )
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("t", Category::Thread, "T")
                    .bind_processor("t", "cpu")
            })
            .build();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        assert!(validate(&m).iter().any(|e| matches!(
            e,
            ValidationError::MissingProperty { property, .. } if *property == names::PRIORITY
        )));
    }

    #[test]
    fn multi_mode_is_flagged() {
        let pkg = PackageBuilder::new("MM")
            .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
            .periodic_thread(
                "T",
                TimeVal::ms(10),
                (TimeVal::ms(2), TimeVal::ms(2)),
                TimeVal::ms(10),
            )
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("t", Category::Thread, "T")
                    .bind_processor("t", "cpu")
                    .mode("nominal", true)
                    .mode("degraded", false)
            })
            .build();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        assert!(validate(&m)
            .iter()
            .any(|e| matches!(e, ValidationError::MultiMode { .. })));
        assert!(!m.is_single_mode());
    }

    /// Two RMS threads sharing `store` with 1 ms critical sections; `ccp`
    /// and `cs` parameterize the protocol literal and whether the accesses
    /// declare a critical-section time.
    fn shared_pkg(ccp: Option<&str>, cs: bool, protocol: &str) -> crate::model::Package {
        PackageBuilder::new("CC")
            .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, protocol))
            .component("store", Category::Data, |d| match ccp {
                Some(lit) => d.prop_enum(names::CONCURRENCY_CONTROL_PROTOCOL, lit),
                None => d,
            })
            .periodic_thread(
                "T1",
                TimeVal::ms(10),
                (TimeVal::ms(2), TimeVal::ms(2)),
                TimeVal::ms(10),
            )
            .periodic_thread(
                "T2",
                TimeVal::ms(20),
                (TimeVal::ms(4), TimeVal::ms(4)),
                TimeVal::ms(20),
            )
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| {
                let mut i = i
                    .sub("cpu", Category::Processor, "cpu_t")
                    .sub("shared", Category::Data, "store")
                    .sub("t1", Category::Thread, "T1")
                    .sub("t2", Category::Thread, "T2")
                    .bind_processor("t1", "cpu")
                    .bind_processor("t2", "cpu")
                    .connect_data_access("a1", "shared", "t1");
                if cs {
                    i = i.conn_prop(
                        names::CRITICAL_SECTION_EXECUTION_TIME,
                        PropertyValue::Time(TimeVal::ms(1)),
                    );
                }
                i = i.connect_data_access("a2", "shared", "t2");
                if cs {
                    i = i.conn_prop(
                        names::CRITICAL_SECTION_EXECUTION_TIME,
                        PropertyValue::Time(TimeVal::ms(1)),
                    );
                }
                i
            })
            .build()
    }

    #[test]
    fn priority_ceiling_model_validates() {
        let m = instantiate(&shared_pkg(Some("Priority_Ceiling"), true, "RMS"), "Top.impl")
            .unwrap();
        assert_eq!(validate(&m), vec![]);
        let m = instantiate(
            &shared_pkg(Some("Priority_Inheritance"), true, "DMS"),
            "Top.impl",
        )
        .unwrap();
        assert_eq!(validate(&m), vec![]);
    }

    #[test]
    fn unknown_protocol_literal_is_flagged() {
        let m = instantiate(&shared_pkg(Some("Mutex"), true, "RMS"), "Top.impl").unwrap();
        let errs = validate(&m);
        assert!(errs.iter().any(|e| matches!(
            e,
            ValidationError::BadProperty { property, .. }
                if *property == names::CONCURRENCY_CONTROL_PROTOCOL
        )));
        assert_eq!(errs[0].property(), Some(names::CONCURRENCY_CONTROL_PROTOCOL));
    }

    #[test]
    fn ceiling_needs_a_static_scheduling_protocol() {
        let m = instantiate(&shared_pkg(Some("Priority_Ceiling"), true, "EDF"), "Top.impl")
            .unwrap();
        assert!(validate(&m).iter().any(|e| matches!(
            e,
            ValidationError::BadProperty { reason, .. } if reason.contains("EDF")
        )));
        // No protocol: dynamic policies stay fine.
        let m = instantiate(&shared_pkg(None, false, "EDF"), "Top.impl").unwrap();
        assert_eq!(validate(&m), vec![]);
    }

    #[test]
    fn protocol_without_critical_sections_is_flagged() {
        let m = instantiate(&shared_pkg(Some("Priority_Ceiling"), false, "RMS"), "Top.impl")
            .unwrap();
        assert!(validate(&m).iter().any(|e| matches!(
            e,
            ValidationError::BadProperty { reason, .. }
                if reason.contains("Critical_Section_Execution_Time")
        )));
    }

    #[test]
    fn critical_section_must_fit_the_execution_time() {
        let pkg = PackageBuilder::new("CS")
            .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
            .component("store", Category::Data, |d| d)
            .periodic_thread(
                "T",
                TimeVal::ms(10),
                (TimeVal::ms(2), TimeVal::ms(2)),
                TimeVal::ms(10),
            )
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("shared", Category::Data, "store")
                    .sub("t", Category::Thread, "T")
                    .bind_processor("t", "cpu")
                    .connect_data_access("a", "shared", "t")
                    .conn_prop(
                        names::CRITICAL_SECTION_EXECUTION_TIME,
                        PropertyValue::Time(TimeVal::ms(5)), // > cmin = 2
                    )
            })
            .build();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        assert!(validate(&m).iter().any(|e| matches!(
            e,
            ValidationError::BadProperty { property, reason, .. }
                if *property == names::CRITICAL_SECTION_EXECUTION_TIME
                    && reason.contains("minimum execution time")
        )));
    }

    #[test]
    fn partial_critical_section_coverage_is_flagged() {
        // a1 declares a critical section, a2 does not.
        let pkg = PackageBuilder::new("Mix")
            .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
            .component("store", Category::Data, |d| d)
            .periodic_thread(
                "T1",
                TimeVal::ms(10),
                (TimeVal::ms(2), TimeVal::ms(2)),
                TimeVal::ms(10),
            )
            .periodic_thread(
                "T2",
                TimeVal::ms(20),
                (TimeVal::ms(4), TimeVal::ms(4)),
                TimeVal::ms(20),
            )
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("shared", Category::Data, "store")
                    .sub("t1", Category::Thread, "T1")
                    .sub("t2", Category::Thread, "T2")
                    .bind_processor("t1", "cpu")
                    .bind_processor("t2", "cpu")
                    .connect_data_access("a1", "shared", "t1")
                    .conn_prop(
                        names::CRITICAL_SECTION_EXECUTION_TIME,
                        PropertyValue::Time(TimeVal::ms(1)),
                    )
                    .connect_data_access("a2", "shared", "t2")
            })
            .build();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        assert!(validate(&m).iter().any(|e| matches!(
            e,
            ValidationError::BadProperty { reason, .. }
                if reason.contains("declare no critical-section time")
        )));
    }

    #[test]
    fn bad_protocol_literal_carries_its_source_span() {
        let src = r#"
package Sp
public
  processor cpu_t
    properties
      Scheduling_Protocol => RMS;
  end cpu_t;
  data store
    properties
      Concurrency_Control_Protocol => Mutex;
  end store;
  thread T
    properties
      Dispatch_Protocol => Periodic;
      Period => 10 ms;
      Compute_Execution_Time => 2 ms .. 2 ms;
      Compute_Deadline => 10 ms;
  end T;
  system Top
  end Top;
  system implementation Top.impl
    subcomponents
      cpu: processor cpu_t;
      shared: data store;
      t: thread T;
    connections
      a: data access shared -> t;
    properties
      Actual_Processor_Binding => reference (cpu) applies to t;
  end Top.impl;
end Sp;
"#;
        let pkg = crate::parser::parse_package(src).unwrap();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        let errs = validate(&m);
        let bad = errs
            .iter()
            .find(|e| e.property() == Some(names::CONCURRENCY_CONTROL_PROTOCOL))
            .expect("the unknown literal is flagged");
        let span = bad.span().expect("parsed models carry spans");
        assert_eq!(span.line, 10, "`Concurrency_Control_Protocol => Mutex;`");
    }

    #[test]
    fn background_thread_needs_no_deadline() {
        let pkg = PackageBuilder::new("BG")
            .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
            .thread("T", |t| {
                t.prop_enum(names::DISPATCH_PROTOCOL, "Background").prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(5), TimeVal::ms(5)),
                )
            })
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("t", Category::Thread, "T")
                    .bind_processor("t", "cpu")
            })
            .build();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        assert!(validate(&m).is_empty());
    }
}
