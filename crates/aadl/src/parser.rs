//! Recursive-descent parser for the AADL textual subset.
//!
//! The accepted grammar (keywords case-insensitive):
//!
//! ```text
//! package     ::= 'package' ident 'public' { classifier } 'end' ident ';'
//! classifier  ::= category 'implementation' ident '.' ident { impl_section }
//!                     'end' ident '.' ident ';'
//!               | category ident [ 'features' { feature } ]
//!                     [ 'properties' { prop } ] 'end' ident ';'
//! category    ::= 'system' | 'process' | 'thread' | 'data'
//!               | 'processor' | 'bus' | 'memory' | 'device'
//! feature     ::= ident ':' ('in'|'out'|'in' 'out')
//!                     ('data'|'event'|'event' 'data') 'port'
//!                     [ '{' { prop } '}' ] ';'
//!               | ident ':' ('requires'|'provides') ('data'|'bus') 'access'
//!                     [ classifier_ref ] ';'
//! impl_section::= 'subcomponents' { sub } | 'connections' { conn }
//!               | 'properties' { prop }   | 'modes' { mode | transition }
//! sub         ::= ident ':' category [ classifier_ref ]
//!                     [ 'in' 'modes' '(' ident {',' ident} ')' ] ';'
//! conn        ::= ident ':' 'port' endpoint '->' endpoint
//!                     [ '{' { prop } '}' ]
//!                     [ 'in' 'modes' '(' ident {',' ident} ')' ] ';'
//! endpoint    ::= ident [ '.' ident ]
//! prop        ::= ident '=>' pvalue [ 'applies' 'to' path {',' path} ] ';'
//! pvalue      ::= int [ unit ] [ '..' int [ unit ] ]
//!               | 'reference' '(' path ')' | '(' pvalue {',' pvalue} ')'
//!               | 'true' | 'false' | string | ident
//! path        ::= ident { '.' ident }
//! mode        ::= ident ':' [ 'initial' ] 'mode' ';'
//! transition  ::= ident '-[' endpoint ']->' ident ';'
//! ```

use std::fmt;

use crate::lexer::{lex, LexError, Tok, Token};
use crate::model::{
    Category, ComponentImpl, ComponentType, ConnKind, Connection, Direction, EndpointRef, Feature,
    FeatureKind, Mode, ModeTransition, Package, PortKind, PropertyAssoc, Subcomponent,
};
use crate::properties::{PropertyValue, SrcSpan, TimeUnit, TimeVal};

/// A parse error with source position.
#[derive(Clone, PartialEq, Debug)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Line (1-based); 0 when the error came from the lexer without position.
    pub line: u32,
    /// Column (1-based).
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at line {}, column {}", self.message, self.line, self.col)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            message: format!("unexpected character {:?}", e.ch),
            line: e.line,
            col: e.col,
        }
    }
}

/// Parse one AADL package from source text.
pub fn parse_package(src: &str) -> Result<Package, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.package()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn next(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        let t = self.peek();
        Err(ParseError {
            message: message.into(),
            line: t.line,
            col: t.col,
        })
    }

    /// True when the next token is the given keyword (case-insensitive).
    fn at_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().tok, Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    /// Consume the keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected keyword `{kw}`, found {}", self.peek().tok))
        }
    }

    fn expect_tok(&mut self, tok: Tok) -> Result<(), ParseError> {
        if self.peek().tok == tok {
            self.next();
            Ok(())
        } else {
            self.err(format!("expected {tok}, found {}", self.peek().tok))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match &self.peek().tok {
            Tok::Ident(s) => {
                let s = s.clone();
                self.next();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    /// `ident ['.' ident]` — a classifier reference.
    fn classifier_ref(&mut self) -> Result<String, ParseError> {
        let mut s = self.ident()?;
        if self.peek().tok == Tok::Dot {
            self.next();
            s.push('.');
            s.push_str(&self.ident()?);
        }
        Ok(s)
    }

    /// `ident {'.' ident}` — a dotted path.
    fn path(&mut self) -> Result<Vec<String>, ParseError> {
        let mut parts = vec![self.ident()?];
        while self.peek().tok == Tok::Dot {
            self.next();
            parts.push(self.ident()?);
        }
        Ok(parts)
    }

    fn category(&mut self) -> Result<Category, ParseError> {
        match &self.peek().tok {
            Tok::Ident(s) => match Category::parse(s) {
                Some(c) => {
                    self.next();
                    Ok(c)
                }
                None => self.err(format!("expected component category, found `{s}`")),
            },
            other => self.err(format!("expected component category, found {other}")),
        }
    }

    fn package(&mut self) -> Result<Package, ParseError> {
        self.expect_kw("package")?;
        let name = self.ident()?;
        self.expect_kw("public")?;
        let mut pkg = Package {
            name: name.clone(),
            types: Vec::new(),
            impls: Vec::new(),
        };
        while !self.at_kw("end") {
            self.classifier(&mut pkg)?;
        }
        self.expect_kw("end")?;
        let closing = self.ident()?;
        if !closing.eq_ignore_ascii_case(&name) {
            return self.err(format!(
                "package `{name}` closed with mismatched name `{closing}`"
            ));
        }
        self.expect_tok(Tok::Semi)?;
        Ok(pkg)
    }

    fn classifier(&mut self, pkg: &mut Package) -> Result<(), ParseError> {
        let category = self.category()?;
        if self.eat_kw("implementation") {
            let imp = self.component_impl(category)?;
            pkg.impls.push(imp);
        } else {
            let ty = self.component_type(category)?;
            pkg.types.push(ty);
        }
        Ok(())
    }

    fn component_type(&mut self, category: Category) -> Result<ComponentType, ParseError> {
        let name = self.ident()?;
        let mut ty = ComponentType {
            name: name.clone(),
            category,
            features: Vec::new(),
            properties: Vec::new(),
        };
        if self.eat_kw("features") {
            while !self.at_kw("properties") && !self.at_kw("end") {
                ty.features.push(self.feature()?);
            }
        }
        if self.eat_kw("properties") {
            while !self.at_kw("end") {
                ty.properties.push(self.property()?);
            }
        }
        self.expect_kw("end")?;
        let closing = self.ident()?;
        if !closing.eq_ignore_ascii_case(&name) {
            return self.err(format!(
                "component type `{name}` closed with mismatched name `{closing}`"
            ));
        }
        self.expect_tok(Tok::Semi)?;
        Ok(ty)
    }

    fn feature(&mut self) -> Result<Feature, ParseError> {
        let name = self.ident()?;
        self.expect_tok(Tok::Colon)?;
        let kind = if self.at_kw("requires") || self.at_kw("provides") {
            let provides = self.eat_kw("provides");
            if !provides {
                self.expect_kw("requires")?;
            }
            let cat = self.category()?;
            if !matches!(cat, Category::Data | Category::Bus) {
                return self.err("access features must be data or bus access");
            }
            self.expect_kw("access")?;
            // Optional classifier reference, ignored for analysis purposes.
            if matches!(&self.peek().tok, Tok::Ident(_)) {
                let _ = self.classifier_ref()?;
            }
            if provides {
                FeatureKind::ProvidesAccess { category: cat }
            } else {
                FeatureKind::RequiresAccess { category: cat }
            }
        } else {
            let dir = if self.eat_kw("in") {
                if self.eat_kw("out") {
                    Direction::InOut
                } else {
                    Direction::In
                }
            } else if self.eat_kw("out") {
                Direction::Out
            } else {
                return self.err("expected `in`, `out`, `requires` or `provides`");
            };
            let kind = if self.eat_kw("event") {
                if self.eat_kw("data") {
                    PortKind::EventData
                } else {
                    PortKind::Event
                }
            } else if self.eat_kw("data") {
                PortKind::Data
            } else {
                return self.err("expected `data`, `event` or `event data` port kind");
            };
            self.expect_kw("port")?;
            FeatureKind::Port { dir, kind }
        };
        let properties = self.optional_prop_block()?;
        self.expect_tok(Tok::Semi)?;
        Ok(Feature {
            name,
            kind,
            properties,
        })
    }

    fn optional_prop_block(&mut self) -> Result<Vec<PropertyAssoc>, ParseError> {
        let mut props = Vec::new();
        if self.peek().tok == Tok::LBrace {
            self.next();
            while self.peek().tok != Tok::RBrace {
                props.push(self.property()?);
            }
            self.expect_tok(Tok::RBrace)?;
        }
        Ok(props)
    }

    fn component_impl(&mut self, category: Category) -> Result<ComponentImpl, ParseError> {
        let type_name = self.ident()?;
        self.expect_tok(Tok::Dot)?;
        let impl_part = self.ident()?;
        let name = format!("{type_name}.{impl_part}");
        let mut imp = ComponentImpl {
            name: name.clone(),
            type_name,
            category,
            subcomponents: Vec::new(),
            connections: Vec::new(),
            modes: Vec::new(),
            mode_transitions: Vec::new(),
            properties: Vec::new(),
        };
        loop {
            if self.eat_kw("subcomponents") {
                while !self.at_section_end() {
                    imp.subcomponents.push(self.subcomponent()?);
                }
            } else if self.eat_kw("connections") {
                while !self.at_section_end() {
                    imp.connections.push(self.connection()?);
                }
            } else if self.eat_kw("properties") {
                while !self.at_section_end() {
                    imp.properties.push(self.property()?);
                }
            } else if self.eat_kw("modes") {
                while !self.at_section_end() {
                    self.mode_or_transition(&mut imp)?;
                }
            } else {
                break;
            }
        }
        self.expect_kw("end")?;
        let closing = self.classifier_ref()?;
        if !closing.eq_ignore_ascii_case(&name) {
            return self.err(format!(
                "implementation `{name}` closed with mismatched name `{closing}`"
            ));
        }
        self.expect_tok(Tok::Semi)?;
        Ok(imp)
    }

    fn at_section_end(&self) -> bool {
        self.at_kw("subcomponents")
            || self.at_kw("connections")
            || self.at_kw("properties")
            || self.at_kw("modes")
            || self.at_kw("end")
            || self.peek().tok == Tok::Eof
    }

    fn subcomponent(&mut self) -> Result<Subcomponent, ParseError> {
        let name = self.ident()?;
        self.expect_tok(Tok::Colon)?;
        let category = self.category()?;
        let classifier = if matches!(&self.peek().tok, Tok::Ident(_)) && !self.at_kw("in") {
            self.classifier_ref()?
        } else {
            String::new()
        };
        let in_modes = self.optional_in_modes()?;
        self.expect_tok(Tok::Semi)?;
        Ok(Subcomponent {
            name,
            category,
            classifier,
            in_modes,
        })
    }

    fn optional_in_modes(&mut self) -> Result<Vec<String>, ParseError> {
        if self.eat_kw("in") {
            self.expect_kw("modes")?;
            self.expect_tok(Tok::LParen)?;
            let mut modes = vec![self.ident()?];
            while self.peek().tok == Tok::Comma {
                self.next();
                modes.push(self.ident()?);
            }
            self.expect_tok(Tok::RParen)?;
            Ok(modes)
        } else {
            Ok(Vec::new())
        }
    }

    fn endpoint(&mut self) -> Result<EndpointRef, ParseError> {
        let first = self.ident()?;
        if self.peek().tok == Tok::Dot {
            self.next();
            let feature = self.ident()?;
            Ok(EndpointRef {
                subcomponent: Some(first),
                feature,
            })
        } else {
            Ok(EndpointRef {
                subcomponent: None,
                feature: first,
            })
        }
    }

    fn connection(&mut self) -> Result<Connection, ParseError> {
        let name = self.ident()?;
        self.expect_tok(Tok::Colon)?;
        let kind = if self.eat_kw("port") {
            ConnKind::Port
        } else if self.eat_kw("data") {
            self.expect_kw("access")?;
            ConnKind::DataAccess
        } else if self.eat_kw("bus") {
            self.expect_kw("access")?;
            ConnKind::BusAccess
        } else {
            return self.err("expected `port`, `data access` or `bus access`");
        };
        let src = if kind == ConnKind::Port {
            self.endpoint()?
        } else {
            // Access source: the accessed component itself (`shared`) or a
            // provides-access feature (`sub.f`).
            self.access_endpoint()?
        };
        self.expect_tok(Tok::Arrow)?;
        let dst = self.endpoint()?;
        let properties = self.optional_prop_block()?;
        let in_modes = self.optional_in_modes()?;
        self.expect_tok(Tok::Semi)?;
        Ok(Connection {
            name,
            kind,
            src,
            dst,
            properties,
            in_modes,
        })
    }

    /// An access-connection source: `sub` (the component itself; empty
    /// feature name) or `sub.feature`.
    fn access_endpoint(&mut self) -> Result<EndpointRef, ParseError> {
        let first = self.ident()?;
        if self.peek().tok == Tok::Dot {
            self.next();
            let feature = self.ident()?;
            Ok(EndpointRef {
                subcomponent: Some(first),
                feature,
            })
        } else {
            Ok(EndpointRef {
                subcomponent: Some(first),
                feature: String::new(),
            })
        }
    }

    fn mode_or_transition(&mut self, imp: &mut ComponentImpl) -> Result<(), ParseError> {
        let name = self.ident()?;
        match self.peek().tok {
            Tok::Colon => {
                self.next();
                let initial = self.eat_kw("initial");
                self.expect_kw("mode")?;
                self.expect_tok(Tok::Semi)?;
                imp.modes.push(Mode { name, initial });
            }
            Tok::TransArrowOpen => {
                self.next();
                let trigger = self.endpoint()?;
                self.expect_tok(Tok::TransArrowClose)?;
                let dst = self.ident()?;
                self.expect_tok(Tok::Semi)?;
                imp.mode_transitions.push(ModeTransition {
                    src: name,
                    trigger,
                    dst,
                });
            }
            _ => return self.err("expected `:` (mode) or `-[` (mode transition)"),
        }
        Ok(())
    }

    fn property(&mut self) -> Result<PropertyAssoc, ParseError> {
        let span = {
            let t = self.peek();
            SrcSpan {
                line: t.line,
                col: t.col,
            }
        };
        let name = self.ident()?;
        self.expect_tok(Tok::FatArrow)?;
        let value = self.property_value()?;
        let mut applies_to = Vec::new();
        if self.eat_kw("applies") {
            self.expect_kw("to")?;
            applies_to.push(self.path()?);
            while self.peek().tok == Tok::Comma {
                self.next();
                applies_to.push(self.path()?);
            }
        }
        self.expect_tok(Tok::Semi)?;
        Ok(PropertyAssoc {
            name,
            value,
            applies_to,
            span: Some(span),
        })
    }

    fn property_value(&mut self) -> Result<PropertyValue, ParseError> {
        match self.peek().tok.clone() {
            Tok::Int(v) => {
                self.next();
                // Optional unit, optional range.
                let unit = self.try_time_unit();
                if self.peek().tok == Tok::DotDot {
                    self.next();
                    let hi = match self.peek().tok.clone() {
                        Tok::Int(h) => {
                            self.next();
                            h
                        }
                        other => return self.err(format!("expected integer, found {other}")),
                    };
                    let hi_unit = self.try_time_unit();
                    match (unit, hi_unit) {
                        (Some(u1), Some(u2)) => Ok(PropertyValue::TimeRange(
                            TimeVal::new(v, u1),
                            TimeVal::new(hi, u2),
                        )),
                        (None, None) => Ok(PropertyValue::IntRange(v, hi)),
                        _ => self.err("range mixes unit-less and unit-carrying bounds"),
                    }
                } else {
                    match unit {
                        Some(u) => Ok(PropertyValue::Time(TimeVal::new(v, u))),
                        None => Ok(PropertyValue::Int(v)),
                    }
                }
            }
            Tok::Str(s) => {
                self.next();
                Ok(PropertyValue::Str(s))
            }
            Tok::LParen => {
                self.next();
                let mut items = vec![self.property_value()?];
                while self.peek().tok == Tok::Comma {
                    self.next();
                    items.push(self.property_value()?);
                }
                self.expect_tok(Tok::RParen)?;
                Ok(PropertyValue::List(items))
            }
            Tok::Ident(s) if s.eq_ignore_ascii_case("reference") => {
                self.next();
                self.expect_tok(Tok::LParen)?;
                let path = self.path()?;
                self.expect_tok(Tok::RParen)?;
                Ok(PropertyValue::Reference(path))
            }
            Tok::Ident(s) if s.eq_ignore_ascii_case("true") => {
                self.next();
                Ok(PropertyValue::Bool(true))
            }
            Tok::Ident(s) if s.eq_ignore_ascii_case("false") => {
                self.next();
                Ok(PropertyValue::Bool(false))
            }
            Tok::Ident(s) => {
                self.next();
                Ok(PropertyValue::Enum(s))
            }
            other => self.err(format!("expected property value, found {other}")),
        }
    }

    /// Consume an identifier that names a time unit, if the next token is one.
    fn try_time_unit(&mut self) -> Option<TimeUnit> {
        if let Tok::Ident(s) = &self.peek().tok {
            if let Some(u) = TimeUnit::parse(s) {
                self.next();
                return Some(u);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = r#"
-- A two-thread system on one processor.
package Small
public
  processor cpu_t
    properties
      Scheduling_Protocol => RMS;
  end cpu_t;

  thread Sensor
    features
      reading: out data port;
      alarm: out event port;
    properties
      Dispatch_Protocol => Periodic;
      Period => 20 ms;
      Compute_Execution_Time => 3 ms .. 5 ms;
      Compute_Deadline => 20 ms;
  end Sensor;

  thread Handler
    features
      trigger: in event port { Queue_Size => 2; Overflow_Handling_Protocol => Error; };
    properties
      Dispatch_Protocol => Sporadic;
      Period => 40 ms;
      Compute_Execution_Time => 4 ms .. 4 ms;
      Compute_Deadline => 30 ms;
  end Handler;

  system Top
  end Top;

  system implementation Top.impl
    subcomponents
      cpu: processor cpu_t;
      sensor: thread Sensor;
      handler: thread Handler;
    connections
      c1: port sensor.alarm -> handler.trigger { Urgency => 3; };
    properties
      Actual_Processor_Binding => reference (cpu) applies to sensor, handler;
  end Top.impl;
end Small;
"#;

    #[test]
    fn parses_the_small_package() {
        let pkg = parse_package(SMALL).unwrap();
        assert_eq!(pkg.name, "Small");
        assert_eq!(pkg.types.len(), 4);
        assert_eq!(pkg.impls.len(), 1);
        let sensor = pkg.find_type("Sensor").unwrap();
        assert_eq!(sensor.category, Category::Thread);
        assert_eq!(sensor.features.len(), 2);
        let imp = pkg.find_impl("Top.impl").unwrap();
        assert_eq!(imp.subcomponents.len(), 3);
        assert_eq!(imp.connections.len(), 1);
    }

    #[test]
    fn feature_properties_are_attached() {
        let pkg = parse_package(SMALL).unwrap();
        let h = pkg.find_type("Handler").unwrap();
        let trig = h.feature("trigger").unwrap();
        assert_eq!(trig.properties.len(), 2);
        assert_eq!(trig.properties[0].name, "Queue_Size");
        assert_eq!(trig.properties[0].value, PropertyValue::Int(2));
        assert!(matches!(
            trig.kind,
            FeatureKind::Port {
                dir: Direction::In,
                kind: PortKind::Event
            }
        ));
    }

    #[test]
    fn time_ranges_parse() {
        let pkg = parse_package(SMALL).unwrap();
        let s = pkg.find_type("Sensor").unwrap();
        let cet = s
            .properties
            .iter()
            .find(|p| p.name == "Compute_Execution_Time")
            .unwrap();
        assert_eq!(
            cet.value,
            PropertyValue::TimeRange(TimeVal::ms(3), TimeVal::ms(5))
        );
    }

    #[test]
    fn applies_to_multiple_paths() {
        let pkg = parse_package(SMALL).unwrap();
        let imp = pkg.find_impl("Top.impl").unwrap();
        let binding = imp
            .properties
            .iter()
            .find(|p| p.name == "Actual_Processor_Binding")
            .unwrap();
        assert_eq!(binding.applies_to.len(), 2);
        assert_eq!(binding.applies_to[0], vec!["sensor".to_string()]);
        assert_eq!(
            binding.value,
            PropertyValue::Reference(vec!["cpu".to_string()])
        );
    }

    #[test]
    fn connection_properties_parse() {
        let pkg = parse_package(SMALL).unwrap();
        let imp = pkg.find_impl("Top.impl").unwrap();
        let c = &imp.connections[0];
        assert_eq!(c.src, EndpointRef::sub("sensor", "alarm"));
        assert_eq!(c.dst, EndpointRef::sub("handler", "trigger"));
        assert_eq!(c.properties[0].name, "Urgency");
    }

    #[test]
    fn modes_parse() {
        let src = r#"
package M
public
  system S
  end S;
  system implementation S.impl
    subcomponents
      a: system S in modes (nominal);
    modes
      nominal: initial mode;
      degraded: mode;
      nominal -[ a.fail ]-> degraded;
  end S.impl;
end M;
"#;
        let pkg = parse_package(src).unwrap();
        let imp = pkg.find_impl("S.impl").unwrap();
        assert_eq!(imp.modes.len(), 2);
        assert!(imp.modes[0].initial);
        assert!(!imp.modes[1].initial);
        assert_eq!(imp.mode_transitions.len(), 1);
        assert_eq!(imp.mode_transitions[0].src, "nominal");
        assert_eq!(imp.mode_transitions[0].dst, "degraded");
        assert_eq!(imp.subcomponents[0].in_modes, vec!["nominal".to_string()]);
    }

    #[test]
    fn mismatched_end_name_is_an_error() {
        let err = parse_package("package A public end B;").unwrap_err();
        assert!(err.message.contains("mismatched"), "{err}");
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_package("package A\npublic\n  gadget X end X;\nend A;").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("category"), "{err}");
    }

    #[test]
    fn list_values_parse() {
        let src = r#"
package L
public
  system S
    properties
      Actual_Connection_Binding => (reference (b1), reference (b2));
  end S;
end L;
"#;
        let pkg = parse_package(src).unwrap();
        let s = pkg.find_type("S").unwrap();
        let refs = s.properties[0].value.references();
        assert_eq!(refs.len(), 2);
    }

    #[test]
    fn access_features_parse() {
        let src = r#"
package A
public
  thread T
    features
      shared: requires data access;
      net: requires bus access eth;
  end T;
end A;
"#;
        let pkg = parse_package(src).unwrap();
        let t = pkg.find_type("T").unwrap();
        assert!(matches!(
            t.feature("shared").unwrap().kind,
            FeatureKind::RequiresAccess {
                category: Category::Data
            }
        ));
        assert!(matches!(
            t.feature("net").unwrap().kind,
            FeatureKind::RequiresAccess {
                category: Category::Bus
            }
        ));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let src = "PACKAGE p PUBLIC THREAD t END t; END p;";
        let pkg = parse_package(src).unwrap();
        assert_eq!(pkg.types[0].name, "t");
    }
}
