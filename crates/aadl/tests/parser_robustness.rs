//! Robustness tests of the AADL textual front end: malformed inputs must
//! produce positioned, readable errors — never panics — and edge-case inputs
//! must parse to the expected structures.

use aadl::parser::{parse_package, ParseError};

fn err_of(src: &str) -> ParseError {
    parse_package(src).expect_err("should fail to parse")
}

#[test]
fn empty_input_fails_cleanly() {
    let e = err_of("");
    assert!(e.message.contains("package"), "{e}");
}

#[test]
fn missing_public_keyword() {
    let e = err_of("package P\nthread T end T;\nend P;");
    assert!(e.message.contains("public"), "{e}");
    assert_eq!(e.line, 2);
}

#[test]
fn unterminated_package() {
    let e = err_of("package P public thread T end T;");
    assert!(e.message.contains("end") || e.message.contains("category"), "{e}");
}

#[test]
fn bad_feature_syntax() {
    let e = err_of(
        "package P public thread T features p: sideways data port; end T; end P;",
    );
    assert!(
        e.message.contains("in") || e.message.contains("out"),
        "{e}"
    );
}

#[test]
fn bad_property_value() {
    let e = err_of(
        "package P public thread T properties Period => ; end T; end P;",
    );
    assert!(e.message.contains("property value"), "{e}");
}

#[test]
fn range_mixing_units_and_unitless() {
    let e = err_of(
        "package P public thread T properties Compute_Execution_Time => 1 ms .. 2; end T; end P;",
    );
    assert!(e.message.contains("range"), "{e}");
}

#[test]
fn connection_without_arrow() {
    let e = err_of(
        "package P public system S end S; system implementation S.impl connections c: port a.b c.d; end S.impl; end P;",
    );
    assert!(e.message.contains("->"), "{e}");
}

#[test]
fn reserved_like_identifiers_are_fine() {
    // AADL keywords are contextual in our subset: a thread named `features`
    // would be ambiguous, but property names that look like keywords parse.
    let pkg = parse_package(
        "package P public thread portly properties Dispatch_Protocol => Periodic; end portly; end P;",
    )
    .unwrap();
    assert_eq!(pkg.types[0].name, "portly");
}

#[test]
fn deeply_nested_systems_parse_and_instantiate() {
    // Build a 6-deep chain of systems textually.
    let mut src = String::from("package Deep\npublic\n");
    src.push_str("  thread Leaf properties Dispatch_Protocol => Periodic; Period => 10 ms; Compute_Execution_Time => 1 ms .. 1 ms; Compute_Deadline => 10 ms; end Leaf;\n");
    src.push_str("  processor cpu_t properties Scheduling_Protocol => RMS; end cpu_t;\n");
    for i in (0..6).rev() {
        src.push_str(&format!("  system L{i} end L{i};\n"));
        if i == 5 {
            src.push_str(&format!(
                "  system implementation L{i}.impl subcomponents leaf: thread Leaf; end L{i}.impl;\n"
            ));
        } else {
            src.push_str(&format!(
                "  system implementation L{i}.impl subcomponents inner: system L{}.impl; end L{i}.impl;\n",
                i + 1
            ));
        }
    }
    src.push_str("  system Top end Top;\n");
    src.push_str("  system implementation Top.impl\n    subcomponents\n      cpu: processor cpu_t;\n      chain: system L0.impl;\n    properties\n      Actual_Processor_Binding => reference (cpu) applies to chain.inner.inner.inner.inner.inner.leaf;\n  end Top.impl;\n");
    src.push_str("end Deep;\n");
    let pkg = parse_package(&src).unwrap();
    let m = aadl::instance::instantiate(&pkg, "Top.impl").unwrap();
    let leaf = m
        .find("chain.inner.inner.inner.inner.inner.leaf")
        .expect("deep path resolves");
    assert!(m.bound_processor(leaf).is_some());
    assert!(aadl::check::validate(&m).is_empty());
}

#[test]
fn comments_everywhere() {
    let src = r#"
package C -- trailing comment
public -- another
  -- a full-line comment
  thread T -- comment
    properties -- comment
      Dispatch_Protocol => Periodic; -- comment
  end T; -- comment
end C; -- done
"#;
    let pkg = parse_package(src).unwrap();
    assert_eq!(pkg.types.len(), 1);
}

#[test]
fn unicode_in_strings_is_preserved() {
    let src = r#"
package U
public
  thread T
    properties
      Dispatch_Protocol => Periodic;
      Source_Text => "héllo → wörld";
  end T;
end U;
"#;
    let pkg = parse_package(src).unwrap();
    let v = pkg.types[0]
        .properties
        .iter()
        .find(|p| p.name == "Source_Text")
        .unwrap();
    assert_eq!(
        v.value,
        aadl::properties::PropertyValue::Str("héllo → wörld".into())
    );
}

#[test]
fn error_positions_point_at_the_offender() {
    let src = "package P\npublic\n  thread T\n    properties\n      Period => 10 @;\n  end T;\nend P;";
    let e = err_of(src);
    assert_eq!(e.line, 5, "{e}");
}

#[test]
fn huge_integer_saturates_instead_of_panicking() {
    let src = "package H public thread T properties Queue_Size => 99999999999999999999999999; end T; end H;";
    let pkg = parse_package(src).unwrap();
    let v = pkg.types[0].properties[0].value.as_int().unwrap();
    assert!(v > 0); // saturated, not wrapped or panicked
}
