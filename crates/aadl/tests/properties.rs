//! Property-based tests of the AADL front end: parser ↔ printer round-trips
//! over randomized declarative models, and property-system invariants.
//!
//! Randomized inputs come from the workspace's vendored [`det`] harness
//! (`det_prop!` runs 64 seeded cases per property by default; failures print
//! a `DET_PROP_SEED` that reproduces the exact case).

use aadl::builder::PackageBuilder;
use aadl::instance::instantiate;
use aadl::model::{Category, Package};
use aadl::parser::parse_package;
use aadl::pretty::render_package;
use aadl::properties::{names, PropertyValue, TimeUnit, TimeVal};
use det::det_prop;
use det::prop::{bools, ints};
use det::DetRng;

fn arb_time(rng: &mut DetRng) -> TimeVal {
    let v = rng.range_i64(1..1000);
    let u = *rng.pick(&[TimeUnit::Us, TimeUnit::Ms, TimeUnit::Sec, TimeUnit::Min]);
    TimeVal::new(v, u)
}

/// A randomized single-processor package with periodic threads and a chain of
/// event connections between consecutive ones.
fn arb_package(rng: &mut DetRng) -> Package {
    let protocol = *rng.pick(&["RMS", "DMS", "EDF", "LLF", "HPF"]);
    let n = rng.range_usize(1..5);
    let threads: Vec<(i64, i64)> = (0..n)
        .map(|_| (rng.range_i64(1..50), rng.range_i64(1..10)))
        .collect();

    let mut b = PackageBuilder::new("Gen").processor("cpu_t", |p| {
        p.prop_enum(names::SCHEDULING_PROTOCOL, protocol)
    });
    for (i, (period, wcet)) in threads.iter().enumerate() {
        let period = *period + *wcet; // ensure wcet ≤ period
        let wcet = *wcet;
        let name = format!("T{i}");
        b = b.thread(&name, move |t| {
            t.out_event_port("evt")
                .in_event_port("inp")
                .prop_enum(names::DISPATCH_PROTOCOL, "Periodic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(period)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(wcet), TimeVal::ms(wcet)),
                )
                .prop(
                    names::COMPUTE_DEADLINE,
                    PropertyValue::Time(TimeVal::ms(period)),
                )
                .prop_int(names::PRIORITY, (i as i64) + 1)
        });
    }
    b = b.system("Top", |s| s);
    b.implementation("Top.impl", Category::System, |mut i| {
        i = i.sub("cpu", Category::Processor, "cpu_t");
        for t in 0..n {
            let sub = format!("t{t}");
            let ty = format!("T{t}");
            i = i
                .sub(&sub, Category::Thread, &ty)
                .bind_processor(&sub, "cpu");
        }
        for t in 1..n {
            i = i.connect(
                &format!("c{t}"),
                &format!("t{}.evt", t - 1),
                &format!("t{t}.inp"),
            );
        }
        i
    })
    .build()
}

det_prop! {
    fn parser_printer_round_trip(pkg in arb_package) {
        let text = render_package(&pkg);
        let reparsed = parse_package(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"));
        assert_eq!(pkg, reparsed);
    }

    fn double_round_trip_is_stable(pkg in arb_package) {
        let text1 = render_package(&pkg);
        let pkg2 = parse_package(&text1).unwrap();
        let text2 = render_package(&pkg2);
        assert_eq!(text1, text2);
    }

    fn generated_packages_instantiate(pkg in arb_package) {
        let m = instantiate(&pkg, "Top.impl").unwrap();
        assert!(m.threads().count() >= 1);
        let cpu = m.find("cpu").unwrap();
        assert_eq!(m.threads_on(cpu).len(), m.threads().count());
        // Semantic connections: exactly the declared chain (all thread-level,
        // single segment each).
        assert_eq!(m.connections.len(), m.threads().count() - 1);
    }

    fn time_ordering_matches_picoseconds(a in arb_time, b in arb_time) {
        assert_eq!(a.cmp(&b), a.as_ps().cmp(&b.as_ps()));
    }

    fn property_names_are_case_insensitive(upper in bools(), v in ints(1..100)) {
        let mut m = aadl::properties::PropertyMap::new();
        let name = if upper { "QUEUE_SIZE" } else { "queue_size" };
        m.set(name, PropertyValue::Int(v));
        assert_eq!(m.queue_size(), v);
        assert!(m.contains("Queue_Size"));
    }
}

#[test]
fn cruise_control_round_trips_through_text() {
    let pkg = aadl::examples::cruise_control();
    let text = render_package(&pkg);
    let reparsed = parse_package(&text).unwrap();
    assert_eq!(pkg, reparsed);
    // And the reparsed model instantiates identically.
    let m1 = instantiate(&pkg, "CruiseControl.impl").unwrap();
    let m2 = instantiate(&reparsed, "CruiseControl.impl").unwrap();
    assert_eq!(m1.num_components(), m2.num_components());
    assert_eq!(m1.connections.len(), m2.connections.len());
}
