//! The minimal seeded property-test harness behind [`det_prop!`](crate::det_prop).
//!
//! ## Semantics
//!
//! Each property runs **64 cases** by default (override with the
//! `DET_PROP_CASES` environment variable). Case `i` of property `name` is
//! generated from a [`DetRng`] seeded with
//! `splitmix64(fnv1a(name) ^ i·GOLDEN)` — fully deterministic, different per
//! property and per case, identical on every machine and in every PR.
//!
//! On failure the harness **shrinks** the input: integer inputs halve toward
//! the lower bound of their generating range, vector inputs halve in length
//! (then shrink elementwise), and composite closures simply don't shrink.
//! The smallest still-failing input is reported together with the case seed:
//!
//! ```text
//! det_prop `merge_is_commutative`: case 17/64 failed (seed 0x1f2e3d4c5b6a7988)
//! input: (GAction { .. }, GAction { .. })
//! panic: assertion failed: ...
//! reproduce: DET_PROP_SEED=0x1f2e3d4c5b6a7988 cargo test -q merge_is_commutative
//! ```
//!
//! Setting `DET_PROP_SEED` makes the harness run exactly one case with that
//! generator seed (no shrinking) — the printed panic is the raw assertion.

use std::cell::Cell;
use std::fmt::Debug;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use crate::rng::{splitmix64, DetRng};

/// A value generator: anything that can draw a `Value` from a [`DetRng`] and
/// (optionally) propose smaller variants of a failing value.
///
/// Plain closures `Fn(&mut DetRng) -> T` are generators (without shrinking),
/// so arbitrary model builders compose directly with the combinators here.
///
/// # Examples
///
/// ```
/// use det::prop::{ints, Gen};
/// use det::DetRng;
///
/// let gen = ints(0..100);
/// let v = gen.generate(&mut DetRng::new(1));
/// assert!((0..100).contains(&v));
/// // Shrinking halves toward the range start.
/// assert!(gen.shrink(&80).iter().all(|s| *s < 80));
/// ```
pub trait Gen {
    /// The generated value type.
    type Value: Clone + Debug;
    /// Draw one value.
    fn generate(&self, rng: &mut DetRng) -> Self::Value;
    /// Propose strictly "smaller" candidate values for shrinking. The
    /// default is no shrinking.
    fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

impl<T: Clone + Debug, F: Fn(&mut DetRng) -> T> Gen for F {
    type Value = T;
    fn generate(&self, rng: &mut DetRng) -> T {
        self(rng)
    }
}

/// Uniform `i64` in a half-open range, shrinking by halving toward the
/// range start.
///
/// # Examples
///
/// ```
/// use det::prop::{ints, Gen};
/// use det::DetRng;
///
/// let g = ints(-8..8);
/// let mut rng = DetRng::new(2);
/// assert!((-8..8).contains(&g.generate(&mut rng)));
/// assert_eq!(g.shrink(&-8), Vec::<i64>::new()); // already minimal
/// ```
pub fn ints(range: Range<i64>) -> IntGen {
    IntGen { range }
}

/// Generator returned by [`ints`].
#[derive(Clone, Debug)]
pub struct IntGen {
    range: Range<i64>,
}

impl Gen for IntGen {
    type Value = i64;
    fn generate(&self, rng: &mut DetRng) -> i64 {
        rng.range_i64(self.range.clone())
    }
    fn shrink(&self, v: &i64) -> Vec<i64> {
        shrink_toward(*v, self.range.start)
    }
}

/// Uniform `u64` in a half-open range, shrinking by halving toward the
/// range start.
///
/// # Examples
///
/// ```
/// use det::prop::{uints, Gen};
/// use det::DetRng;
///
/// let g = uints(1..5);
/// assert!((1..5).contains(&g.generate(&mut DetRng::new(3))));
/// assert_eq!(g.shrink(&4), vec![1, 3]); // halving ladder toward the range start
/// ```
pub fn uints(range: Range<u64>) -> UintGen {
    UintGen { range }
}

/// Generator returned by [`uints`].
#[derive(Clone, Debug)]
pub struct UintGen {
    range: Range<u64>,
}

impl Gen for UintGen {
    type Value = u64;
    fn generate(&self, rng: &mut DetRng) -> u64 {
        rng.range_u64(self.range.clone())
    }
    fn shrink(&self, v: &u64) -> Vec<u64> {
        shrink_toward(*v as i64, self.range.start as i64)
            .into_iter()
            .map(|x| x as u64)
            .collect()
    }
}

/// Uniform `usize` in a half-open range, shrinking by halving toward the
/// range start. The go-to generator for pool indices.
///
/// # Examples
///
/// ```
/// use det::prop::{usizes, Gen};
/// use det::DetRng;
///
/// let pool = ["a", "b", "c"];
/// let g = usizes(0..pool.len());
/// let i = g.generate(&mut DetRng::new(4));
/// assert!(i < pool.len());
/// ```
pub fn usizes(range: Range<usize>) -> UsizeGen {
    UsizeGen { range }
}

/// Generator returned by [`usizes`].
#[derive(Clone, Debug)]
pub struct UsizeGen {
    range: Range<usize>,
}

impl Gen for UsizeGen {
    type Value = usize;
    fn generate(&self, rng: &mut DetRng) -> usize {
        rng.range_usize(self.range.clone())
    }
    fn shrink(&self, v: &usize) -> Vec<usize> {
        shrink_toward(*v as i64, self.range.start as i64)
            .into_iter()
            .map(|x| x as usize)
            .collect()
    }
}

/// Uniform boolean, shrinking `true → false`.
///
/// # Examples
///
/// ```
/// use det::prop::{bools, Gen};
///
/// assert_eq!(bools().shrink(&true), vec![false]);
/// assert_eq!(bools().shrink(&false), Vec::<bool>::new());
/// ```
pub fn bools() -> BoolGen {
    BoolGen
}

/// Generator returned by [`bools`].
#[derive(Clone, Debug)]
pub struct BoolGen;

impl Gen for BoolGen {
    type Value = bool;
    fn generate(&self, rng: &mut DetRng) -> bool {
        rng.next_bool()
    }
    fn shrink(&self, v: &bool) -> Vec<bool> {
        if *v {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// A vector of values from an element generator, with the length drawn from
/// `len` — shrinking halves the vector (keeping either half) and then
/// shrinks elements in place.
///
/// # Examples
///
/// ```
/// use det::prop::{uints, vec_of, Gen};
/// use det::DetRng;
///
/// let g = vec_of(uints(0..10), 1..4);
/// let v = g.generate(&mut DetRng::new(5));
/// assert!((1..4).contains(&v.len()));
/// // A 2-element vector shrinks to its halves first.
/// let candidates = g.shrink(&vec![7, 9]);
/// assert!(candidates.contains(&vec![7]));
/// assert!(candidates.contains(&vec![9]));
/// ```
pub fn vec_of<G: Gen>(element: G, len: Range<usize>) -> VecGen<G> {
    VecGen { element, len }
}

/// Generator returned by [`vec_of`].
#[derive(Clone, Debug)]
pub struct VecGen<G> {
    element: G,
    len: Range<usize>,
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;
    fn generate(&self, rng: &mut DetRng) -> Vec<G::Value> {
        let n = rng.range_usize(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
    fn shrink(&self, v: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        let min = self.len.start;
        // Halve the length: keep the first half, then the second half.
        if v.len() > min.max(1) {
            let half = (v.len() + 1) / 2;
            if half >= min {
                out.push(v[..half].to_vec());
                out.push(v[v.len() - half..].to_vec());
            }
        }
        // Shrink each element in place.
        for (i, e) in v.iter().enumerate() {
            for smaller in self.element.shrink(e) {
                let mut w = v.clone();
                w[i] = smaller;
                out.push(w);
            }
        }
        out
    }
}

/// Halving ladder from `v` toward `lo` (exclusive of `v` itself):
/// `lo, lo + (v-lo)/2, …, v-1`, deduplicated and ordered smallest-first.
fn shrink_toward(v: i64, lo: i64) -> Vec<i64> {
    let mut out = Vec::new();
    if v == lo {
        return out;
    }
    out.push(lo);
    let mut delta = (v - lo) / 2;
    while delta > 0 {
        let cand = v - delta;
        if cand != lo {
            out.push(cand);
        }
        delta /= 2;
    }
    if *out.last().unwrap() != v - 1 && v - 1 != lo {
        out.push(v - 1);
    }
    out.dedup();
    out
}

macro_rules! tuple_gen {
    ($($G:ident $idx:tt),+) => {
        impl<$($G: Gen),+> Gen for ($($G,)+) {
            type Value = ($($G::Value,)+);
            fn generate(&self, rng: &mut DetRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for smaller in self.$idx.shrink(&v.$idx) {
                        let mut w = v.clone();
                        w.$idx = smaller;
                        out.push(w);
                    }
                )+
                out
            }
        }
    };
}

tuple_gen!(A 0);
tuple_gen!(A 0, B 1);
tuple_gen!(A 0, B 1, C 2);
tuple_gen!(A 0, B 1, C 2, D 3);

/// The number of cases per property: 64, or the `DET_PROP_CASES`
/// environment variable.
///
/// # Examples
///
/// ```
/// assert!(det::prop::cases() >= 1);
/// ```
pub fn cases() -> u32 {
    std::env::var("DET_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
        .max(1)
}

fn env_seed() -> Option<u64> {
    let raw = std::env::var("DET_PROP_SEED").ok()?;
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    }
}

/// FNV-1a over the property name: the per-property base seed. Stable across
/// platforms and PRs by construction.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn case_seed(base: u64, case: u32) -> u64 {
    splitmix64(base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

// Panics thrown while probing candidate inputs are expected; silence them so
// `cargo test` output stays readable. The hook is installed once, chains to
// the previous hook, and only mutes panics from threads that are inside a
// det_prop probe (thread-local flag).
thread_local! {
    static PROBING: Cell<bool> = const { Cell::new(false) };
}
static HOOK: Once = Once::new();

fn install_quiet_hook() {
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !PROBING.with(|p| p.get()) {
                prev(info);
            }
        }));
    });
}

/// Run `prop` on one value, capturing a panic as `Err(message)`.
fn probe<V>(prop: &impl Fn(V), v: V) -> Result<(), String> {
    install_quiet_hook();
    PROBING.with(|p| p.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(|| prop(v)));
    PROBING.with(|p| p.set(false));
    result.map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_owned()
        }
    })
}

/// Greedily walk the shrink lattice: take the first candidate that still
/// fails, repeat until no candidate fails (or a safety cap is hit).
fn shrink_to_minimal<G: Gen>(gen: &G, prop: &impl Fn(G::Value), start: G::Value) -> G::Value {
    let mut current = start;
    let mut budget = 1000usize;
    'outer: while budget > 0 {
        for cand in gen.shrink(&current) {
            budget -= 1;
            if probe(prop, cand.clone()).is_err() {
                current = cand;
                continue 'outer;
            }
            if budget == 0 {
                break;
            }
        }
        break;
    }
    current
}

/// The harness entry point — normally invoked through
/// [`det_prop!`](crate::det_prop), which packs the per-argument generators
/// into a tuple and the property body into a closure.
///
/// Runs `n` seeded cases of `prop` over values from `gen`; on failure,
/// shrinks the input and panics with the case seed and a `DET_PROP_SEED`
/// reproduction line.
///
/// # Examples
///
/// ```
/// use det::prop::{check, uints};
///
/// // 64 cases, none fail:
/// check("doctest_sum_commutes", det::prop::cases(), &(uints(0..9), uints(0..9)),
///       |(a, b)| assert_eq!(a + b, b + a));
/// ```
///
/// ```should_panic
/// use det::prop::{check, uints};
///
/// // A false property panics with a reproducible seed.
/// check("doctest_all_below_3", 64, &(uints(0..9),), |(a,)| assert!(a < 3));
/// ```
pub fn check<G: Gen>(name: &str, n: u32, gen: &G, prop: impl Fn(G::Value)) {
    if let Some(seed) = env_seed() {
        // Reproduction mode: exactly one case, panics propagate untouched.
        let v = gen.generate(&mut DetRng::new(seed));
        eprintln!("det_prop `{name}`: replaying seed {seed:#018x} with input {v:?}");
        prop(v);
        return;
    }
    let base = fnv1a(name);
    for case in 0..n {
        let seed = case_seed(base, case);
        let v = gen.generate(&mut DetRng::new(seed));
        if let Err(msg) = probe(&prop, v.clone()) {
            let minimal = shrink_to_minimal(gen, &prop, v);
            panic!(
                "det_prop `{name}`: case {case}/{n} failed (seed {seed:#018x})\n\
                 input (shrunk): {minimal:?}\n\
                 panic: {msg}\n\
                 reproduce: DET_PROP_SEED={seed:#018x} cargo test -q {name}"
            );
        }
    }
}

/// Declare seeded property tests.
///
/// Each `fn name(arg in generator, …) { body }` becomes a `#[test]` running
/// [`cases()`](crate::prop::cases) seeded cases; generators are any
/// [`Gen`](crate::prop::Gen) (combinators from [`prop`](crate::prop) shrink,
/// plain closures don't). Up to four arguments per property.
///
/// # Examples
///
/// ```
/// use det::det_prop;
/// use det::prop::{uints, vec_of};
///
/// det_prop! {
///     fn reverse_is_involutive(v in vec_of(uints(0..100), 0..8)) {
///         let mut w = v.clone();
///         w.reverse();
///         w.reverse();
///         assert_eq!(v, w);
///     }
/// }
/// ```
#[macro_export]
macro_rules! det_prop {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $gen:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let generators = ($($gen,)+);
                $crate::prop::check(
                    stringify!($name),
                    $crate::prop::cases(),
                    &generators,
                    |($($arg,)+)| $body,
                );
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0u32);
        check("t_pass", 64, &(uints(0..100),), |(v,)| {
            counter.set(counter.get() + 1);
            assert!(v < 100);
        });
        assert_eq!(counter.get(), 64);
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            check("t_fail", 64, &(uints(0..1000),), |(v,)| assert!(v < 5));
        }));
        let msg = match result {
            Err(payload) => *payload.downcast::<String>().unwrap(),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains("DET_PROP_SEED=0x"), "{msg}");
        assert!(msg.contains("reproduce:"), "{msg}");
        // Shrinking must land on the boundary counterexample.
        assert!(msg.contains("input (shrunk): (5,)"), "{msg}");
    }

    #[test]
    fn vec_shrinking_reaches_small_witness() {
        // Property: no vector contains a value ≥ 50. Minimal counterexample
        // is a 1-element vector [50].
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            check(
                "t_vec",
                64,
                &(vec_of(uints(0..100), 0..6),),
                |(v,)| assert!(v.iter().all(|&x| x < 50)),
            );
        }));
        let msg = match result {
            Err(payload) => *payload.downcast::<String>().unwrap(),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains("input (shrunk): ([50],)"), "{msg}");
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let collect = || {
            let mut vs = Vec::new();
            check("t_det", 16, &(uints(0..1_000_000),), |(v,)| {
                // Property bodies must be pure; we only record the input.
                let _ = &v;
            });
            // Re-generate the same inputs directly.
            let base = fnv1a("t_det");
            for case in 0..16 {
                let mut rng = DetRng::new(case_seed(base, case));
                vs.push((uints(0..1_000_000),).generate(&mut rng));
            }
            vs
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn closures_are_generators_without_shrinking() {
        let gen = |rng: &mut DetRng| (rng.range_u64(0..4), rng.next_bool());
        let v = Gen::generate(&gen, &mut DetRng::new(1));
        assert!(v.0 < 4);
        assert!(Gen::shrink(&gen, &v).is_empty());
    }

    #[test]
    fn shrink_toward_ladder_is_ordered_and_excludes_v() {
        assert_eq!(shrink_toward(8, 0), vec![0, 4, 6, 7]);
        assert_eq!(shrink_toward(1, 0), vec![0]);
        assert_eq!(shrink_toward(0, 0), Vec::<i64>::new());
    }

    det_prop! {
        fn macro_declares_real_tests(a in ints(-50..50), b in ints(-50..50)) {
            assert_eq!(a + b, b + a);
        }
    }
}
