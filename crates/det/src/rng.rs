//! The seedable deterministic PRNG.
//!
//! Algorithm: **xorshift64\*** (Vigna 2016) over a 64-bit state, seeded
//! through one round of **SplitMix64** so that small consecutive seeds
//! (0, 1, 2, …) still land in well-mixed regions of the state space. Both
//! algorithms are public domain and fit in a dozen lines — this is not a
//! cryptographic generator, it exists so that workload generation and
//! property tests are reproducible without an external `rand` dependency.
//!
//! **Stability guarantee:** the sequence produced for a given seed is frozen
//! across PRs. Seeded experiments (`EXPERIMENTS.md`) and the `det_prop!`
//! failure seeds printed by past CI runs must stay replayable, so any change
//! to the algorithm, the seeding scramble, or the range-mapping below is an
//! ISSUE-level decision, not a refactor.

/// One round of SplitMix64: the seed scrambler.
///
/// # Examples
///
/// ```
/// // Consecutive inputs map to unrelated outputs.
/// let a = det::rng::splitmix64(1);
/// let b = det::rng::splitmix64(2);
/// assert_ne!(a >> 32, b >> 32);
/// ```
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable xorshift64\* PRNG — the workspace's only randomness source.
///
/// # Examples
///
/// ```
/// use det::DetRng;
///
/// let mut rng = DetRng::new(0xB0B);
/// let roll = rng.range_u64(1..=6);
/// assert!((1..=6).contains(&roll));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Create a generator from a seed. Every seed (including 0) is valid and
    /// produces a distinct, frozen sequence.
    ///
    /// # Examples
    ///
    /// ```
    /// use det::DetRng;
    ///
    /// let mut a = DetRng::new(0);
    /// let mut b = DetRng::new(0);
    /// assert_eq!(a.next_u64(), b.next_u64());
    /// ```
    pub fn new(seed: u64) -> DetRng {
        // xorshift state must be non-zero; splitmix64 maps exactly one input
        // to 0, so fall back to its image of a fixed constant.
        let state = match splitmix64(seed) {
            0 => splitmix64(0x0DD_B1A5E5_BAD5EED),
            s => s,
        };
        DetRng { state }
    }

    /// The next 64 uniformly distributed bits.
    ///
    /// # Examples
    ///
    /// ```
    /// use det::DetRng;
    ///
    /// let mut rng = DetRng::new(9);
    /// assert_ne!(rng.next_u64(), rng.next_u64());
    /// ```
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits of entropy).
    ///
    /// # Examples
    ///
    /// ```
    /// use det::DetRng;
    ///
    /// let mut rng = DetRng::new(1);
    /// for _ in 0..100 {
    ///     let x = rng.next_f64();
    ///     assert!((0.0..1.0).contains(&x));
    /// }
    /// ```
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform value below `n` (`n` must be positive). The modulo bias is
    /// below 2⁻⁵⁰ for every `n` used in this workspace and is part of the
    /// frozen sequence contract.
    ///
    /// # Examples
    ///
    /// ```
    /// use det::DetRng;
    ///
    /// let mut rng = DetRng::new(3);
    /// assert!(rng.below(10) < 10);
    /// ```
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "DetRng::below(0)");
        self.next_u64() % n
    }

    /// A uniform `u64` from a (half-open or inclusive) range.
    ///
    /// # Examples
    ///
    /// ```
    /// use det::DetRng;
    ///
    /// let mut rng = DetRng::new(4);
    /// assert!(rng.range_u64(10..20) < 20);
    /// assert!(rng.range_u64(10..=20) <= 20);
    /// ```
    pub fn range_u64(&mut self, range: impl std::ops::RangeBounds<u64>) -> u64 {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&v) => v,
            std::ops::Bound::Excluded(&v) => v + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&v) => v,
            std::ops::Bound::Excluded(&v) => v.checked_sub(1).expect("empty range"),
            std::ops::Bound::Unbounded => u64::MAX,
        };
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// A uniform `i64` from a range.
    ///
    /// # Examples
    ///
    /// ```
    /// use det::DetRng;
    ///
    /// let mut rng = DetRng::new(5);
    /// let v = rng.range_i64(-5..5);
    /// assert!((-5..5).contains(&v));
    /// ```
    pub fn range_i64(&mut self, range: std::ops::Range<i64>) -> i64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add(self.below(span) as i64)
    }

    /// A uniform `usize` from a range — the slice-index workhorse.
    ///
    /// # Examples
    ///
    /// ```
    /// use det::DetRng;
    ///
    /// let mut rng = DetRng::new(6);
    /// let xs = [10, 20, 30];
    /// let i = rng.range_usize(0..xs.len());
    /// assert!(i < xs.len());
    /// ```
    pub fn range_usize(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + self.below((range.end - range.start) as u64) as usize
    }

    /// A uniform boolean.
    ///
    /// # Examples
    ///
    /// ```
    /// use det::DetRng;
    ///
    /// let mut rng = DetRng::new(8);
    /// let heads = (0..1000).filter(|_| rng.next_bool()).count();
    /// assert!((300..700).contains(&heads));
    /// ```
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// A uniformly chosen element of a non-empty slice.
    ///
    /// # Examples
    ///
    /// ```
    /// use det::DetRng;
    ///
    /// let mut rng = DetRng::new(10);
    /// let protocols = ["RMS", "DMS", "EDF"];
    /// assert!(protocols.contains(rng.pick(&protocols)));
    /// ```
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.range_usize(0..slice.len())]
    }

    /// Split off an independent generator (seeded from this one's stream).
    /// Useful for giving each parallel worker or sub-generator its own
    /// stream without correlating them.
    ///
    /// # Examples
    ///
    /// ```
    /// use det::DetRng;
    ///
    /// let mut rng = DetRng::new(11);
    /// let mut child = rng.fork();
    /// assert_ne!(child.next_u64(), rng.clone().next_u64());
    /// ```
    pub fn fork(&mut self) -> DetRng {
        DetRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_frozen() {
        // Golden values: if these change, seeded experiments silently shift.
        // Changing them is an ISSUE-level decision (see module docs).
        let mut rng = DetRng::new(0);
        assert_eq!(rng.next_u64(), 0x7BBC_B40D_5506_82D0);
        assert_eq!(rng.next_u64(), 0xDE7F_E413_D00C_C9FD);
        assert_eq!(rng.next_u64(), 0xB3C6_3835_3C66_8C91);
        assert_eq!(rng.next_u64(), 0xE073_AFC0_9491_95FC);
        assert_eq!(DetRng::new(42).next_u64(), 0x31B0_ECE7_C4F6_97A2);
    }

    #[test]
    fn distinct_seeds_diverge() {
        let a: Vec<u64> = {
            let mut r = DetRng::new(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = DetRng::new(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn ranges_hit_their_bounds() {
        let mut rng = DetRng::new(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            match rng.range_u64(0..=3) {
                0 => seen_lo = true,
                3 => seen_hi = true,
                _ => {}
            }
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn f64_is_in_unit_interval_and_varies() {
        let mut rng = DetRng::new(4);
        let xs: Vec<f64> = (0..100).map(|_| rng.next_f64()).collect();
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((0.3..0.7).contains(&mean), "mean {mean}");
    }

    #[test]
    fn negative_i64_ranges() {
        let mut rng = DetRng::new(5);
        for _ in 0..100 {
            let v = rng.range_i64(-10..-5);
            assert!((-10..-5).contains(&v));
        }
    }

    #[test]
    fn fork_decorrelates() {
        let mut rng = DetRng::new(6);
        let mut f1 = rng.fork();
        let mut f2 = rng.fork();
        assert_ne!(f1.next_u64(), f2.next_u64());
    }
}
