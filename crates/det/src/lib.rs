//! # det — vendored deterministic test & PRNG utilities
//!
//! This workspace builds **hermetically**: `cargo build` and `cargo test`
//! must succeed with an empty registry cache and no network. This crate
//! vendors the two utilities the repo previously pulled from external
//! crates:
//!
//! * [`DetRng`] — a seedable xorshift64\* PRNG covering the narrow API the
//!   workspace used from `rand` (uniform integers in a range, `f64` in
//!   `[0, 1)`, slice picks). The sequence produced for a given seed is
//!   **frozen**: experiments and regression baselines depend on it, so
//!   changing the algorithm or the seeding is an ISSUE-level decision.
//! * [`prop`] and the [`det_prop!`] macro — a minimal property-test harness
//!   replacing `proptest`: N seeded cases per property (64 by default),
//!   shrink-by-halving for integer and vector inputs, and a reproducible
//!   seed printed on failure (`DET_PROP_SEED=0x… cargo test -q <name>`
//!   reruns exactly the failing input).
//!
//! See `DESIGN.md` § "Determinism & vendored utilities" for the stability
//! guarantees and the rationale.
//!
//! ```
//! use det::DetRng;
//!
//! let mut rng = DetRng::new(42);
//! let a = rng.range_u64(0..100);
//! assert!(a < 100);
//! // Same seed ⇒ same sequence, on every platform, in every PR.
//! assert_eq!(DetRng::new(7).next_u64(), DetRng::new(7).next_u64());
//! ```

pub mod prop;
pub mod rng;

pub use rng::DetRng;
