//! Queue processes for semantic event / event-data connections (§4.4).
//!
//! > The queue of a connection e is represented by a counter ACSR process E
//! > that counts up to the number specified by the Queue_Size property of the
//! > last port of the connection. Queue size of 1 is assumed if the property
//! > is not specified. The counter is sufficient for the representation of
//! > the queue, since we do not model the attributes of individual events.
//!
//! The counter is incremented by the input event `e_q` (sent by the source
//! thread) and decremented by the output event `e_deq` (received by the
//! destination thread's dispatcher). On overflow, the
//! `Overflow_Handling_Protocol` of the port decides: `DropNewest` /
//! `DropOldest` quietly drop (a self-loop — indistinguishable in the counter
//! abstraction), while `Error` moves the queue to an error state: a deadlock
//! distinguishable in diagnostics.

use acsr::{
    act, choice, evt_recv, evt_send, guard, invoke, nil, BExpr, Env, Expr, Res, Symbol,
};

use aadl::properties::OverflowHandlingProtocol;

use crate::names::{ConnNames, DefMeaning, EventMeaning, NameMap};

/// Declare and define the queue process of semantic connection `conn_idx`,
/// returning its names. `urgency` is the priority of the dequeue
/// communication (§4.3).
pub fn build_queue(
    env: &mut Env,
    nm: &mut NameMap,
    conn_idx: usize,
    stem: &str,
    size: i64,
    overflow: OverflowHandlingProtocol,
    urgency: i64,
) -> ConnNames {
    let size = size.max(1);
    let enqueue = Symbol::new(&format!("q_{stem}"));
    let dequeue = Symbol::new(&format!("deq_{stem}"));
    nm.add_event(enqueue, EventMeaning::Enqueue(conn_idx));
    nm.add_event(dequeue, EventMeaning::Dequeue(conn_idx));

    let queue_def = env.declare(&format!("Queue_{stem}"), 1);
    let n = Expr::p(0);

    let mut alts = vec![
        // Time may always pass.
        act([] as [(Res, Expr); 0], invoke(queue_def, [n.clone()])),
        // Dequeue when non-empty.
        guard(
            BExpr::gt(n.clone(), Expr::c(0)),
            evt_send(
                dequeue,
                urgency,
                invoke(queue_def, [n.clone().sub(Expr::c(1))]),
            ),
        ),
    ];

    let error_def = match overflow {
        OverflowHandlingProtocol::Error => {
            let err = env.define(&format!("QErr_{stem}"), 0, nil());
            nm.add_def(err, DefMeaning::QueueError(conn_idx));
            // Enqueue below capacity… (receive priority 0: the τ's urgency
            // comes from the sender — completion-instant sends are urgent,
            // nondeterministic anytime/free-device raises are not, which
            // keeps saturated-queue τ self-loops from stopping time)
            alts.push(guard(
                BExpr::lt(n.clone(), Expr::c(size)),
                evt_recv(enqueue, 0, invoke(queue_def, [n.clone().add(Expr::c(1))])),
            ));
            // …or overflow into the error state.
            alts.push(guard(
                BExpr::ge(n.clone(), Expr::c(size)),
                evt_recv(enqueue, 0, invoke(err, [])),
            ));
            Some(err)
        }
        OverflowHandlingProtocol::DropNewest | OverflowHandlingProtocol::DropOldest => {
            // Saturating enqueue: `min(n + 1, size)`. Receive priority 0 —
            // see the Error branch comment.
            alts.push(evt_recv(
                enqueue,
                0,
                invoke(queue_def, [n.clone().add(Expr::c(1)).min(Expr::c(size))]),
            ));
            None
        }
    };

    env.set_body(queue_def, choice(alts));
    ConnNames {
        conn: conn_idx,
        enqueue,
        dequeue,
        queue_def,
        error_def,
    }
}

/// The initial (empty) queue process.
pub fn initial_queue(names: &ConnNames) -> acsr::P {
    invoke(names.queue_def, [Expr::c(0)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use acsr::{steps, Dir, Label, P};

    fn build(size: i64, overflow: OverflowHandlingProtocol) -> (Env, NameMap, ConnNames) {
        let mut env = Env::new();
        let mut nm = NameMap::default();
        let names = build_queue(
            &mut env,
            &mut nm,
            0,
            &format!("c{}_{:?}", size, overflow),
            size,
            overflow,
            2,
        );
        (env, nm, names)
    }

    fn enqueue_step(env: &Env, p: &P, enqueue: Symbol) -> P {
        let s = steps(env, p);
        s.iter()
            .find(|(l, _)| matches!(l, Label::E { label, dir: Dir::Recv, .. } if *label == enqueue))
            .expect("enqueue offered")
            .1
            .clone()
    }

    #[test]
    fn counts_up_and_down() {
        let (env, _nm, names) = build(2, OverflowHandlingProtocol::DropNewest);
        let q0 = initial_queue(&names);
        // Empty: no dequeue offered.
        let s = steps(&env, &q0);
        assert!(!s
            .iter()
            .any(|(l, _)| matches!(l, Label::E { dir: Dir::Send, .. })));
        let q1 = enqueue_step(&env, &q0, names.enqueue);
        // Non-empty: dequeue offered with the urgency priority.
        let s = steps(&env, &q1);
        let deq = s
            .iter()
            .find(|(l, _)| matches!(l, Label::E { dir: Dir::Send, .. }))
            .expect("dequeue offered");
        assert!(matches!(deq.0, Label::E { prio: 2, .. }));
        // After dequeue, the queue is empty again.
        assert_eq!(deq.1, q0);
    }

    #[test]
    fn drop_newest_saturates() {
        let (env, _nm, names) = build(1, OverflowHandlingProtocol::DropNewest);
        let q0 = initial_queue(&names);
        let q1 = enqueue_step(&env, &q0, names.enqueue);
        let q2 = enqueue_step(&env, &q1, names.enqueue);
        // Saturated: the overflowing enqueue is a self-loop.
        assert_eq!(q1, q2);
        assert!(names.error_def.is_none());
    }

    #[test]
    fn error_protocol_deadlocks_on_overflow() {
        let (env, nm, names) = build(1, OverflowHandlingProtocol::Error);
        let q0 = initial_queue(&names);
        let q1 = enqueue_step(&env, &q0, names.enqueue);
        let q2 = enqueue_step(&env, &q1, names.enqueue);
        // The error state has no steps at all: it blocks global time.
        assert!(steps(&env, &q2).is_empty());
        let err = names.error_def.unwrap();
        assert_eq!(nm.def(err), Some(DefMeaning::QueueError(0)));
        assert_eq!(q2, invoke(err, []));
    }

    #[test]
    fn queue_always_lets_time_pass_until_error() {
        let (env, _nm, names) = build(3, OverflowHandlingProtocol::Error);
        let mut q = initial_queue(&names);
        for _ in 0..3 {
            let s = steps(&env, &q);
            assert!(s.iter().any(|(l, _)| l.is_timed()), "idle step offered");
            q = enqueue_step(&env, &q, names.enqueue);
        }
    }

    #[test]
    fn event_meanings_registered() {
        let (_env, nm, names) = build(2, OverflowHandlingProtocol::DropNewest);
        assert_eq!(nm.event(names.enqueue), Some(EventMeaning::Enqueue(0)));
        assert_eq!(nm.event(names.dequeue), Some(EventMeaning::Dequeue(0)));
    }

    #[test]
    fn size_defaults_to_at_least_one() {
        let (env, _nm, names) = build(0, OverflowHandlingProtocol::Error);
        let q0 = initial_queue(&names);
        // Size clamped to 1: one enqueue fits.
        let q1 = enqueue_step(&env, &q0, names.enqueue);
        assert_ne!(q0, q1);
    }
}
