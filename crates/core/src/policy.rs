//! Scheduling protocols as ACSR priority assignments (§5 of the paper).
//!
//! > Any fixed-priority scheduling algorithm, such as rate-monotonic or
//! > deadline-monotonic scheduling, can be implemented by […] assigning a
//! > priority to each thread Ti based on the appropriate properties of the
//! > thread. Then, this priority is assigned to every use of the resource
//! > that corresponds to P in any timed action of the ACSR thread process.
//! >
//! > Dynamic-priority scheduling can be implemented by using parametric
//! > expressions for priorities. For example, in order to reflect the EDF
//! > scheduling, we use the following expression as the priority in each
//! > access to the processor resource: πi = dmax − (di − t).
//!
//! Our priorities are shifted by +1 so that a ready thread's processor access
//! always has priority ≥ 1 and therefore preempts idling (a priority-0 access
//! does not, per the preemption relation of §3); background threads sit at
//! priority 1, below every deadline-constrained thread.

use aadl::instance::{CompId, InstanceModel};
use aadl::properties::{DispatchProtocol, SchedulingProtocol};
use acsr::Expr;

use crate::quantum::ThreadTiming;
use crate::translate::TranslateError;

/// Parameter index of `e` (accumulated execution) in the compute process.
pub const PARAM_E: u8 = 0;
/// Parameter index of `t` (time since dispatch) in the compute process.
pub const PARAM_T: u8 = 1;

/// The priority of one thread's processor accesses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PrioSpec {
    /// A fixed priority (RMS / DMS / HPF / background).
    Static(u32),
    /// EDF: `π = dmax − (d − t) + 1` over the compute parameter `t`.
    Edf {
        /// Largest deadline among threads on this processor (quanta).
        dmax: i64,
        /// This thread's deadline (quanta).
        d: i64,
    },
    /// LLF: laxity `ℓ = (d − t) − (cmax − e)`, priority `π = lmax − ℓ + 1`.
    Llf {
        /// Largest deadline among threads on this processor (quanta).
        lmax: i64,
        /// This thread's deadline (quanta).
        d: i64,
        /// This thread's worst-case execution time (quanta).
        cmax: i64,
    },
}

impl PrioSpec {
    /// Does this specification reference the elapsed-time parameter `t`?
    pub fn needs_elapsed(&self) -> bool {
        matches!(self, PrioSpec::Edf { .. } | PrioSpec::Llf { .. })
    }

    /// The priority expression over the compute process's parameters
    /// `(e, t)`.
    pub fn expr(&self) -> Expr {
        match self {
            PrioSpec::Static(p) => Expr::c(*p as i64),
            // π = dmax − (d − t) + 1
            PrioSpec::Edf { dmax, d } => Expr::c(*dmax)
                .sub(Expr::c(*d).sub(Expr::p(PARAM_T)))
                .add(Expr::c(1)),
            // π = lmax − ((d − t) − (cmax − e)) + 1
            PrioSpec::Llf { lmax, d, cmax } => Expr::c(*lmax)
                .sub(
                    Expr::c(*d)
                        .sub(Expr::p(PARAM_T))
                        .sub(Expr::c(*cmax).sub(Expr::p(PARAM_E))),
                )
                .add(Expr::c(1)),
        }
    }
}

/// Assign a priority specification to every thread in `timings` (parallel to
/// `threads`), following `protocol`.
///
/// * Background threads always get the lowest priority, 1.
/// * RMS ranks deadline-constrained threads by ascending period (ties share a
///   priority, leaving the arbitration nondeterministic — explored
///   exhaustively); DMS by ascending deadline; HPF takes the `Priority`
///   property (clamped to ≥ 2, above background).
/// * EDF/LLF produce parametric specifications; they reject background
///   threads (no deadline to compare) as unsupported.
pub fn assign_priorities(
    model: &InstanceModel,
    protocol: SchedulingProtocol,
    threads: &[CompId],
    timings: &[ThreadTiming],
) -> Result<Vec<PrioSpec>, TranslateError> {
    debug_assert_eq!(threads.len(), timings.len());
    let path = |i: usize| model.component(threads[i]).display_path().to_owned();

    match protocol {
        SchedulingProtocol::Rms | SchedulingProtocol::Dms => {
            // Key: period for RMS, deadline for DMS. Background threads have
            // neither and sit at priority 1.
            let key = |tt: &ThreadTiming| -> Option<i64> {
                match protocol {
                    // Aperiodic threads have no period; rank them by deadline
                    // (the standard practical convention).
                    SchedulingProtocol::Rms => tt.period_q.or(tt.deadline_q),
                    _ => tt.deadline_q,
                }
            };
            let mut out = Vec::with_capacity(timings.len());
            for (i, tt) in timings.iter().enumerate() {
                let Some(k) = key(tt) else {
                    if tt.dispatch == DispatchProtocol::Background {
                        out.push(PrioSpec::Static(1));
                        continue;
                    }
                    return Err(TranslateError::Unsupported(format!(
                        "thread `{}` lacks the property {protocol} ranks by",
                        path(i)
                    )));
                };
                // Priority = 2 + number of threads with strictly greater key:
                // smallest period/deadline ⇒ highest priority; equal keys
                // share a priority.
                let greater = timings
                    .iter()
                    .filter(|o| key(o).is_some_and(|ko| ko > k))
                    .count() as u32;
                out.push(PrioSpec::Static(2 + greater));
            }
            Ok(out)
        }
        SchedulingProtocol::Hpf => timings
            .iter()
            .enumerate()
            .map(|(i, tt)| {
                if tt.dispatch == DispatchProtocol::Background {
                    return Ok(PrioSpec::Static(1));
                }
                match tt.priority {
                    Some(p) => Ok(PrioSpec::Static(u32::try_from(p.max(2)).unwrap_or(2))),
                    None => Err(TranslateError::Unsupported(format!(
                        "HPF: thread `{}` has no Priority property",
                        path(i)
                    ))),
                }
            })
            .collect(),
        SchedulingProtocol::Edf | SchedulingProtocol::Llf => {
            let dmax = timings
                .iter()
                .filter_map(|tt| tt.deadline_q)
                .max()
                .unwrap_or(1);
            timings
                .iter()
                .enumerate()
                .map(|(i, tt)| {
                    let Some(d) = tt.deadline_q else {
                        return Err(TranslateError::Unsupported(format!(
                            "{protocol}: thread `{}` has no deadline (background threads \
                             are not supported under dynamic priorities)",
                            path(i)
                        )));
                    };
                    Ok(match protocol {
                        SchedulingProtocol::Edf => PrioSpec::Edf { dmax, d },
                        _ => PrioSpec::Llf {
                            lmax: dmax,
                            d,
                            cmax: tt.cmax_q,
                        },
                    })
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadl::properties::DispatchProtocol;

    fn tt(period: Option<i64>, deadline: Option<i64>, cmax: i64, prio: Option<i64>) -> ThreadTiming {
        ThreadTiming {
            dispatch: if deadline.is_some() {
                DispatchProtocol::Periodic
            } else {
                DispatchProtocol::Background
            },
            period_q: period,
            cmin_q: 1,
            cmax_q: cmax,
            deadline_q: deadline,
            priority: prio,
        }
    }

    fn fake_model() -> InstanceModel {
        aadl::examples::cruise_control_model()
    }

    fn fake_threads(n: usize) -> Vec<CompId> {
        let m = fake_model();
        m.threads().take(n).map(|t| t.id).collect()
    }

    #[test]
    fn rms_ranks_by_period() {
        let m = fake_model();
        let threads = fake_threads(3);
        let timings = vec![
            tt(Some(10), Some(10), 2, None),
            tt(Some(5), Some(5), 1, None),
            tt(Some(20), Some(20), 4, None),
        ];
        let prios =
            assign_priorities(&m, SchedulingProtocol::Rms, &threads, &timings).unwrap();
        assert_eq!(
            prios,
            vec![
                PrioSpec::Static(3), // period 10: one greater (20)
                PrioSpec::Static(4), // period 5: two greater
                PrioSpec::Static(2), // period 20: none greater
            ]
        );
    }

    #[test]
    fn rms_ties_share_priority() {
        let m = fake_model();
        let threads = fake_threads(2);
        let timings = vec![tt(Some(10), Some(10), 1, None), tt(Some(10), Some(8), 1, None)];
        let prios =
            assign_priorities(&m, SchedulingProtocol::Rms, &threads, &timings).unwrap();
        assert_eq!(prios[0], prios[1]);
    }

    #[test]
    fn dms_ranks_by_deadline() {
        let m = fake_model();
        let threads = fake_threads(2);
        let timings = vec![tt(Some(10), Some(9), 1, None), tt(Some(10), Some(4), 1, None)];
        let prios =
            assign_priorities(&m, SchedulingProtocol::Dms, &threads, &timings).unwrap();
        assert!(matches!((&prios[0], &prios[1]),
            (PrioSpec::Static(a), PrioSpec::Static(b)) if b > a));
    }

    #[test]
    fn background_sits_below_everyone() {
        let m = fake_model();
        let threads = fake_threads(2);
        let timings = vec![tt(Some(10), Some(10), 1, None), tt(None, None, 3, None)];
        let prios =
            assign_priorities(&m, SchedulingProtocol::Rms, &threads, &timings).unwrap();
        assert_eq!(prios[1], PrioSpec::Static(1));
        assert!(matches!(prios[0], PrioSpec::Static(p) if p >= 2));
    }

    #[test]
    fn hpf_uses_the_priority_property() {
        let m = fake_model();
        let threads = fake_threads(2);
        let timings = vec![
            tt(Some(10), Some(10), 1, Some(7)),
            tt(Some(10), Some(10), 1, Some(3)),
        ];
        let prios =
            assign_priorities(&m, SchedulingProtocol::Hpf, &threads, &timings).unwrap();
        assert_eq!(prios, vec![PrioSpec::Static(7), PrioSpec::Static(3)]);
    }

    #[test]
    fn hpf_missing_priority_is_an_error() {
        let m = fake_model();
        let threads = fake_threads(1);
        let timings = vec![tt(Some(10), Some(10), 1, None)];
        assert!(assign_priorities(&m, SchedulingProtocol::Hpf, &threads, &timings).is_err());
    }

    #[test]
    fn edf_priority_grows_toward_the_deadline() {
        // Paper §5: "the earlier the absolute deadline of the current dispatch
        // of Ti, the larger its value."
        let spec = PrioSpec::Edf { dmax: 50, d: 20 };
        assert!(spec.needs_elapsed());
        let e = spec.expr();
        // At t = 0: 50 - 20 + 1 = 31; at t = 15: 50 - 5 + 1 = 46.
        assert_eq!(e.eval(&[0, 0]).unwrap(), 31);
        assert_eq!(e.eval(&[0, 15]).unwrap(), 46);
        // A thread with a later deadline has lower priority at the same t.
        let later = PrioSpec::Edf { dmax: 50, d: 50 }.expr();
        assert!(later.eval(&[0, 0]).unwrap() < e.eval(&[0, 0]).unwrap());
    }

    #[test]
    fn llf_priority_tracks_laxity() {
        let spec = PrioSpec::Llf {
            lmax: 20,
            d: 20,
            cmax: 5,
        };
        let e = spec.expr();
        // e=0, t=0: laxity = 20 - 5 = 15 → π = 20 - 15 + 1 = 6.
        assert_eq!(e.eval(&[0, 0]).unwrap(), 6);
        // Executing reduces remaining work: e=3, t=3: laxity = 17 - 2 = 15 → 6.
        assert_eq!(e.eval(&[3, 3]).unwrap(), 6);
        // Being preempted shrinks laxity: e=0, t=10: laxity = 10 - 5 = 5 → 16.
        assert_eq!(e.eval(&[0, 10]).unwrap(), 16);
    }

    #[test]
    fn edf_rejects_background_threads() {
        let m = fake_model();
        let threads = fake_threads(1);
        let timings = vec![tt(None, None, 3, None)];
        assert!(assign_priorities(&m, SchedulingProtocol::Edf, &threads, &timings).is_err());
    }

    #[test]
    fn static_spec_has_constant_expr() {
        let s = PrioSpec::Static(4);
        assert!(!s.needs_elapsed());
        assert_eq!(s.expr().eval(&[9, 9]).unwrap(), 4);
    }
}
