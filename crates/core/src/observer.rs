//! End-to-end latency observers (§5 of the paper).
//!
//! > The approach to checking thread deadlines by means of an observer
//! > process […] can be extended to check other timing properties of AADL
//! > models. For example, an observer process can capture violations of an
//! > end-to-end latency constraint for a data flow […]. Such an observer
//! > would be triggered by an input event and, just like a dispatcher
//! > process, would deadlock if the output event is not observed by the flow
//! > deadline.
//!
//! CCS-style synchronisation is binary, so an observer cannot eavesdrop on
//! the `τ@e` of two other processes; instead the translation adds dedicated
//! *probe* events to the completion chains of the observed threads
//! (`obs<i>_start!` at the flow source's completion, `obs<i>_end!` at the
//! destination's), which the observer alone receives. The observer:
//!
//! * idles until a `start` probe arrives, then watches inside a temporal
//!   scope bounded by the latency budget;
//! * receiving `end` within the bound exits the scope back to the idle
//!   state (exception exit);
//! * re-triggered `start` probes during a watch are absorbed (this observer
//!   tracks one flow instance at a time; the paper notes pipelined flows
//!   need dynamically spawned observers, which is out of scope);
//! * the scope's timeout is a distinguished deadlocking state
//!   (`LatencyMiss`), surfacing in diagnostics as a latency violation;
//! * stray `end` probes while idle are absorbed.

use aadl::instance::CompId;
use aadl::properties::TimeVal;
use acsr::{act, choice, evt_recv, invoke, nil, scope, DefId, Env, Expr, Res, Symbol, TimeBound};

use crate::names::{DefMeaning, NameMap};

/// A latency constraint: from the completion of `from` to the completion of
/// `to` within `bound`.
#[derive(Clone, Debug)]
pub struct LatencyObserver {
    /// The flow's source thread.
    pub from: CompId,
    /// The flow's destination thread.
    pub to: CompId,
    /// The end-to-end latency budget.
    pub bound: TimeVal,
}

/// Declare and define observer `idx`, watching `start` → `end` within
/// `bound_q` quanta. Returns the observer's initial definition.
pub fn build_observer(
    env: &mut Env,
    nm: &mut NameMap,
    idx: usize,
    start: Symbol,
    end: Symbol,
    bound_q: i64,
) -> DefId {
    let obs = env.declare(&format!("Observer_{idx}"), 0);
    let watch_body = env.declare(&format!("ObserverWatch_{idx}"), 0);
    env.set_body(
        watch_body,
        choice([
            act([] as [(Res, Expr); 0], invoke(watch_body, [])),
            // Re-triggered start: absorbed.
            evt_recv(start, 1, invoke(watch_body, [])),
            // The end probe; the enclosing scope's exception intercepts it.
            evt_recv(end, 1, nil()),
        ]),
    );
    let miss = env.define(&format!("LatencyMiss_{idx}"), 0, nil());
    nm.add_def(miss, DefMeaning::LatencyMiss(idx));
    let watch = scope(
        invoke(watch_body, []),
        TimeBound::Finite(Expr::c(bound_q)),
        Some((end, invoke(obs, []))),
        Some(invoke(miss, [])),
        None,
    );
    env.set_body(
        obs,
        choice([
            act([] as [(Res, Expr); 0], invoke(obs, [])),
            evt_recv(start, 1, watch),
            // Stray end while idle: absorbed.
            evt_recv(end, 1, invoke(obs, [])),
        ]),
    );
    obs
}

#[cfg(test)]
mod tests {
    use super::*;
    use acsr::{evt_send, par, restrict, P};
    use versa::{explore, Options};

    fn harness(bound_q: i64, gap_q: i64) -> (Env, P) {
        // A driver that emits start, idles `gap_q` quanta, then emits end,
        // then idles forever.
        let mut env = Env::new();
        let mut nm = NameMap::default();
        let start = Symbol::new("obs0_start_t");
        let end = Symbol::new("obs0_end_t");
        let obs = build_observer(&mut env, &mut nm, 0, start, end, bound_q);

        let idle = env.declare("IdleH", 0);
        env.set_body(idle, act([] as [(Res, Expr); 0], invoke(idle, [])));
        let gap = env.declare("Gap", 1);
        env.set_body(
            gap,
            choice([
                acsr::guard(
                    acsr::BExpr::gt(Expr::p(0), Expr::c(0)),
                    act(
                        [] as [(Res, Expr); 0],
                        invoke(gap, [Expr::p(0).sub(Expr::c(1))]),
                    ),
                ),
                acsr::guard(
                    acsr::BExpr::eq(Expr::p(0), Expr::c(0)),
                    evt_send(end, 1, invoke(idle, [])),
                ),
            ]),
        );
        let driver = evt_send(start, 1, invoke(gap, [Expr::c(gap_q)]));
        let sys = restrict(par([invoke(obs, []), driver]), [start, end]);
        (env, sys)
    }

    #[test]
    fn within_bound_is_deadlock_free() {
        let (env, sys) = harness(5, 3);
        let ex = explore(&env, &sys, &Options::default());
        assert!(ex.deadlock_free());
    }

    #[test]
    fn at_exactly_the_bound_is_allowed() {
        let (env, sys) = harness(5, 5);
        let ex = explore(&env, &sys, &Options::default());
        assert!(ex.deadlock_free());
    }

    #[test]
    fn beyond_the_bound_deadlocks() {
        let (env, sys) = harness(5, 6);
        let ex = explore(&env, &sys, &Options::default());
        assert_eq!(ex.deadlocks.len(), 1);
        // Deadlock at the bound: 1 start + 5 quanta.
        let t = ex.first_deadlock_trace().unwrap();
        assert_eq!(t.elapsed_quanta(), 5);
    }

    #[test]
    fn stray_end_probe_is_absorbed() {
        let mut env = Env::new();
        let mut nm = NameMap::default();
        let start = Symbol::new("obs1_start_t");
        let end = Symbol::new("obs1_end_t");
        let obs = build_observer(&mut env, &mut nm, 1, start, end, 3);
        let idle = env.declare("IdleS", 0);
        env.set_body(idle, act([] as [(Res, Expr); 0], invoke(idle, [])));
        // Driver emits only end.
        let driver = evt_send(end, 1, invoke(idle, []));
        let sys = restrict(par([invoke(obs, []), driver]), [start, end]);
        let ex = explore(&env, &sys, &Options::default());
        assert!(ex.deadlock_free());
    }
}
