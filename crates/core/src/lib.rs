//! # aadl2acsr — schedulability analysis of AADL models via ACSR
//!
//! The primary contribution of Sokolsky, Lee & Clarke, *Schedulability
//! Analysis of AADL Models* (IPDPS 2006): a semantics-preserving translation
//! of fully instantiated and bound AADL models into the real-time process
//! algebra ACSR, such that **the ACSR model is deadlock-free iff every thread
//! meets its deadline** (§5). Schedulability analysis is then state-space
//! exploration (the `versa` crate), and a deadlock trace is *raised* back to
//! the AADL level as a failing scenario.
//!
//! ## The translation (Algorithm 1 of the paper)
//!
//! ```text
//! for all p ∈ P:                          (processors)
//!   for all t ∈ T_p:                      (threads bound to p)
//!     generate a skeleton S_t for t                 (§4.2, Figs 4–5 → skeleton/compute)
//!     generate a dispatcher D_t for E_t^in          (§4.3, Fig 6  → dispatcher)
//!     for all e ∈ E_t^out:
//!       populate S_t with events e!                 (§4.4 → event sends)
//!       if e is mapped to a bus b: populate S_t with resource b
//!     for all e ∈ E_t^in:
//!       generate the queue process for e            (§4.4 → queue)
//! ```
//!
//! Scheduling policies are encoded as priority assignments on the processor
//! resource (§5): fixed-priority policies (RMS, DMS, HPF) become static
//! priorities, and dynamic policies become parametric priority expressions
//! over the compute process's `(e, t)` parameters — EDF as
//! `π = dmax − (d − t) + 1`, LLF analogously over the laxity.
//!
//! ## Crate layout
//!
//! | module | paper | contents |
//! |--------|-------|----------|
//! | [`quantum`] | §4.1 | discrete-time abstraction: time values → scheduling quanta |
//! | [`names`] | §1/§5 | name map between AADL instances and ACSR symbols/tags |
//! | [`policy`] | §5 | scheduling protocols as priority specifications |
//! | [`compute`] | Fig 5 | the `Compute`/`Preempted` process of a thread |
//! | [`skeleton`] | Fig 4 | the thread skeleton automaton |
//! | [`dispatcher`] | Fig 6 | periodic / aperiodic / sporadic / background dispatchers |
//! | [`protocol`] | §7 ext. | concurrency-control protocols for shared data |
//! | [`queue`] | §4.4 | connection queue counter processes |
//! | [`mod@translate`] | Alg. 1 | whole-model orchestration |
//! | [`analysis`] | §5 | schedulability verdicts via deadlock detection |
//! | [`diagnose`] | §5 | raising failing traces to AADL-level timelines |
//! | [`observer`] | §5 | end-to-end latency observer processes |
//!
//! ## Quickstart
//!
//! ```
//! use aadl::examples::cruise_control_model;
//! use aadl2acsr::{analyze, AnalysisOptions, TranslateOptions};
//!
//! let model = cruise_control_model();
//! let outcome = analyze(&model, &TranslateOptions::default(),
//!                       &AnalysisOptions::default()).unwrap();
//! assert!(outcome.schedulable());
//! assert_eq!(outcome.exit_code(), 0);
//! ```

pub mod analysis;
pub mod compute;
pub mod diagnose;
pub mod dispatcher;
pub mod modes;
pub mod names;
pub mod observer;
pub mod policy;
pub mod protocol;
pub mod quantum;
pub mod queue;
pub mod skeleton;
pub mod translate;

pub use analysis::{
    analyze, analyze_translated, AnalysisOptions, AnalysisOutcome, Interrupt, EXIT_INPUT_ERROR,
};
pub use diagnose::{FailingScenario, ViolationKind};
pub use names::{ComponentRole, DefMeaning, EventMeaning, NameMap, TagMeaning};
pub use observer::LatencyObserver;
pub use policy::PrioSpec;
pub use protocol::{CsMode, CsSpec};
pub use quantum::{derive_quantum, thread_timing, ThreadTiming};
pub use translate::{
    translate, Inventory, SendPattern, TranslateError, TranslateOptions, TranslatedModel,
};
