//! Schedulability analysis: translation + exploration + diagnosis (§5).
//!
//! > It can be shown that the resulting ACSR model is deadlock-free if and
//! > only if every task meets its deadline. […] With this, analysis can be
//! > performed by state-space exploration of the ACSR process. A deadlock
//! > found in the state space of the process indicates a violation of the
//! > timing constraints.
//!
//! [`analyze`] runs the full pipeline of the paper's OSATE plugin: translate
//! the model into ACSR, explore the prioritized transition system with the
//! VERSA-equivalent engine, and — when a deadlock is found — raise the trace
//! into an AADL-level [`FailingScenario`].

use aadl::instance::InstanceModel;

use crate::diagnose::{raise, FailingScenario};
use crate::translate::{translate, TranslateError, TranslateOptions, TranslatedModel};

/// Options for the exploration phase.
#[derive(Clone, Debug)]
pub struct AnalysisOptions {
    /// Exploration options; defaults to stopping at the first deadlock
    /// (sufficient for a verdict + shortest counterexample).
    pub explore: versa::Options,
}

impl Default for AnalysisOptions {
    fn default() -> AnalysisOptions {
        AnalysisOptions {
            explore: versa::Options::verdict(),
        }
    }
}

impl AnalysisOptions {
    /// Exhaustive exploration (do not stop at the first deadlock).
    pub fn exhaustive() -> AnalysisOptions {
        AnalysisOptions {
            explore: versa::Options::default(),
        }
    }

    /// Parallel exploration with `threads` workers.
    pub fn with_threads(mut self, threads: usize) -> AnalysisOptions {
        self.explore.threads = threads;
        self
    }
}

/// The outcome of a schedulability analysis.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// True iff the state space is deadlock-free — every thread meets its
    /// deadline in *every* behaviour (§5).
    pub schedulable: bool,
    /// True when the exploration hit its state budget before completing; a
    /// `schedulable = false` verdict is then *unknown* rather than proven.
    pub truncated: bool,
    /// The failing scenario, raised to the AADL level, when one exists.
    pub scenario: Option<FailingScenario>,
    /// Exploration statistics.
    pub stats: versa::Stats,
}

/// Analyze an already-translated model.
///
/// The recorder carried by [`versa::Options::obs`] instruments the whole
/// phase: the exploration records its own spans, the trace raising gets a
/// `diagnose.raise` span, and the outcome is emitted as a `verdict` event
/// (`schedulable`, `truncated`, and — when a counterexample exists — the
/// `deadlock_depth` in quanta).
pub fn analyze_translated(
    model: &InstanceModel,
    tm: &TranslatedModel,
    opts: &AnalysisOptions,
) -> Verdict {
    let rec = &opts.explore.obs;
    // Share the translator's term store with the explorer: the initial term's
    // subterms are already canonical, so re-interning them is pure reuse.
    let mut eopts = opts.explore.clone();
    eopts.store = Some(tm.store.clone());
    let ex = versa::explore(&tm.env, &tm.initial, &eopts);
    let scenario = ex.first_deadlock_trace().map(|trace| {
        let raise_span = rec.span("diagnose.raise");
        let sc = raise(model, tm, &trace);
        raise_span.set("trace_len", trace.len() as i64);
        raise_span.set("at_quantum", sc.at_quantum as i64);
        raise_span.end();
        let blocked = sc
            .timeline
            .iter()
            .flat_map(|row| &row.activities)
            .filter(|(_, a)| matches!(a, crate::diagnose::Activity::Blocked { .. }))
            .count();
        if blocked > 0 {
            rec.counter("protocol.blocking_events").add(blocked as u64);
        }
        sc
    });
    let verdict = Verdict {
        schedulable: ex.deadlock_free(),
        truncated: ex.truncated,
        scenario,
        stats: ex.stats,
    };
    let mut fields = vec![
        ("schedulable", obs::Json::Bool(verdict.schedulable)),
        ("truncated", obs::Json::Bool(verdict.truncated)),
    ];
    if let Some(sc) = &verdict.scenario {
        fields.push(("deadlock_depth", obs::Json::Int(sc.at_quantum as i64)));
    }
    rec.event("verdict", fields);
    verdict
}

/// Translate and analyze an instance model.
pub fn analyze(
    model: &InstanceModel,
    topts: &TranslateOptions,
    aopts: &AnalysisOptions,
) -> Result<Verdict, TranslateError> {
    let tm = translate(model, topts)?;
    Ok(analyze_translated(model, &tm, aopts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadl::builder::PackageBuilder;
    use aadl::examples::{cruise_control_model, cruise_control_overloaded, producer_handler};
    use aadl::instance::instantiate;
    use aadl::model::Category;
    use aadl::properties::{names, PropertyValue, TimeVal};

    /// A one-processor, two-thread RMS system; schedulable iff the response
    /// times work out — here trivially yes (U = 2/10 + 3/15 = 0.4).
    fn small_ok() -> InstanceModel {
        let pkg = PackageBuilder::new("OK")
            .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
            .periodic_thread(
                "T1",
                TimeVal::ms(10),
                (TimeVal::ms(2), TimeVal::ms(2)),
                TimeVal::ms(10),
            )
            .periodic_thread(
                "T2",
                TimeVal::ms(15),
                (TimeVal::ms(3), TimeVal::ms(3)),
                TimeVal::ms(15),
            )
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("t1", Category::Thread, "T1")
                    .sub("t2", Category::Thread, "T2")
                    .bind_processor("t1", "cpu")
                    .bind_processor("t2", "cpu")
            })
            .build();
        instantiate(&pkg, "Top.impl").unwrap()
    }

    /// Same structure, overloaded: U = 6/10 + 8/15 > 1.
    fn small_overloaded() -> InstanceModel {
        let pkg = PackageBuilder::new("Bad")
            .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
            .periodic_thread(
                "T1",
                TimeVal::ms(10),
                (TimeVal::ms(6), TimeVal::ms(6)),
                TimeVal::ms(10),
            )
            .periodic_thread(
                "T2",
                TimeVal::ms(15),
                (TimeVal::ms(8), TimeVal::ms(8)),
                TimeVal::ms(15),
            )
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("t1", Category::Thread, "T1")
                    .sub("t2", Category::Thread, "T2")
                    .bind_processor("t1", "cpu")
                    .bind_processor("t2", "cpu")
            })
            .build();
        instantiate(&pkg, "Top.impl").unwrap()
    }

    #[test]
    fn schedulable_system_is_deadlock_free() {
        let m = small_ok();
        let v = analyze(
            &m,
            &TranslateOptions::default(),
            &AnalysisOptions::exhaustive(),
        )
        .unwrap();
        assert!(v.schedulable, "stats: {:?}", v.stats);
        assert!(v.scenario.is_none());
        assert!(!v.truncated);
        assert!(v.stats.states > 1);
    }

    #[test]
    fn overloaded_system_misses_a_deadline() {
        let m = small_overloaded();
        let v = analyze(
            &m,
            &TranslateOptions::default(),
            &AnalysisOptions::default(),
        )
        .unwrap();
        assert!(!v.schedulable);
        let sc = v.scenario.expect("scenario");
        // T2 (period 15) is the RMS victim.
        assert!(sc
            .violations
            .iter()
            .any(|vk| matches!(vk, crate::ViolationKind::DeadlineMiss { thread } if thread == "t2")));
    }

    #[test]
    fn compact_and_faithful_agree_on_verdicts() {
        for m in [small_ok(), small_overloaded()] {
            let faithful = analyze(
                &m,
                &TranslateOptions::default(),
                &AnalysisOptions::default(),
            )
            .unwrap();
            let compact = analyze(
                &m,
                &TranslateOptions {
                    compact: true,
                    ..Default::default()
                },
                &AnalysisOptions::default(),
            )
            .unwrap();
            assert_eq!(faithful.schedulable, compact.schedulable);
        }
    }

    #[test]
    fn compact_mode_never_grows_the_state_space() {
        // For purely periodic models the dispatcher's period/deadline scopes
        // already track elapsed time, so the skeleton's redundant bookkeeping
        // does not multiply *states* — compact mode shrinks each state's term
        // (fewer scopes, one parameter instead of two) without changing the
        // reachable count. The assertion is `<=`: compact must never be worse.
        let m = small_ok();
        let faithful = analyze(
            &m,
            &TranslateOptions::default(),
            &AnalysisOptions::exhaustive(),
        )
        .unwrap();
        let compact = analyze(
            &m,
            &TranslateOptions {
                compact: true,
                ..Default::default()
            },
            &AnalysisOptions::exhaustive(),
        )
        .unwrap();
        assert!(
            compact.stats.states <= faithful.stats.states,
            "compact {} vs faithful {}",
            compact.stats.states,
            faithful.stats.states
        );
        assert_eq!(compact.stats.deadlocks, faithful.stats.deadlocks);
    }

    #[test]
    fn recorder_captures_the_whole_pipeline() {
        let m = small_overloaded();
        let rec = obs::Recorder::enabled();
        let topts = TranslateOptions {
            obs: rec.clone(),
            ..Default::default()
        };
        let mut aopts = AnalysisOptions::default();
        aopts.explore.obs = rec.clone();
        let v = analyze(&m, &topts, &aopts).unwrap();
        assert!(!v.schedulable);

        let run = rec.finish();
        let names: Vec<&str> = run.spans.iter().map(|s| s.name.as_str()).collect();
        for expected in ["translate", "explore", "explore.level", "diagnose.raise"] {
            assert!(names.contains(&expected), "missing span {expected}");
        }
        let verdicts: Vec<_> = run.events.iter().filter(|e| e.name == "verdict").collect();
        assert_eq!(verdicts.len(), 1);
        assert!(verdicts[0]
            .fields
            .iter()
            .any(|(k, val)| k == "schedulable" && *val == obs::Json::Bool(false)));
        assert!(verdicts[0]
            .fields
            .iter()
            .any(|(k, _)| k == "deadlock_depth"));
        // Two threads → two skeleton-size observations.
        assert!(run
            .histograms
            .iter()
            .any(|(k, s)| k == "translate.skeleton_size" && s.count == 2));
    }

    #[test]
    fn cruise_control_nominal_is_schedulable() {
        let m = cruise_control_model();
        let v = analyze(
            &m,
            &TranslateOptions::default(),
            &AnalysisOptions::default(),
        )
        .unwrap();
        assert!(v.schedulable, "stats: {:?}", v.stats);
    }

    #[test]
    fn cruise_control_overloaded_is_not() {
        let pkg = cruise_control_overloaded();
        let m = instantiate(&pkg, "CruiseControl.impl").unwrap();
        let v = analyze(
            &m,
            &TranslateOptions::default(),
            &AnalysisOptions::default(),
        )
        .unwrap();
        assert!(!v.schedulable);
    }

    #[test]
    fn producer_handler_round_trip() {
        let pkg = producer_handler(1, "DropNewest");
        let m = instantiate(&pkg, "Top.impl").unwrap();
        let v = analyze(
            &m,
            &TranslateOptions::default(),
            &AnalysisOptions::exhaustive(),
        )
        .unwrap();
        // Producer (5/20) + handler (5/20, dispatched at most once per 20 ms):
        // comfortably schedulable.
        assert!(v.schedulable, "stats: {:?}", v.stats);
    }

    #[test]
    fn edf_schedules_what_rms_cannot() {
        // Classic: two tasks with U = 1.0 — EDF schedulable, RMS not.
        // T1 = (P=4, C=2), T2 = (P=8, C=4); RM response of T2: 2+2+4 = 8…
        // that one is schedulable under both; use U > ln2 pattern instead:
        // T1 = (P=10, C=5), T2 = (P=14, C=7): U = 1.0; RMS misses T2
        // (response 5+5+7 > 14), EDF meets everything at U = 1.
        let build = |protocol: &str| {
            let pkg = PackageBuilder::new("EdfVsRms")
                .processor("cpu_t", |p| {
                    p.prop_enum(names::SCHEDULING_PROTOCOL, protocol)
                })
                .periodic_thread(
                    "T1",
                    TimeVal::ms(10),
                    (TimeVal::ms(5), TimeVal::ms(5)),
                    TimeVal::ms(10),
                )
                .periodic_thread(
                    "T2",
                    TimeVal::ms(14),
                    (TimeVal::ms(7), TimeVal::ms(7)),
                    TimeVal::ms(14),
                )
                .system("Top", |s| s)
                .implementation("Top.impl", Category::System, |i| {
                    i.sub("cpu", Category::Processor, "cpu_t")
                        .sub("t1", Category::Thread, "T1")
                        .sub("t2", Category::Thread, "T2")
                        .bind_processor("t1", "cpu")
                        .bind_processor("t2", "cpu")
                        .prop(
                            names::SCHEDULING_QUANTUM,
                            PropertyValue::Time(TimeVal::ms(1)),
                        )
                })
                .build();
            instantiate(&pkg, "Top.impl").unwrap()
        };
        let rms = analyze(
            &build("RMS"),
            &TranslateOptions::default(),
            &AnalysisOptions::default(),
        )
        .unwrap();
        assert!(!rms.schedulable, "RMS cannot schedule U = 1.0 here");
        let edf = analyze(
            &build("EDF"),
            &TranslateOptions::default(),
            &AnalysisOptions::default(),
        )
        .unwrap();
        assert!(edf.schedulable, "EDF schedules U = 1.0; stats: {:?}", edf.stats);
    }
}
