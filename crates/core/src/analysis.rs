//! Schedulability analysis: translation + exploration + diagnosis (§5).
//!
//! > It can be shown that the resulting ACSR model is deadlock-free if and
//! > only if every task meets its deadline. […] With this, analysis can be
//! > performed by state-space exploration of the ACSR process. A deadlock
//! > found in the state space of the process indicates a violation of the
//! > timing constraints.
//!
//! [`analyze`] runs the full pipeline of the paper's OSATE plugin: translate
//! the model into ACSR, explore the prioritized transition system with the
//! VERSA-equivalent engine, and — when a deadlock is found — raise the trace
//! into an AADL-level [`FailingScenario`].

use aadl::instance::InstanceModel;

use crate::diagnose::{raise, FailingScenario};
use crate::translate::{translate, TranslateError, TranslateOptions, TranslatedModel};

/// Options for the exploration phase.
#[derive(Clone, Debug)]
pub struct AnalysisOptions {
    /// Exploration options; defaults to stopping at the first deadlock
    /// (sufficient for a verdict + shortest counterexample).
    pub explore: versa::Options,
}

impl Default for AnalysisOptions {
    fn default() -> AnalysisOptions {
        AnalysisOptions {
            explore: versa::Options::verdict(),
        }
    }
}

impl AnalysisOptions {
    /// Exhaustive exploration (do not stop at the first deadlock).
    pub fn exhaustive() -> AnalysisOptions {
        AnalysisOptions {
            explore: versa::Options::default(),
        }
    }

    /// Parallel exploration with `threads` workers.
    pub fn with_threads(mut self, threads: usize) -> AnalysisOptions {
        self.explore.threads = threads;
        self
    }

    /// Install a shared cancellation token (see [`versa::CancelToken`]); the
    /// explorer polls it at every frontier state, so a long analysis can be
    /// stopped from another thread (a request handler, a deadline watchdog).
    pub fn with_cancel(mut self, cancel: versa::CancelToken) -> AnalysisOptions {
        self.explore.cancel = cancel;
        self
    }
}

/// Exit code for usage/input errors (bad flags, parse errors, missing
/// files) — the one exit the analysis itself never produces, kept alongside
/// [`AnalysisOutcome::exit_code`] so the whole 0/1/2/3 contract lives in
/// this module.
pub const EXIT_INPUT_ERROR: u8 = 2;

/// Why an analysis ended without a verdict.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Interrupt {
    /// The exploration hit its `max_states` budget (or exhausted the id
    /// space) before completing.
    StateBudget,
    /// The run's [`versa::CancelToken`] fired mid-exploration.
    Cancelled,
}

/// The outcome of a schedulability analysis — the typed form of the tools'
/// 0/1/2/3 exit-code contract.
///
/// Every process-level consumer (the `aadlsched` CLI, the `aadlschedd`
/// daemon) derives its exit code from [`AnalysisOutcome::exit_code`] rather
/// than re-implementing the mapping:
///
/// | variant | meaning | exit code |
/// |---|---|---|
/// | [`Schedulable`](AnalysisOutcome::Schedulable) | state space explored exhaustively, deadlock-free (§5) | 0 |
/// | [`Unschedulable`](AnalysisOutcome::Unschedulable) | a deadlock was found and raised to an AADL-level scenario | 1 |
/// | [`Unknown`](AnalysisOutcome::Unknown) | stopped early (budget or cancellation) with no deadlock found | 3 |
///
/// Exit 2 (usage/input error) has no variant — those failures happen before
/// an analysis exists; see [`EXIT_INPUT_ERROR`].
///
/// A found deadlock is a *proof* of unschedulability even when the run was
/// also truncated, so `Unschedulable` wins over `Unknown`.
///
/// # Examples
///
/// ```
/// use aadl2acsr::{AnalysisOutcome, Interrupt};
///
/// let unknown = AnalysisOutcome::Unknown {
///     reason: Interrupt::StateBudget,
///     stats: versa::Stats::default(),
/// };
/// assert_eq!(unknown.exit_code(), 3);
/// assert_eq!(unknown.verdict_str(), "unknown");
/// assert_eq!(unknown.reason_str(), Some("state-budget"));
/// assert!(!unknown.schedulable());
/// assert!(unknown.truncated());
///
/// let ok = AnalysisOutcome::Schedulable { stats: versa::Stats::default() };
/// assert_eq!(ok.exit_code(), 0);
/// assert_eq!(ok.reason_str(), None);
/// ```
#[derive(Clone, Debug)]
pub enum AnalysisOutcome {
    /// The state space is deadlock-free — every thread meets its deadline in
    /// *every* behaviour (§5).
    Schedulable {
        /// Exploration statistics.
        stats: versa::Stats,
    },
    /// A deadlock was found; `scenario` is the counterexample raised to the
    /// AADL level (timeline, violated constraints).
    Unschedulable {
        /// The failing scenario, raised to the AADL level.
        scenario: FailingScenario,
        /// Exploration statistics.
        stats: versa::Stats,
    },
    /// The exploration stopped before a verdict: no deadlock found so far,
    /// but the space was not exhausted.
    Unknown {
        /// Why the run stopped early.
        reason: Interrupt,
        /// Exploration statistics.
        stats: versa::Stats,
    },
}

impl AnalysisOutcome {
    /// True iff the model was *proven* schedulable (exhaustive, deadlock-free).
    pub fn schedulable(&self) -> bool {
        matches!(self, AnalysisOutcome::Schedulable { .. })
    }

    /// True when the exploration hit its state budget before completing.
    pub fn truncated(&self) -> bool {
        matches!(
            self,
            AnalysisOutcome::Unknown {
                reason: Interrupt::StateBudget,
                ..
            }
        )
    }

    /// True when the run was stopped by its cancellation token.
    pub fn cancelled(&self) -> bool {
        matches!(
            self,
            AnalysisOutcome::Unknown {
                reason: Interrupt::Cancelled,
                ..
            }
        )
    }

    /// The failing scenario, when one was found.
    pub fn scenario(&self) -> Option<&FailingScenario> {
        match self {
            AnalysisOutcome::Unschedulable { scenario, .. } => Some(scenario),
            _ => None,
        }
    }

    /// Exploration statistics, whatever the outcome.
    pub fn stats(&self) -> &versa::Stats {
        match self {
            AnalysisOutcome::Schedulable { stats }
            | AnalysisOutcome::Unschedulable { stats, .. }
            | AnalysisOutcome::Unknown { stats, .. } => stats,
        }
    }

    /// The process exit code for this outcome: 0 schedulable, 1 not
    /// schedulable, 3 unknown. (2 is reserved for input errors, which
    /// never produce an outcome; see [`EXIT_INPUT_ERROR`].)
    pub fn exit_code(&self) -> u8 {
        match self {
            AnalysisOutcome::Schedulable { .. } => 0,
            AnalysisOutcome::Unschedulable { .. } => 1,
            AnalysisOutcome::Unknown { .. } => 3,
        }
    }

    /// The verdict as the stable lowercase word used in reports and on the
    /// wire: `"schedulable"`, `"unschedulable"` or `"unknown"`.
    pub fn verdict_str(&self) -> &'static str {
        match self {
            AnalysisOutcome::Schedulable { .. } => "schedulable",
            AnalysisOutcome::Unschedulable { .. } => "unschedulable",
            AnalysisOutcome::Unknown { .. } => "unknown",
        }
    }

    /// For [`Unknown`](AnalysisOutcome::Unknown) outcomes, the stable reason
    /// string (`"state-budget"` or `"cancelled"`); `None` otherwise.
    pub fn reason_str(&self) -> Option<&'static str> {
        match self {
            AnalysisOutcome::Unknown {
                reason: Interrupt::StateBudget,
                ..
            } => Some("state-budget"),
            AnalysisOutcome::Unknown {
                reason: Interrupt::Cancelled,
                ..
            } => Some("cancelled"),
            _ => None,
        }
    }
}

/// Analyze an already-translated model.
///
/// The recorder carried by [`versa::Options::obs`] instruments the whole
/// phase: the exploration records its own spans, the trace raising gets a
/// `diagnose.raise` span, and the outcome is emitted as a `verdict` event
/// (`schedulable`, `truncated`, and — when a counterexample exists — the
/// `deadlock_depth` in quanta).
pub fn analyze_translated(
    model: &InstanceModel,
    tm: &TranslatedModel,
    opts: &AnalysisOptions,
) -> AnalysisOutcome {
    let rec = &opts.explore.obs;
    // Share the translator's term store with the explorer: the initial term's
    // subterms are already canonical, so re-interning them is pure reuse.
    let mut eopts = opts.explore.clone();
    eopts.store = Some(tm.store.clone());
    // Persistent-store keys must commit to the translation options, not just
    // the exploration options: `--protocol pcp` and `--protocol none` can
    // generate different terms from the same source, and even option sets
    // that happen to collide structurally are kept apart by this context.
    eopts.cas_context = tm.options_canon.clone();
    let ex = versa::explore(&tm.env, &tm.initial, &eopts);
    let scenario = ex.first_deadlock_trace().map(|trace| {
        let raise_span = rec.span("diagnose.raise");
        let sc = raise(model, tm, &trace);
        raise_span.set("trace_len", trace.len() as i64);
        raise_span.set("at_quantum", sc.at_quantum as i64);
        raise_span.end();
        let blocked = sc
            .timeline
            .iter()
            .flat_map(|row| &row.activities)
            .filter(|(_, a)| matches!(a, crate::diagnose::Activity::Blocked { .. }))
            .count();
        if blocked > 0 {
            rec.counter("protocol.blocking_events").add(blocked as u64);
        }
        sc
    });
    // A found deadlock is a proof of unschedulability even when the run was
    // also truncated or cancelled; interruption only matters when no
    // counterexample exists.
    let outcome = match scenario {
        Some(scenario) => AnalysisOutcome::Unschedulable {
            scenario,
            stats: ex.stats,
        },
        None if ex.cancelled => AnalysisOutcome::Unknown {
            reason: Interrupt::Cancelled,
            stats: ex.stats,
        },
        None if ex.truncated => AnalysisOutcome::Unknown {
            reason: Interrupt::StateBudget,
            stats: ex.stats,
        },
        None => AnalysisOutcome::Schedulable { stats: ex.stats },
    };
    let mut fields = vec![
        ("schedulable", obs::Json::Bool(outcome.schedulable())),
        ("truncated", obs::Json::Bool(ex.truncated)),
    ];
    if let Some(sc) = outcome.scenario() {
        fields.push(("deadlock_depth", obs::Json::Int(sc.at_quantum as i64)));
    }
    rec.event("verdict", fields);
    outcome
}

/// Translate and analyze an instance model.
pub fn analyze(
    model: &InstanceModel,
    topts: &TranslateOptions,
    aopts: &AnalysisOptions,
) -> Result<AnalysisOutcome, TranslateError> {
    let tm = translate(model, topts)?;
    Ok(analyze_translated(model, &tm, aopts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadl::builder::PackageBuilder;
    use aadl::examples::{cruise_control_model, cruise_control_overloaded, producer_handler};
    use aadl::instance::instantiate;
    use aadl::model::Category;
    use aadl::properties::{names, PropertyValue, TimeVal};

    /// A one-processor, two-thread RMS system; schedulable iff the response
    /// times work out — here trivially yes (U = 2/10 + 3/15 = 0.4).
    fn small_ok() -> InstanceModel {
        let pkg = PackageBuilder::new("OK")
            .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
            .periodic_thread(
                "T1",
                TimeVal::ms(10),
                (TimeVal::ms(2), TimeVal::ms(2)),
                TimeVal::ms(10),
            )
            .periodic_thread(
                "T2",
                TimeVal::ms(15),
                (TimeVal::ms(3), TimeVal::ms(3)),
                TimeVal::ms(15),
            )
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("t1", Category::Thread, "T1")
                    .sub("t2", Category::Thread, "T2")
                    .bind_processor("t1", "cpu")
                    .bind_processor("t2", "cpu")
            })
            .build();
        instantiate(&pkg, "Top.impl").unwrap()
    }

    /// Same structure, overloaded: U = 6/10 + 8/15 > 1.
    fn small_overloaded() -> InstanceModel {
        let pkg = PackageBuilder::new("Bad")
            .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
            .periodic_thread(
                "T1",
                TimeVal::ms(10),
                (TimeVal::ms(6), TimeVal::ms(6)),
                TimeVal::ms(10),
            )
            .periodic_thread(
                "T2",
                TimeVal::ms(15),
                (TimeVal::ms(8), TimeVal::ms(8)),
                TimeVal::ms(15),
            )
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("t1", Category::Thread, "T1")
                    .sub("t2", Category::Thread, "T2")
                    .bind_processor("t1", "cpu")
                    .bind_processor("t2", "cpu")
            })
            .build();
        instantiate(&pkg, "Top.impl").unwrap()
    }

    #[test]
    fn schedulable_system_is_deadlock_free() {
        let m = small_ok();
        let v = analyze(
            &m,
            &TranslateOptions::default(),
            &AnalysisOptions::exhaustive(),
        )
        .unwrap();
        assert!(v.schedulable(), "stats: {:?}", v.stats());
        assert!(v.scenario().is_none());
        assert!(!v.truncated());
        assert!(v.stats().states > 1);
    }

    #[test]
    fn overloaded_system_misses_a_deadline() {
        let m = small_overloaded();
        let v = analyze(
            &m,
            &TranslateOptions::default(),
            &AnalysisOptions::default(),
        )
        .unwrap();
        assert!(!v.schedulable());
        let sc = v.scenario().expect("scenario");
        // T2 (period 15) is the RMS victim.
        assert!(sc
            .violations
            .iter()
            .any(|vk| matches!(vk, crate::ViolationKind::DeadlineMiss { thread } if thread == "t2")));
    }

    #[test]
    fn compact_and_faithful_agree_on_verdicts() {
        for m in [small_ok(), small_overloaded()] {
            let faithful = analyze(
                &m,
                &TranslateOptions::default(),
                &AnalysisOptions::default(),
            )
            .unwrap();
            let compact = analyze(
                &m,
                &TranslateOptions {
                    compact: true,
                    ..Default::default()
                },
                &AnalysisOptions::default(),
            )
            .unwrap();
            assert_eq!(faithful.schedulable(), compact.schedulable());
        }
    }

    #[test]
    fn compact_mode_never_grows_the_state_space() {
        // For purely periodic models the dispatcher's period/deadline scopes
        // already track elapsed time, so the skeleton's redundant bookkeeping
        // does not multiply *states* — compact mode shrinks each state's term
        // (fewer scopes, one parameter instead of two) without changing the
        // reachable count. The assertion is `<=`: compact must never be worse.
        let m = small_ok();
        let faithful = analyze(
            &m,
            &TranslateOptions::default(),
            &AnalysisOptions::exhaustive(),
        )
        .unwrap();
        let compact = analyze(
            &m,
            &TranslateOptions {
                compact: true,
                ..Default::default()
            },
            &AnalysisOptions::exhaustive(),
        )
        .unwrap();
        assert!(
            compact.stats().states <= faithful.stats().states,
            "compact {} vs faithful {}",
            compact.stats().states,
            faithful.stats().states
        );
        assert_eq!(compact.stats().deadlocks, faithful.stats().deadlocks);
    }

    #[test]
    fn recorder_captures_the_whole_pipeline() {
        let m = small_overloaded();
        let rec = obs::Recorder::enabled();
        let topts = TranslateOptions {
            obs: rec.clone(),
            ..Default::default()
        };
        let mut aopts = AnalysisOptions::default();
        aopts.explore.obs = rec.clone();
        let v = analyze(&m, &topts, &aopts).unwrap();
        assert!(!v.schedulable());

        let run = rec.finish();
        let names: Vec<&str> = run.spans.iter().map(|s| s.name.as_str()).collect();
        for expected in ["translate", "explore", "explore.level", "diagnose.raise"] {
            assert!(names.contains(&expected), "missing span {expected}");
        }
        let verdicts: Vec<_> = run.events.iter().filter(|e| e.name == "verdict").collect();
        assert_eq!(verdicts.len(), 1);
        assert!(verdicts[0]
            .fields
            .iter()
            .any(|(k, val)| k == "schedulable" && *val == obs::Json::Bool(false)));
        assert!(verdicts[0]
            .fields
            .iter()
            .any(|(k, _)| k == "deadlock_depth"));
        // Two threads → two skeleton-size observations.
        assert!(run
            .histograms
            .iter()
            .any(|(k, s)| k == "translate.skeleton_size" && s.count == 2));
    }

    #[test]
    fn state_budget_exhaustion_is_a_typed_unknown_with_exit_3() {
        // The exhaustive space of the OK model is far larger than 3 states,
        // so the budget trips and the outcome must be Unknown(StateBudget) —
        // the typed form of the CLI's old exit-3 path.
        let m = small_ok();
        let mut aopts = AnalysisOptions::exhaustive();
        aopts.explore.max_states = 3;
        let v = analyze(&m, &TranslateOptions::default(), &aopts).unwrap();
        assert!(matches!(
            v,
            AnalysisOutcome::Unknown {
                reason: Interrupt::StateBudget,
                ..
            }
        ));
        assert!(!v.schedulable());
        assert!(v.truncated());
        assert!(!v.cancelled());
        assert_eq!(v.exit_code(), 3);
        assert_eq!(v.verdict_str(), "unknown");
        assert_eq!(v.reason_str(), Some("state-budget"));
        assert!(v.scenario().is_none());
    }

    #[test]
    fn cancelled_analysis_is_a_typed_unknown() {
        let m = small_ok();
        let token = versa::CancelToken::new();
        token.cancel();
        let aopts = AnalysisOptions::exhaustive().with_cancel(token);
        let v = analyze(&m, &TranslateOptions::default(), &aopts).unwrap();
        assert!(matches!(
            v,
            AnalysisOutcome::Unknown {
                reason: Interrupt::Cancelled,
                ..
            }
        ));
        assert!(v.cancelled());
        assert!(!v.truncated());
        assert_eq!(v.exit_code(), 3);
        assert_eq!(v.reason_str(), Some("cancelled"));
    }

    #[test]
    fn cruise_control_nominal_is_schedulable() {
        let m = cruise_control_model();
        let v = analyze(
            &m,
            &TranslateOptions::default(),
            &AnalysisOptions::default(),
        )
        .unwrap();
        assert!(v.schedulable(), "stats: {:?}", v.stats());
    }

    #[test]
    fn cruise_control_overloaded_is_not() {
        let pkg = cruise_control_overloaded();
        let m = instantiate(&pkg, "CruiseControl.impl").unwrap();
        let v = analyze(
            &m,
            &TranslateOptions::default(),
            &AnalysisOptions::default(),
        )
        .unwrap();
        assert!(!v.schedulable());
    }

    #[test]
    fn producer_handler_round_trip() {
        let pkg = producer_handler(1, "DropNewest");
        let m = instantiate(&pkg, "Top.impl").unwrap();
        let v = analyze(
            &m,
            &TranslateOptions::default(),
            &AnalysisOptions::exhaustive(),
        )
        .unwrap();
        // Producer (5/20) + handler (5/20, dispatched at most once per 20 ms):
        // comfortably schedulable.
        assert!(v.schedulable(), "stats: {:?}", v.stats());
    }

    #[test]
    fn edf_schedules_what_rms_cannot() {
        // Classic: two tasks with U = 1.0 — EDF schedulable, RMS not.
        // T1 = (P=4, C=2), T2 = (P=8, C=4); RM response of T2: 2+2+4 = 8…
        // that one is schedulable under both; use U > ln2 pattern instead:
        // T1 = (P=10, C=5), T2 = (P=14, C=7): U = 1.0; RMS misses T2
        // (response 5+5+7 > 14), EDF meets everything at U = 1.
        let build = |protocol: &str| {
            let pkg = PackageBuilder::new("EdfVsRms")
                .processor("cpu_t", |p| {
                    p.prop_enum(names::SCHEDULING_PROTOCOL, protocol)
                })
                .periodic_thread(
                    "T1",
                    TimeVal::ms(10),
                    (TimeVal::ms(5), TimeVal::ms(5)),
                    TimeVal::ms(10),
                )
                .periodic_thread(
                    "T2",
                    TimeVal::ms(14),
                    (TimeVal::ms(7), TimeVal::ms(7)),
                    TimeVal::ms(14),
                )
                .system("Top", |s| s)
                .implementation("Top.impl", Category::System, |i| {
                    i.sub("cpu", Category::Processor, "cpu_t")
                        .sub("t1", Category::Thread, "T1")
                        .sub("t2", Category::Thread, "T2")
                        .bind_processor("t1", "cpu")
                        .bind_processor("t2", "cpu")
                        .prop(
                            names::SCHEDULING_QUANTUM,
                            PropertyValue::Time(TimeVal::ms(1)),
                        )
                })
                .build();
            instantiate(&pkg, "Top.impl").unwrap()
        };
        let rms = analyze(
            &build("RMS"),
            &TranslateOptions::default(),
            &AnalysisOptions::default(),
        )
        .unwrap();
        assert!(!rms.schedulable(), "RMS cannot schedule U = 1.0 here");
        let edf = analyze(
            &build("EDF"),
            &TranslateOptions::default(),
            &AnalysisOptions::default(),
        )
        .unwrap();
        assert!(edf.schedulable(), "EDF schedules U = 1.0; stats: {:?}", edf.stats());
    }
}
