//! Mode support — the extension the paper explicitly leaves out:
//!
//! > Given the limited space, we do not discuss handling of modes in the
//! > translation, which is, in general, quite involved. (§4)
//!
//! This module implements a bounded, documented encoding for the common case:
//!
//! * **Modes at the root only.** The root implementation may declare modes
//!   (exactly one initial); any other moded component is rejected.
//! * **Thread gating.** Direct thread subcomponents of the root with an
//!   `in modes (…)` clause are *gated*: their dispatcher can be switched off
//!   (`deact_t`) and on (`act_t`) by the mode manager. Deactivation takes
//!   effect at the dispatcher's next listening/period boundary — ongoing
//!   dispatches complete, matching the AADL rule that executing threads
//!   finish before deactivation.
//! * **Triggers.** A mode transition `m1 -[ t.port ]-> m2` fires when thread
//!   `t` raises `port` (at completion, like every event in the default send
//!   pattern). Triggers with no transition from the current mode are
//!   absorbed.
//! * **The mode manager** is one ACSR process: per mode a state that idles,
//!   absorbs inert triggers, and reacts to its transitions; per transition a
//!   chain of switch steps that patiently (idling) hand `deact!`/`act!`
//!   events to the affected dispatchers, then enter the new mode's state.
//!   Switch events carry priority 3 so they preempt a simultaneous dispatch
//!   at the boundary instant.
//!
//! Mode-gated *connections* and nested moded systems are not supported
//! (rejected with a clear error).

use std::collections::HashMap;

use aadl::instance::{CompId, InstanceModel};
use aadl::model::{Category, FeatureKind};
use acsr::{act, choice, evt_recv, evt_send, invoke, DefId, Env, Expr, Res, Symbol, P};

use crate::names::{EventMeaning, NameMap};
use crate::translate::TranslateError;

/// Per-thread gate events.
#[derive(Copy, Clone, Debug)]
pub struct Gate {
    /// Activation event received by the dispatcher.
    pub activate: Symbol,
    /// Deactivation event received by the dispatcher.
    pub deactivate: Symbol,
    /// Is the thread active in the initial mode?
    pub initially_active: bool,
}

/// The result of building the mode manager.
#[derive(Debug)]
pub struct ModeSetup {
    /// The manager's initial process.
    pub manager_initial: P,
    /// Gates for the mode-gated threads.
    pub gates: HashMap<CompId, Gate>,
    /// Trigger events to append to each raising thread's completion chain.
    pub trigger_sends: HashMap<CompId, Vec<(Symbol, i64)>>,
}

fn unsupported<T>(msg: impl Into<String>) -> Result<T, TranslateError> {
    Err(TranslateError::Unsupported(msg.into()))
}

/// Build the mode manager for `model`, if its root declares modes.
/// Returns `Ok(None)` for single-mode models.
pub fn build_mode_manager(
    env: &mut Env,
    nm: &mut NameMap,
    model: &InstanceModel,
) -> Result<Option<ModeSetup>, TranslateError> {
    let root = model.component(model.root());
    if root.modes.len() <= 1 {
        return Ok(None);
    }
    for c in model.components() {
        if c.id != root.id && c.modes.len() > 1 {
            return unsupported(format!(
                "modes are only supported on the root implementation; `{}` also declares modes",
                c.display_path()
            ));
        }
    }
    let initials: Vec<&str> = root
        .modes
        .iter()
        .filter(|m| m.initial)
        .map(|m| m.name.as_str())
        .collect();
    if initials.len() != 1 {
        return unsupported(format!(
            "exactly one initial mode required, found {}",
            initials.len()
        ));
    }
    let initial_mode = initials[0].to_owned();
    let mode_names: Vec<String> = root.modes.iter().map(|m| m.name.clone()).collect();

    // Gated threads: direct thread children of the root with `in modes`.
    let mut gates: HashMap<CompId, Gate> = HashMap::new();
    for &child in &root.children {
        let c = model.component(child);
        if c.in_modes.is_empty() {
            continue;
        }
        for m in &c.in_modes {
            if !mode_names.iter().any(|n| n.eq_ignore_ascii_case(m)) {
                return unsupported(format!(
                    "`{}` is in mode `{m}`, which the root does not declare",
                    c.display_path()
                ));
            }
        }
        match c.category {
            Category::Thread => {
                let stem = crate::names::stem_of(model, child);
                let activate = Symbol::new(&format!("act_{stem}"));
                let deactivate = Symbol::new(&format!("deact_{stem}"));
                nm.add_event(activate, EventMeaning::Activate(child));
                nm.add_event(deactivate, EventMeaning::Deactivate(child));
                gates.insert(
                    child,
                    Gate {
                        activate,
                        deactivate,
                        initially_active: c
                            .in_modes
                            .iter()
                            .any(|m| m.eq_ignore_ascii_case(&initial_mode)),
                    },
                );
            }
            _ => {
                return unsupported(format!(
                    "`in modes` is only supported on thread subcomponents; `{}` is a {}",
                    c.display_path(),
                    c.category
                ))
            }
        }
    }

    /// Is a (possibly gated) thread active in mode `m`?
    fn active_in(model: &InstanceModel, t: CompId, m: &str) -> bool {
        let c = model.component(t);
        c.in_modes.is_empty() || c.in_modes.iter().any(|x| x.eq_ignore_ascii_case(m))
    }

    // Trigger events: one per (thread, out event port) used by a transition.
    let mut trigger_sends: HashMap<CompId, Vec<(Symbol, i64)>> = HashMap::new();
    let mut trigger_syms: Vec<Symbol> = Vec::new();
    let mut transition_trigger: Vec<Symbol> = Vec::new();
    for (ti, tr) in root.mode_transitions.iter().enumerate() {
        let sub = tr.trigger.subcomponent.as_deref().ok_or_else(|| {
            TranslateError::Unsupported(format!(
                "mode transition #{ti}: trigger `{}` must be `thread.port`",
                tr.trigger
            ))
        })?;
        let thread = root
            .children
            .iter()
            .copied()
            .find(|&c| model.component(c).name.eq_ignore_ascii_case(sub))
            .ok_or_else(|| {
                TranslateError::Unsupported(format!(
                    "mode transition #{ti}: no subcomponent `{sub}`"
                ))
            })?;
        let tc = model.component(thread);
        let fi = tc.feature_index(&tr.trigger.feature).ok_or_else(|| {
            TranslateError::Unsupported(format!(
                "mode transition #{ti}: `{sub}` has no feature `{}`",
                tr.trigger.feature
            ))
        })?;
        match &tc.features[fi].kind {
            FeatureKind::Port { dir, kind } if dir.is_out() && kind.is_queued() => {}
            _ => {
                return unsupported(format!(
                    "mode transition #{ti}: trigger `{}` is not an out event port",
                    tr.trigger
                ))
            }
        }
        let stem = crate::names::stem_of(model, thread);
        let sym = Symbol::new(&format!("mt_{stem}_{}", tr.trigger.feature));
        if !trigger_syms.contains(&sym) {
            trigger_syms.push(sym);
            nm.add_event(sym, EventMeaning::ModeTrigger(ti));
            trigger_sends
                .entry(thread)
                .or_default()
                .push((sym, 1));
        }
        transition_trigger.push(sym);
    }

    // Mode state definitions.
    let mode_defs: HashMap<String, DefId> = mode_names
        .iter()
        .map(|m| {
            (
                m.to_ascii_lowercase(),
                env.declare(&format!("ModeMgr_{m}"), 0),
            )
        })
        .collect();
    let def_of = |m: &str| mode_defs[&m.to_ascii_lowercase()];

    // Per transition: the switch-step chain.
    let mut switch_entry: Vec<P> = Vec::new();
    for (ti, tr) in root.mode_transitions.iter().enumerate() {
        if !mode_names.iter().any(|n| n.eq_ignore_ascii_case(&tr.src))
            || !mode_names.iter().any(|n| n.eq_ignore_ascii_case(&tr.dst))
        {
            return unsupported(format!(
                "mode transition #{ti}: unknown mode `{}` or `{}`",
                tr.src, tr.dst
            ));
        }
        // Deactivations first, then activations, then the new mode.
        let mut sends: Vec<(Symbol, bool)> = Vec::new(); // (event, is_deact)
        let mut gated: Vec<CompId> = gates.keys().copied().collect();
        gated.sort();
        for t in &gated {
            let was = active_in(model, *t, &tr.src);
            let will = active_in(model, *t, &tr.dst);
            if was && !will {
                sends.push((gates[t].deactivate, true));
            }
        }
        for t in &gated {
            let was = active_in(model, *t, &tr.src);
            let will = active_in(model, *t, &tr.dst);
            if !was && will {
                sends.push((gates[t].activate, false));
            }
        }
        // Chain of patient switch steps, each absorbing stray triggers.
        let mut cont = invoke(def_of(&tr.dst), []);
        for (k, (sym, _)) in sends.iter().enumerate().rev() {
            let step = env.declare(&format!("ModeSwitch_{ti}_{k}"), 0);
            let mut alts = vec![
                act([] as [(Res, Expr); 0], invoke(step, [])),
                evt_send(*sym, 3, cont),
            ];
            for trig in &trigger_syms {
                alts.push(evt_recv(*trig, 1, invoke(step, [])));
            }
            env.set_body(step, choice(alts));
            cont = invoke(step, []);
        }
        switch_entry.push(cont);
    }

    // Mode state bodies: idle + react to own transitions + absorb the rest.
    for m in &mode_names {
        let def = def_of(m);
        let mut alts = vec![act([] as [(Res, Expr); 0], invoke(def, []))];
        let mut reacting: Vec<Symbol> = Vec::new();
        for (ti, tr) in root.mode_transitions.iter().enumerate() {
            if tr.src.eq_ignore_ascii_case(m) {
                let sym = transition_trigger[ti];
                if reacting.contains(&sym) {
                    return unsupported(format!(
                        "mode `{m}` has two transitions on the same trigger"
                    ));
                }
                reacting.push(sym);
                alts.push(evt_recv(sym, 2, switch_entry[ti].clone()));
            }
        }
        for trig in &trigger_syms {
            if !reacting.contains(trig) {
                alts.push(evt_recv(*trig, 1, invoke(def, [])));
            }
        }
        env.set_body(def, choice(alts));
    }

    Ok(Some(ModeSetup {
        manager_initial: invoke(def_of(&initial_mode), []),
        gates,
        trigger_sends,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadl::builder::PackageBuilder;
    use aadl::instance::instantiate;
    use aadl::model::Category;
    use aadl::properties::{names, TimeVal};

    fn base_builder() -> PackageBuilder {
        PackageBuilder::new("MT")
            .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
            .thread("T", |t| {
                t.out_event_port("evt")
                    .prop_enum(names::DISPATCH_PROTOCOL, "Periodic")
                    .prop(
                        names::PERIOD,
                        aadl::properties::PropertyValue::Time(TimeVal::ms(4)),
                    )
                    .prop(
                        names::COMPUTE_EXECUTION_TIME,
                        aadl::properties::PropertyValue::TimeRange(
                            TimeVal::ms(1),
                            TimeVal::ms(1),
                        ),
                    )
                    .prop(
                        names::COMPUTE_DEADLINE,
                        aadl::properties::PropertyValue::Time(TimeVal::ms(4)),
                    )
            })
            .system("Top", |s| s)
    }

    #[test]
    fn single_mode_models_need_no_manager() {
        let pkg = base_builder()
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("t", Category::Thread, "T")
                    .bind_processor("t", "cpu")
            })
            .build();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        let mut env = Env::new();
        let mut nm = NameMap::default();
        assert!(build_mode_manager(&mut env, &mut nm, &m)
            .unwrap()
            .is_none());
    }

    #[test]
    fn two_initial_modes_are_rejected() {
        let pkg = base_builder()
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("t", Category::Thread, "T")
                    .bind_processor("t", "cpu")
                    .mode("a", true)
                    .mode("b", true)
            })
            .build();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        let mut env = Env::new();
        let mut nm = NameMap::default();
        let err = build_mode_manager(&mut env, &mut nm, &m).unwrap_err();
        assert!(matches!(err, TranslateError::Unsupported(msg) if msg.contains("initial")));
    }

    #[test]
    fn unknown_in_mode_is_rejected() {
        let pkg = base_builder()
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("t", Category::Thread, "T")
                    .in_modes(&["ghost"])
                    .bind_processor("t", "cpu")
                    .mode("a", true)
                    .mode("b", false)
            })
            .build();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        let mut env = Env::new();
        let mut nm = NameMap::default();
        let err = build_mode_manager(&mut env, &mut nm, &m).unwrap_err();
        assert!(matches!(err, TranslateError::Unsupported(msg) if msg.contains("ghost")));
    }

    #[test]
    fn non_thread_gating_is_rejected() {
        let pkg = base_builder()
            .bus("net")
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("b", Category::Bus, "net")
                    .in_modes(&["a"])
                    .sub("t", Category::Thread, "T")
                    .bind_processor("t", "cpu")
                    .mode("a", true)
                    .mode("b", false)
            })
            .build();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        let mut env = Env::new();
        let mut nm = NameMap::default();
        let err = build_mode_manager(&mut env, &mut nm, &m).unwrap_err();
        assert!(matches!(err, TranslateError::Unsupported(msg) if msg.contains("thread")));
    }

    #[test]
    fn bad_trigger_endpoints_are_rejected() {
        for (trigger, needle) in [
            ("ghost.evt", "no subcomponent"),
            ("t.nope", "no feature"),
        ] {
            let pkg = base_builder()
                .implementation("Top.impl", Category::System, |i| {
                    i.sub("cpu", Category::Processor, "cpu_t")
                        .sub("t", Category::Thread, "T")
                        .bind_processor("t", "cpu")
                        .mode("a", true)
                        .mode("b", false)
                        .mode_transition("a", trigger, "b")
                })
                .build();
            let m = instantiate(&pkg, "Top.impl").unwrap();
            let mut env = Env::new();
            let mut nm = NameMap::default();
            let err = build_mode_manager(&mut env, &mut nm, &m).unwrap_err();
            assert!(
                matches!(&err, TranslateError::Unsupported(msg) if msg.contains(needle)),
                "{trigger}: {err:?}"
            );
        }
    }

    #[test]
    fn duplicate_transitions_on_one_trigger_are_rejected() {
        let pkg = base_builder()
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("t", Category::Thread, "T")
                    .bind_processor("t", "cpu")
                    .mode("a", true)
                    .mode("b", false)
                    .mode("c", false)
                    .mode_transition("a", "t.evt", "b")
                    .mode_transition("a", "t.evt", "c")
            })
            .build();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        let mut env = Env::new();
        let mut nm = NameMap::default();
        let err = build_mode_manager(&mut env, &mut nm, &m).unwrap_err();
        assert!(matches!(err, TranslateError::Unsupported(msg) if msg.contains("two transitions")));
    }

    #[test]
    fn gates_reflect_the_initial_mode() {
        let pkg = base_builder()
            .thread("G", |t| {
                t.prop_enum(names::DISPATCH_PROTOCOL, "Periodic")
                    .prop(
                        names::PERIOD,
                        aadl::properties::PropertyValue::Time(TimeVal::ms(4)),
                    )
                    .prop(
                        names::COMPUTE_EXECUTION_TIME,
                        aadl::properties::PropertyValue::TimeRange(
                            TimeVal::ms(1),
                            TimeVal::ms(1),
                        ),
                    )
                    .prop(
                        names::COMPUTE_DEADLINE,
                        aadl::properties::PropertyValue::Time(TimeVal::ms(4)),
                    )
            })
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("t", Category::Thread, "T")
                    .bind_processor("t", "cpu")
                    .sub("g1", Category::Thread, "G")
                    .in_modes(&["a"])
                    .bind_processor("g1", "cpu")
                    .sub("g2", Category::Thread, "G")
                    .in_modes(&["b"])
                    .bind_processor("g2", "cpu")
                    .mode("a", true)
                    .mode("b", false)
                    .mode_transition("a", "t.evt", "b")
            })
            .build();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        let mut env = Env::new();
        let mut nm = NameMap::default();
        let setup = build_mode_manager(&mut env, &mut nm, &m).unwrap().unwrap();
        let g1 = m.find("g1").unwrap();
        let g2 = m.find("g2").unwrap();
        assert!(setup.gates[&g1].initially_active);
        assert!(!setup.gates[&g2].initially_active);
        assert_eq!(setup.trigger_sends.len(), 1);
    }
}
