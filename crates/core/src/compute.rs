//! The thread computation process of Fig. 5.
//!
//! `Compute(e, t)` is indexed by two dynamic parameters — `e`, the execution
//! time accumulated in the current dispatch, and `t`, the time elapsed since
//! dispatch — and parameterized statically by `cmin`/`cmax` from
//! `Compute_Execution_Time`:
//!
//! * While more quanta may follow (`e + 1 < cmax`), the process can perform a
//!   computation step `{(cpu, π), R}` incrementing both parameters.
//! * Once enough quanta have accumulated (`cmin ≤ e + 1 ≤ cmax`), it can
//!   perform the **final** computation step, which additionally claims the
//!   bus resources of its bus-bound outgoing data connections (§4.2: "the
//!   last computation step of the Compute state uses both cpu and bus"),
//!   then instantaneously raises its output events (`e_q!`, §4.4 default:
//!   data is sent at the end of the computation) and signals `done!` to its
//!   dispatcher.
//! * At every quantum it may instead be preempted: an idling step that
//!   advances `t` but not `e`, moving to the `Preempted` state. (See
//!   [`ComputeSpec::shared_resources`] for how the figure's `R` set is
//!   realized and where this implementation deliberately deviates.)
//!
//! The nondeterministic exit window `[cmin, cmax]` is what makes the analysis
//! exhaustive over execution-time uncertainty — a single simulation run picks
//! one duration; the state space contains them all.
//!
//! When the scheduling policy is static and the elapsed-time parameter is not
//! needed, `t` can be dropped (`track_elapsed = false`), collapsing states
//! that differ only in `t` — the state-space compaction the paper lists as
//! future work (§7).

use aadl::instance::CompId;
use acsr::{
    act_tagged, choice, evt_send, guard, invoke, BExpr, DefId, Env, Expr, Res, Symbol, P,
};

use crate::names::{NameMap, TagMeaning};
use crate::policy::PrioSpec;

/// Everything needed to generate one thread's compute process.
pub struct ComputeSpec<'a> {
    /// The processor resource.
    pub cpu: Res,
    /// The thread's priority on that processor.
    pub prio: &'a PrioSpec,
    /// Best-case execution time in quanta.
    pub cmin_q: i64,
    /// Worst-case execution time in quanta.
    pub cmax_q: i64,
    /// Bus resources claimed by the final computation step (§4.2).
    pub final_resources: Vec<Res>,
    /// Shared data resources claimed by *every* computation step — the set
    /// `R` of Fig. 5, derived from the thread's data access connections.
    /// §4.1: access to shared data takes a whole quantum; a thread denied the
    /// resource idles the quantum and repeats the computation. (Fig. 5 also
    /// shows `R` on preempted steps; we claim `R` only while actually
    /// computing, since holding data across preemption would deadlock
    /// same-processor sharers — and the paper itself leaves access
    /// connections out of its translation, §4.)
    pub shared_resources: Vec<Res>,
    /// Output events raised at completion, in order: `(label, priority)`.
    pub sends: Vec<(Symbol, i64)>,
    /// Output events raised as a self-loop while computing (the
    /// `SendPattern::Anytime` refinement of §4.4).
    pub anytime_sends: Vec<(Symbol, i64)>,
    /// The `done` event received by the dispatcher.
    pub done: Symbol,
    /// Continuation after `done!` (`NIL` when the skeleton's deadline scope
    /// catches `done` as its exception; `AwaitDispatch` in compact mode).
    pub after_done: P,
    /// Track the elapsed-time parameter `t`? Required for dynamic priorities.
    pub track_elapsed: bool,
    /// Critical section on a shared data component (§7 extension): when set,
    /// the dispatch *starts* inside the critical section —
    /// [`build_compute`] returns the `CsEntry` state built by
    /// [`protocol::build_cs`](crate::protocol::build_cs) in place of
    /// `Compute`, and the lock resource is held across preemption.
    pub critical_section: Option<crate::protocol::CsSpec>,
}

/// Declare and define `Compute_<stem>` / `Preempted_<stem>`, registering
/// their provenance tags. Returns `(compute_def, preempted_def)` — except
/// when [`ComputeSpec::critical_section`] is set, in which case the first
/// element is the `CsEntry_<stem>` state (same arity) that the skeleton must
/// dispatch into instead.
pub fn build_compute(
    env: &mut Env,
    nm: &mut NameMap,
    thread: CompId,
    stem: &str,
    spec: &ComputeSpec<'_>,
) -> (DefId, DefId) {
    assert!(
        spec.track_elapsed || !spec.prio.needs_elapsed(),
        "dynamic priorities require the elapsed-time parameter"
    );
    let arity = if spec.track_elapsed { 2 } else { 1 };
    let compute = env.declare(&format!("Compute_{stem}"), arity);
    let preempted = env.declare(&format!("Preempted_{stem}"), arity);

    let tag_compute = env.tag(&format!("{stem} computes"));
    let tag_final = env.tag(&format!("{stem} completes"));
    let tag_preempted = env.tag(&format!("{stem} preempted"));
    nm.add_tag(tag_compute, TagMeaning::Computes(thread));
    nm.add_tag(tag_final, TagMeaning::FinalStep(thread));
    nm.add_tag(tag_preempted, TagMeaning::Preempted(thread));

    let body = |preempt_target: DefId| -> P {
        let e = Expr::p(0);
        let pi = spec.prio.expr();

        // Arguments for the next state.
        let stepped = |e_inc: bool| -> Vec<Expr> {
            let e_next = if e_inc {
                Expr::p(0).add(Expr::c(1))
            } else {
                Expr::p(0)
            };
            if spec.track_elapsed {
                vec![e_next, Expr::p(1).add(Expr::c(1))]
            } else {
                vec![e_next]
            }
        };

        // Non-final computation step: e + 1 < cmax; claims {cpu} ∪ R.
        let mut compute_uses: Vec<(Res, Expr)> = vec![(spec.cpu, pi.clone())];
        for r in &spec.shared_resources {
            compute_uses.push((*r, pi.clone()));
        }
        let continue_step = guard(
            BExpr::lt(e.clone().add(Expr::c(1)), Expr::c(spec.cmax_q)),
            act_tagged(
                compute_uses.clone(),
                tag_compute,
                invoke(compute, stepped(true)),
            ),
        );

        // Final computation step: cmin ≤ e + 1 (≤ cmax holds invariantly);
        // claims {cpu} ∪ R ∪ buses.
        let mut chain = evt_send(spec.done, 1, spec.after_done.clone());
        for (label, prio) in spec.sends.iter().rev() {
            chain = evt_send(*label, *prio, chain);
        }
        let mut final_uses = compute_uses;
        for r in &spec.final_resources {
            final_uses.push((*r, pi.clone()));
        }
        let final_step = guard(
            BExpr::ge(e.clone().add(Expr::c(1)), Expr::c(spec.cmin_q)),
            act_tagged(final_uses, tag_final, chain),
        );

        // Preemption step: {R} with R = ∅; t advances, e does not.
        let preempt_step = act_tagged(
            [] as [(Res, Expr); 0],
            tag_preempted,
            invoke(preempt_target, stepped(false)),
        );

        let mut alts = vec![continue_step, final_step, preempt_step];
        // Optional "events can be raised at any time" refinement (§4.4):
        // event-send self-loops on the computing state. The send is
        // instantaneous, so *neither* parameter advances.
        let same_args: Vec<Expr> = if spec.track_elapsed {
            vec![Expr::p(0), Expr::p(1)]
        } else {
            vec![Expr::p(0)]
        };
        for (label, prio) in &spec.anytime_sends {
            alts.push(evt_send(*label, *prio, invoke(compute, same_args.clone())));
        }
        choice(alts)
    };

    env.set_body(compute, body(preempted));
    env.set_body(preempted, body(preempted));
    if spec.critical_section.is_some() {
        let entry = crate::protocol::build_cs(env, nm, thread, stem, spec, compute);
        return (entry, preempted);
    }
    (compute, preempted)
}

/// The initial invocation of a thread's compute process.
pub fn initial_compute(compute: DefId, track_elapsed: bool) -> P {
    if track_elapsed {
        invoke(compute, [Expr::c(0), Expr::c(0)])
    } else {
        invoke(compute, [Expr::c(0)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acsr::nil;
    use acsr::{prioritized_steps, steps, Label};

    fn spec<'a>(prio: &'a PrioSpec, cmin: i64, cmax: i64) -> ComputeSpec<'a> {
        ComputeSpec {
            cpu: Res::new("cpu_test"),
            prio,
            cmin_q: cmin,
            cmax_q: cmax,
            final_resources: vec![],
            shared_resources: vec![],
            sends: vec![],
            anytime_sends: vec![],
            done: Symbol::new("done_test"),
            after_done: nil(),
            track_elapsed: true,
            critical_section: None,
        }
    }

    fn build(prio: &PrioSpec, cmin: i64, cmax: i64) -> (Env, NameMap, DefId) {
        let mut env = Env::new();
        let mut nm = NameMap::default();
        let s = spec(prio, cmin, cmax);
        let (c, _p) = build_compute(&mut env, &mut nm, CompId(0), "tst", &s);
        (env, nm, c)
    }

    #[test]
    fn offers_continue_final_and_preempt_in_the_window() {
        let prio = PrioSpec::Static(3);
        let (env, _nm, c) = build(&prio, 2, 4);
        // e = 1: e+1 = 2 ∈ [cmin, cmax) ⇒ continue, final, preempt all offered.
        let p = invoke(c, [Expr::c(1), Expr::c(1)]);
        let s = steps(&env, &p);
        assert_eq!(s.len(), 3);
        let timed: Vec<_> = s.iter().filter(|(l, _)| l.is_timed()).collect();
        assert_eq!(timed.len(), 3);
    }

    #[test]
    fn below_cmin_cannot_finish() {
        let prio = PrioSpec::Static(3);
        let (env, _nm, c) = build(&prio, 3, 5);
        let p = initial_compute(c, true); // e = 0, e+1 = 1 < 3
        let s = steps(&env, &p);
        // Continue + preempt only.
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn at_cmax_must_finish_or_be_preempted() {
        let prio = PrioSpec::Static(3);
        let (env, _nm, c) = build(&prio, 1, 3);
        // e = 2: e+1 = 3 = cmax ⇒ no continue; final + preempt.
        let p = invoke(c, [Expr::c(2), Expr::c(2)]);
        let s = steps(&env, &p);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn final_step_emits_send_chain_then_done() {
        let prio = PrioSpec::Static(2);
        let mut env = Env::new();
        let mut nm = NameMap::default();
        let eq = Symbol::new("q_conn_tst");
        let mut s = spec(&prio, 1, 1);
        s.sends = vec![(eq, 1)];
        let (c, _) = build_compute(&mut env, &mut nm, CompId(0), "tst2", &s);
        let p = initial_compute(c, true);
        let first = steps(&env, &p);
        // cmin = cmax = 1: final + preempt.
        assert_eq!(first.len(), 2);
        let (_, after_final) = first
            .iter()
            .find(|(l, _)| l.action().is_some_and(|a| !a.is_empty()))
            .unwrap();
        let ev1 = steps(&env, after_final);
        assert!(matches!(&ev1[0].0, Label::E { label, .. } if *label == eq));
        let ev2 = steps(&env, &ev1[0].1);
        assert!(
            matches!(&ev2[0].0, Label::E { label, .. } if label.as_str() == "done_test")
        );
    }

    #[test]
    fn preemption_holds_e_and_advances_t() {
        let prio = PrioSpec::Static(2);
        let (env, _nm, c) = build(&prio, 2, 4);
        let p = invoke(c, [Expr::c(1), Expr::c(5)]);
        let s = steps(&env, &p);
        let (_, preempted) = s
            .iter()
            .find(|(l, _)| l.action().is_some_and(|a| a.is_empty()))
            .unwrap();
        // The Preempted residual holds (e=1, t=6).
        match &**preempted {
            acsr::Proc::Invoke { args, .. } => {
                assert_eq!(args, &[Expr::Const(1), Expr::Const(6)]);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn edf_priority_is_evaluated_per_state() {
        let prio = PrioSpec::Edf { dmax: 10, d: 10 };
        let (env, _nm, c) = build(&prio, 1, 5);
        let cpu = Res::new("cpu_test");
        let p0 = invoke(c, [Expr::c(0), Expr::c(0)]);
        let s0 = steps(&env, &p0);
        let pr0 = s0
            .iter()
            .filter_map(|(l, _)| l.action())
            .map(|a| a.prio_of(cpu))
            .max()
            .unwrap();
        let p7 = invoke(c, [Expr::c(0), Expr::c(7)]);
        let s7 = steps(&env, &p7);
        let pr7 = s7
            .iter()
            .filter_map(|(l, _)| l.action())
            .map(|a| a.prio_of(cpu))
            .max()
            .unwrap();
        // Closer to the deadline ⇒ higher priority.
        assert!(pr7 > pr0, "{pr7} vs {pr0}");
        assert_eq!(pr0, 1); // 10 - (10 - 0) + 1
        assert_eq!(pr7, 8);
    }

    #[test]
    fn untracked_elapsed_uses_single_parameter() {
        let prio = PrioSpec::Static(4);
        let mut env = Env::new();
        let mut nm = NameMap::default();
        let mut s = spec(&prio, 1, 3);
        s.track_elapsed = false;
        let (c, _) = build_compute(&mut env, &mut nm, CompId(0), "tst3", &s);
        let p = initial_compute(c, false);
        let steps0 = steps(&env, &p);
        // The preempted residual is Preempted(0) — a single argument, and the
        // preempted self-loop keeps the state unchanged.
        let (_, preempted) = steps0
            .iter()
            .find(|(l, _)| l.action().is_some_and(|a| a.is_empty()))
            .unwrap();
        match &**preempted {
            acsr::Proc::Invoke { args, .. } => assert_eq!(args.len(), 1),
            other => panic!("unexpected: {other:?}"),
        }
        let again = steps(&env, preempted);
        let (_, pre2) = again
            .iter()
            .find(|(l, _)| l.action().is_some_and(|a| a.is_empty()))
            .unwrap();
        assert_eq!(preempted, pre2, "preempted state must be a fixpoint");
    }

    #[test]
    fn anytime_send_is_a_true_self_loop() {
        // The raise-at-any-time event must not advance either parameter —
        // otherwise the state space would be unbounded.
        let prio = PrioSpec::Static(2);
        let mut env = Env::new();
        let mut nm = NameMap::default();
        let raise = Symbol::new("anytime_ev");
        let mut sp = spec(&prio, 2, 4);
        sp.anytime_sends = vec![(raise, 1)];
        let (c, _) = build_compute(&mut env, &mut nm, CompId(0), "tst5", &sp);
        let p = invoke(c, [Expr::c(1), Expr::c(3)]);
        let s = steps(&env, &p);
        let (_, after_raise) = s
            .iter()
            .find(|(l, _)| matches!(l, Label::E { label, .. } if *label == raise))
            .expect("anytime raise offered");
        assert_eq!(after_raise, &p, "raising must not change the state");
    }

    #[test]
    #[should_panic(expected = "dynamic priorities")]
    fn dynamic_priority_without_elapsed_panics() {
        let prio = PrioSpec::Edf { dmax: 5, d: 5 };
        let mut env = Env::new();
        let mut nm = NameMap::default();
        let mut s = spec(&prio, 1, 2);
        s.track_elapsed = false;
        build_compute(&mut env, &mut nm, CompId(0), "tst4", &s);
    }

    #[test]
    fn prioritization_prefers_computing_over_preemption() {
        let prio = PrioSpec::Static(3);
        let (env, _nm, c) = build(&prio, 2, 4);
        let p = invoke(c, [Expr::c(0), Expr::c(0)]);
        // Alone on the processor, the compute step preempts the idle step.
        let s = prioritized_steps(&env, &p);
        assert_eq!(s.len(), 1);
        assert!(!s[0].0.action().unwrap().is_empty());
    }
}
