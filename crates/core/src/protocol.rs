//! Concurrency-control protocols for shared data components (§7 extension).
//!
//! The paper leaves access connections out of its translation because they
//! "require encoding of concurrency control protocols" (§4). This module is
//! that encoding: when an access connection (or its data component) declares
//! a `Critical_Section_Execution_Time`, the accessing thread's dispatch
//! begins with a *critical section* — its first `cs_q` quanta hold a lock
//! resource for the data, **including across preemption**, so priority
//! inversion becomes expressible and the `Concurrency_Control_Protocol`
//! property selects the countermeasure:
//!
//! * **`None_Specified`** — the holder keeps its base priority. A
//!   medium-priority thread can preempt the holder while a high-priority
//!   accessor is blocked at the lock: the classic inversion
//!   (`examples/models/inversion.aadl`).
//! * **`Priority_Ceiling`** — immediate ceiling semantics: once inside the
//!   critical section the holder's processor and lock claims run at the
//!   *ceiling*, the maximum static priority over all accessors of the data,
//!   so no thread that could ever contend for the lock (nor any thread below
//!   the ceiling) preempts the holder.
//! * **`Priority_Inheritance`** — the holder's claims carry a dynamic
//!   priority parameter `h`. A blocked accessor sends a per-thread
//!   inheritance event (an instantaneous τ after restriction) which the
//!   holder receives — guarded on `h < π_blocked` — raising `h` to the
//!   blocked accessor's priority until the critical section exits.
//!
//! The ACSR shape per accessing thread (parameters as in Fig. 5, plus `h`
//! under inheritance):
//!
//! ```text
//! CsEntry ──acquire {cpu@π, lock@0}──▶ CsRun(h=π) ──…──▶ Compute / done!
//!    │ wait {}                            │ preempted {lock@h}
//!    ▼ (+ inh! under PIP → CsSignaled)    ▼
//! CsEntry                              CsHold(h) ── inh? / resume ──▶ …
//! ```
//!
//! Mutual exclusion is structural: every state of a holder claims the lock
//! resource in all of its timed steps, so a competing `CsEntry` acquire can
//! never share a quantum with it (the Par rule requires disjoint resource
//! sets). A blocked accessor's only timed step is the empty waiting action,
//! which the diagnosis raises as a `Blocked(on, by)` timeline activity.
//!
//! The acquire step itself runs at the thread's *base* priority on the
//! processor and claims the lock at priority zero — the lock is granted to
//! whoever wins the processor, exactly as in a real scheduler — and
//! elevation (ceiling or inheritance) applies from the first held quantum
//! onward.

use std::collections::{BTreeMap, HashMap};

use aadl::instance::{CompId, InstanceModel};
use aadl::properties::ConcurrencyControlProtocol;
use acsr::{
    act_tagged, choice, evt_recv, evt_send, guard, invoke, BExpr, DefId, Env, Expr, Res, Symbol,
    P,
};

use crate::compute::ComputeSpec;
use crate::names::{stem_of, EventMeaning, NameMap, TagMeaning};
use crate::policy::PrioSpec;
use crate::translate::TranslateError;

/// How the holder of a critical section is prioritized while inside it.
#[derive(Clone, Debug)]
pub enum CsMode {
    /// `None_Specified`: the holder keeps its base priority (inversion-prone).
    None,
    /// `Priority_Ceiling`: the holder runs at the precomputed ceiling — the
    /// maximum static priority over all accessors of the data.
    Ceiling(u32),
    /// `Priority_Inheritance`: the holder runs at a dynamic priority `h`,
    /// raised by inheritance events from blocked accessors.
    Inherit {
        /// The thread's own static priority — the initial value of `h`.
        own: u32,
        /// The event this thread sends when blocked at the lock.
        self_event: Symbol,
        /// `(event, priority)` of every *other* accessor of the same data:
        /// the holder receives these, guarded on `h < priority`.
        others: Vec<(Symbol, u32)>,
    },
}

/// One thread's critical section on one shared data component.
#[derive(Clone, Debug)]
pub struct CsSpec {
    /// The shared data component instance.
    pub data: CompId,
    /// The lock resource (`data_<stem>`).
    pub resource: Res,
    /// Critical-section length in quanta (`1 ≤ cs_q ≤ cmin_q`).
    pub cs_q: i64,
    /// The protocol governing the holder's priority.
    pub mode: CsMode,
}

fn ceil_div(a: i64, b: i64) -> i64 {
    (a + b - 1) / b
}

/// Resolve every critical-section-managed access connection of `model` into
/// a per-thread [`CsSpec`], computing ceilings across *all* accessors (also
/// across processors) and registering the priority-inheritance events in the
/// name map. `protocol_override` replaces each data component's declared
/// `Concurrency_Control_Protocol` (the `aadlsched --protocol` experiment
/// hook). `prio_of` / `cmin_of` must cover every bound thread.
pub fn resolve_protocols(
    model: &InstanceModel,
    nm: &mut NameMap,
    protocol_override: Option<ConcurrencyControlProtocol>,
    quantum_ps: i64,
    prio_of: &HashMap<CompId, PrioSpec>,
    cmin_of: &HashMap<CompId, i64>,
) -> Result<HashMap<CompId, CsSpec>, TranslateError> {
    // Managed accesses grouped by data component, in deterministic order.
    let mut by_data: BTreeMap<CompId, Vec<(CompId, i64)>> = BTreeMap::new();
    for acc in &model.accesses {
        let data_cs = model.component(acc.data).properties.critical_section_time();
        let Some(t) = acc.properties.critical_section_time().or(data_cs) else {
            continue;
        };
        if t.as_ps() <= 0 {
            // Validation already rejects this; skip defensively.
            continue;
        }
        // Round up: a longer critical section is the conservative direction.
        let cs_q = ceil_div(t.as_ps(), quantum_ps).max(1);
        by_data.entry(acc.data).or_default().push((acc.thread, cs_q));
    }

    let mut out: HashMap<CompId, CsSpec> = HashMap::new();
    for (data, accessors) in by_data {
        let protocol = protocol_override
            .unwrap_or_else(|| model.component(data).properties.concurrency_control());
        let dpath = model.component(data).display_path().to_owned();
        let dstem = stem_of(model, data);
        let resource = Res::new(&format!("data_{dstem}"));
        let static_prio = |tid: CompId| -> Result<u32, TranslateError> {
            match prio_of.get(&tid) {
                Some(PrioSpec::Static(p)) => Ok(*p),
                _ => Err(TranslateError::Unsupported(format!(
                    "{protocol} on `{dpath}` requires a static priority for accessor `{}` \
                     (dynamic policies cannot be combined with this protocol)",
                    model.component(tid).display_path()
                ))),
            }
        };
        for &(tid, cs_q) in &accessors {
            let tpath = model.component(tid).display_path();
            let Some(&cmin) = cmin_of.get(&tid) else {
                return Err(TranslateError::Unsupported(format!(
                    "accessor `{tpath}` of `{dpath}` is not bound to any processor"
                )));
            };
            if cs_q > cmin {
                return Err(TranslateError::Unsupported(format!(
                    "critical section of `{tpath}` on `{dpath}` rounds to {cs_q} quanta but \
                     its minimum execution time is {cmin} — use a finer Scheduling_Quantum"
                )));
            }
            if out.contains_key(&tid) {
                return Err(TranslateError::Unsupported(format!(
                    "thread `{tpath}` manages more than one critical section"
                )));
            }
            let mode = match protocol {
                ConcurrencyControlProtocol::NoneSpecified => CsMode::None,
                ConcurrencyControlProtocol::PriorityCeiling => {
                    let mut ceiling = 0u32;
                    for &(t2, _) in &accessors {
                        ceiling = ceiling.max(static_prio(t2)?);
                    }
                    CsMode::Ceiling(ceiling)
                }
                ConcurrencyControlProtocol::PriorityInheritance => {
                    let sym_of =
                        |t2: CompId| Symbol::new(&format!("inh_{dstem}_{}", stem_of(model, t2)));
                    let mut others = Vec::new();
                    for &(t2, _) in &accessors {
                        if t2 != tid {
                            others.push((sym_of(t2), static_prio(t2)?));
                        }
                    }
                    CsMode::Inherit {
                        own: static_prio(tid)?,
                        self_event: sym_of(tid),
                        others,
                    }
                }
            };
            out.insert(
                tid,
                CsSpec {
                    data,
                    resource,
                    cs_q,
                    mode,
                },
            );
        }
        if protocol == ConcurrencyControlProtocol::PriorityInheritance {
            for &(tid, _) in &accessors {
                nm.add_event(
                    Symbol::new(&format!("inh_{dstem}_{}", stem_of(model, tid))),
                    EventMeaning::InheritReq(data, tid),
                );
            }
        }
    }
    Ok(out)
}

/// Declare and define the critical-section states of a thread whose
/// [`ComputeSpec::critical_section`] is set; `compute` is the thread's plain
/// `Compute_<stem>` definition, entered when the critical section exits with
/// execution still remaining. Returns the `CsEntry_<stem>` definition — the
/// state the skeleton dispatches into instead of `Compute_<stem>`.
pub fn build_cs(
    env: &mut Env,
    nm: &mut NameMap,
    thread: CompId,
    stem: &str,
    spec: &ComputeSpec<'_>,
    compute: DefId,
) -> DefId {
    let cs = spec
        .critical_section
        .as_ref()
        .expect("build_cs requires a critical-section spec");
    assert!(
        cs.cs_q >= 1 && cs.cs_q <= spec.cmin_q,
        "critical section must fit the minimum execution time (validated upstream)"
    );
    let base_arity: u8 = if spec.track_elapsed { 2 } else { 1 };
    let inherit = matches!(cs.mode, CsMode::Inherit { .. });
    let run_arity = if inherit { base_arity + 1 } else { base_arity };
    let h = Expr::p(base_arity);

    let entry = env.declare(&format!("CsEntry_{stem}"), base_arity);
    let run = env.declare(&format!("CsRun_{stem}"), run_arity);
    let hold = env.declare(&format!("CsHold_{stem}"), run_arity);
    let signaled = if inherit {
        Some(env.declare(&format!("CsSignaled_{stem}"), base_arity))
    } else {
        None
    };

    let tag_cs = env.tag(&format!("{stem} in cs"));
    let tag_cs_final = env.tag(&format!("{stem} completes in cs"));
    let tag_hold = env.tag(&format!("{stem} holds preempted"));
    let tag_wait = env.tag(&format!("{stem} waits at cs"));
    nm.add_tag(tag_cs, TagMeaning::InCriticalSection(thread, cs.data));
    nm.add_tag(tag_cs_final, TagMeaning::FinalStep(thread));
    nm.add_tag(tag_hold, TagMeaning::HoldsPreempted(thread, cs.data));
    nm.add_tag(tag_wait, TagMeaning::WaitingAtCs(thread, cs.data));

    let e = Expr::p(0);
    let base_pi = spec.prio.expr();
    // The holder's priority while inside the critical section.
    let run_pi: Expr = match &cs.mode {
        CsMode::None => base_pi.clone(),
        CsMode::Ceiling(c) => Expr::c(*c as i64),
        CsMode::Inherit { .. } => h.clone(),
    };

    // Arguments for the next state (as in Fig. 5: `e` advances only while
    // executing, `t` advances every quantum).
    let stepped = |e_inc: bool| -> Vec<Expr> {
        let e_next = if e_inc {
            Expr::p(0).add(Expr::c(1))
        } else {
            Expr::p(0)
        };
        if spec.track_elapsed {
            vec![e_next, Expr::p(1).add(Expr::c(1))]
        } else {
            vec![e_next]
        }
    };
    let same_base: Vec<Expr> = if spec.track_elapsed {
        vec![Expr::p(0), Expr::p(1)]
    } else {
        vec![Expr::p(0)]
    };

    // {cpu, lock} ∪ legacy shared resources: the processor at `cpu_pi`,
    // everything else at `res_pi`. Holding steps claim the lock at the
    // holder's (elevated) priority; the *acquire* claims it at 0 — the lock
    // is granted to whoever wins the processor, so a competitor's bare
    // `{cpu@π'}` claim with π' > π must preempt the acquisition. Claiming the
    // lock at a nonzero priority there would make the two actions
    // incomparable (the competitor's action lacks the lock resource) and
    // leak a spurious lower-priority-acquires-first branch into the
    // exploration.
    let cs_uses = |cpu_pi: &Expr, res_pi: &Expr| -> Vec<(Res, Expr)> {
        let mut v = vec![(spec.cpu, cpu_pi.clone()), (cs.resource, res_pi.clone())];
        for r in &spec.shared_resources {
            v.push((*r, res_pi.clone()));
        }
        v
    };

    // The executing steps available from inside the critical section (and
    // from the acquire at `CsEntry`): continue in the section, exit into the
    // plain compute process, or — when the section length equals `cmin` —
    // complete the whole dispatch. The `cs_q`-vs-`cmin`/`cmax` comparisons
    // are static, so only the feasible branches are generated.
    let advance = |cpu_pi: &Expr, res_pi: &Expr, h_next: Option<Expr>| -> Vec<P> {
        let mut alts = Vec::new();
        if cs.cs_q > 1 {
            let mut args = stepped(true);
            if let Some(hn) = &h_next {
                args.push(hn.clone());
            }
            alts.push(guard(
                BExpr::lt(e.clone().add(Expr::c(1)), Expr::c(cs.cs_q)),
                act_tagged(cs_uses(cpu_pi, res_pi), tag_cs, invoke(run, args)),
            ));
        }
        if cs.cs_q < spec.cmax_q {
            // The exit quantum: still holds the lock, releases it afterwards.
            alts.push(guard(
                BExpr::ge(e.clone().add(Expr::c(1)), Expr::c(cs.cs_q)),
                act_tagged(
                    cs_uses(cpu_pi, res_pi),
                    tag_cs,
                    invoke(compute, stepped(true)),
                ),
            ));
        }
        if cs.cs_q == spec.cmin_q {
            // The exit quantum may complete the dispatch (§4.2 final step).
            let mut final_uses = cs_uses(cpu_pi, res_pi);
            for r in &spec.final_resources {
                final_uses.push((*r, cpu_pi.clone()));
            }
            let mut chain = evt_send(spec.done, 1, spec.after_done.clone());
            for (label, prio) in spec.sends.iter().rev() {
                chain = evt_send(*label, *prio, chain);
            }
            alts.push(guard(
                BExpr::ge(e.clone().add(Expr::c(1)), Expr::c(cs.cs_q)),
                act_tagged(final_uses, tag_cs_final, chain),
            ));
        }
        alts
    };

    // CsRun / CsHold: executing inside the section vs. preempted holding the
    // lock. Both keep the lock claimed in every timed step — that is what
    // makes the blocking (and the inversion under `None`) real.
    let holding_body = |self_def: DefId| -> P {
        let h_next = inherit.then(|| h.clone());
        let mut alts = advance(&run_pi, &run_pi, h_next);
        let mut hold_args = stepped(false);
        if inherit {
            hold_args.push(h.clone());
        }
        alts.push(act_tagged(
            vec![(cs.resource, run_pi.clone())],
            tag_hold,
            invoke(hold, hold_args),
        ));
        if let CsMode::Inherit { others, .. } = &cs.mode {
            for (sym, pj) in others {
                let mut args = same_base.clone();
                args.push(Expr::c(*pj as i64));
                alts.push(guard(
                    BExpr::lt(h.clone(), Expr::c(*pj as i64)),
                    evt_recv(*sym, 1, invoke(self_def, args)),
                ));
            }
        }
        choice(alts)
    };
    env.set_body(run, holding_body(run));
    env.set_body(hold, holding_body(hold));

    // CsEntry / CsSignaled: before the lock. The acquire runs at *base*
    // priority; the empty waiting step doubles as "preempted or blocked".
    // Under inheritance the entry state additionally offers its inheritance
    // event once, moving to CsSignaled so the send cannot loop.
    let entry_body = |self_def: DefId, with_send: bool| -> P {
        let h0 = match &cs.mode {
            CsMode::Inherit { own, .. } => Some(Expr::c(*own as i64)),
            _ => None,
        };
        let mut alts = advance(&base_pi, &Expr::c(0), h0);
        alts.push(act_tagged(
            [] as [(Res, Expr); 0],
            tag_wait,
            invoke(self_def, stepped(false)),
        ));
        if with_send {
            if let (CsMode::Inherit { self_event, .. }, Some(sig)) = (&cs.mode, signaled) {
                alts.push(evt_send(*self_event, 1, invoke(sig, same_base.clone())));
            }
        }
        choice(alts)
    };
    env.set_body(entry, entry_body(entry, true));
    if let Some(sig) = signaled {
        env.set_body(sig, entry_body(sig, false));
    }

    entry
}
