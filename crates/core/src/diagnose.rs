//! Raising ACSR counterexamples to AADL-level failing scenarios (§5).
//!
//! > If a deadlock is found, the failing scenario is "raised" to the level of
//! > the original AADL model. Steps of the trace are reinterpreted in terms
//! > of the actions of the components in the AADL model. […] the diagnostic
//! > information produced by VERSA in terms of the translated ACSR model is
//! > translated back in terms of the AADL model and can be presented to the
//! > user in a convenient time line form.
//!
//! Two sources of information drive the raising:
//!
//! * **Transition labels.** Internal steps `τ@e` are looked up in the
//!   [`NameMap`](crate::names::NameMap) (dispatches, completions, queue operations, observer
//!   probes); timed actions carry provenance *tags* identifying which thread
//!   computed, completed, or sat preempted during each quantum.
//! * **The deadlocked state.** Walking its *active* positions finds the
//!   distinguished definitions (`Violation_*`, `Miss_*`, `QErr_*`,
//!   `LatencyMiss_*`) that say *why* the model deadlocked — which thread
//!   missed its deadline, which queue overflowed, which latency bound fell.

use std::fmt::Write as _;

use aadl::instance::InstanceModel;
use acsr::{DefId, Expr, Label, Proc, TimeBound, P};
use versa::Trace;

use crate::names::{DefMeaning, EventMeaning, TagMeaning};
use crate::translate::TranslatedModel;

/// Why the model deadlocked.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ViolationKind {
    /// A thread missed its compute deadline.
    DeadlineMiss {
        /// Instance path of the thread.
        thread: String,
    },
    /// A connection queue overflowed under the `Error` protocol.
    QueueOverflow {
        /// The semantic connection's name.
        connection: String,
    },
    /// An end-to-end latency observer timed out.
    LatencyExceeded {
        /// Observer index (order of `TranslateOptions::observers`).
        observer: usize,
    },
    /// The model deadlocked without reaching a distinguished state (should
    /// not happen for models produced by this translation).
    Unknown,
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViolationKind::DeadlineMiss { thread } => {
                write!(f, "thread `{thread}` missed its deadline")
            }
            ViolationKind::QueueOverflow { connection } => {
                write!(f, "queue of connection `{connection}` overflowed")
            }
            ViolationKind::LatencyExceeded { observer } => {
                write!(f, "end-to-end latency bound of observer #{observer} exceeded")
            }
            ViolationKind::Unknown => write!(f, "model deadlocked (no distinguished state)"),
        }
    }
}

/// What one thread did during one quantum.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Activity {
    /// Held the processor.
    Computing,
    /// Held the processor for the final quantum of its dispatch.
    Completing,
    /// Ready but preempted / blocked.
    Preempted,
    /// Held the processor *inside* the critical section of a shared data
    /// component (§7 extension).
    CriticalSection {
        /// Instance path of the data component whose lock is held.
        data: String,
    },
    /// Preempted while holding a critical-section lock — the window in which
    /// priority inversion plays out.
    PreemptedHolding {
        /// Instance path of the data component whose lock is held.
        data: String,
    },
    /// Ready at a critical-section entry but unable to acquire the lock.
    Blocked {
        /// Instance path of the contended data component.
        on: String,
        /// Instance path of the thread currently holding the lock, when it is
        /// visible in the same quantum.
        by: Option<String>,
    },
}

/// One quantum of the failing scenario.
#[derive(Clone, Debug, Default)]
pub struct QuantumRow {
    /// Instantaneous events (dispatches, completions, queue operations)
    /// immediately before this quantum.
    pub events: Vec<String>,
    /// Per-thread activity during the quantum: `(path, activity)`.
    pub activities: Vec<(String, Activity)>,
}

/// A failing scenario raised to the AADL level.
#[derive(Clone, Debug)]
pub struct FailingScenario {
    /// Why the model deadlocked (possibly several simultaneous findings).
    pub violations: Vec<ViolationKind>,
    /// The timeline, one row per quantum.
    pub timeline: Vec<QuantumRow>,
    /// Events after the last full quantum, at the instant of the deadlock.
    pub final_events: Vec<String>,
    /// The quantum at which the model deadlocked.
    pub at_quantum: usize,
}

/// Describe an event meaning at the AADL level.
fn describe_event(model: &InstanceModel, _tm: &TranslatedModel, m: EventMeaning) -> String {
    match m {
        EventMeaning::Dispatch(t) => {
            format!("dispatch {}", model.component(t).display_path())
        }
        EventMeaning::Done(t) => {
            format!("{} completes", model.component(t).display_path())
        }
        EventMeaning::Enqueue(c) => {
            format!("event queued on `{}`", model.connections[c].name)
        }
        EventMeaning::Dequeue(c) => {
            format!("event dequeued from `{}`", model.connections[c].name)
        }
        EventMeaning::ObserverStart(i) => format!("observer #{i} starts timing"),
        EventMeaning::ObserverEnd(i) => format!("observer #{i} observes the flow end"),
        EventMeaning::ModeTrigger(i) => format!("mode transition #{i} triggered"),
        EventMeaning::Activate(t) => {
            format!("activate {}", model.component(t).display_path())
        }
        EventMeaning::Deactivate(t) => {
            format!("deactivate {}", model.component(t).display_path())
        }
        EventMeaning::InheritReq(d, t) => format!(
            "{} lends its priority to the holder of `{}`",
            model.component(t).display_path(),
            model.component(d).display_path()
        ),
    }
    .to_string()
}

/// Collect the *active* definition invocations of a state: the head
/// positions control could be in right now. Expired scopes contribute their
/// timeout continuation (that is where the violation states live); active
/// scopes contribute their body.
pub fn active_defs(p: &P) -> Vec<DefId> {
    let mut out = Vec::new();
    walk(p, &mut out);
    out
}

fn walk(p: &P, out: &mut Vec<DefId>) {
    match &**p {
        Proc::Invoke { def, .. } => out.push(*def),
        Proc::Par(v) | Proc::Choice(v) => v.iter().for_each(|c| walk(c, out)),
        Proc::Restrict { body, .. } | Proc::Close { body, .. } => walk(body, out),
        Proc::Guard { cond, then } => {
            if cond.eval(&[]).unwrap_or(false) {
                walk(then, out);
            }
        }
        Proc::Scope {
            body,
            limit,
            timeout,
            ..
        } => {
            let expired = match limit {
                TimeBound::Finite(Expr::Const(n)) => *n <= 0,
                TimeBound::Finite(e) => e.eval(&[]).map(|n| n <= 0).unwrap_or(false),
                TimeBound::Infinite => false,
            };
            if expired {
                if let Some(t) = timeout {
                    walk(t, out);
                }
                // Boundary events of the body may still matter, but for
                // violation detection the timeout continuation is the
                // authoritative position.
                walk(body, out);
            } else {
                walk(body, out);
            }
        }
        Proc::Nil | Proc::Act { .. } | Proc::Evt { .. } => {}
    }
}

/// Raise a deadlock trace to a failing scenario.
pub fn raise(model: &InstanceModel, tm: &TranslatedModel, trace: &Trace) -> FailingScenario {
    let mut timeline = Vec::new();
    let mut pending: Vec<String> = Vec::new();

    for (label, _state) in trace.iter() {
        match label {
            Label::Tau { via: Some(sym), .. } => {
                if let Some(m) = tm.names.event(*sym) {
                    pending.push(describe_event(model, tm, m));
                }
            }
            Label::Tau { .. } => {}
            Label::E { .. } => {
                // Visible events do not occur in the restricted composition.
            }
            Label::A(action) => {
                let mut row = QuantumRow {
                    events: std::mem::take(&mut pending),
                    activities: Vec::new(),
                };
                let raw: Vec<TagMeaning> = action
                    .tags
                    .iter()
                    .filter_map(|tag| tm.names.tag(*tag))
                    .collect();
                // Who holds a given data component's lock this quantum —
                // resolves `Blocked { by }` from the same row.
                let holder_of = |data| {
                    raw.iter().find_map(|m| match m {
                        TagMeaning::InCriticalSection(t, d)
                        | TagMeaning::HoldsPreempted(t, d)
                            if *d == data =>
                        {
                            Some(model.component(*t).display_path().to_owned())
                        }
                        _ => None,
                    })
                };
                for m in &raw {
                    let (t, a) = match *m {
                        TagMeaning::Computes(t) => (t, Activity::Computing),
                        TagMeaning::FinalStep(t) => (t, Activity::Completing),
                        TagMeaning::Preempted(t) => (t, Activity::Preempted),
                        TagMeaning::InCriticalSection(t, d) => (
                            t,
                            Activity::CriticalSection {
                                data: model.component(d).display_path().to_owned(),
                            },
                        ),
                        TagMeaning::HoldsPreempted(t, d) => (
                            t,
                            Activity::PreemptedHolding {
                                data: model.component(d).display_path().to_owned(),
                            },
                        ),
                        TagMeaning::WaitingAtCs(t, d) => (
                            t,
                            Activity::Blocked {
                                on: model.component(d).display_path().to_owned(),
                                by: holder_of(d),
                            },
                        ),
                    };
                    row.activities
                        .push((model.component(t).display_path().to_owned(), a));
                }
                timeline.push(row);
            }
        }
    }

    // Violations from the deadlocked final state.
    let mut violations: Vec<ViolationKind> = Vec::new();
    for def in active_defs(trace.final_state()) {
        if let Some(m) = tm.names.def(def) {
            let v = match m {
                DefMeaning::Violation(t) | DefMeaning::DeadlineMiss(t) => {
                    ViolationKind::DeadlineMiss {
                        thread: model.component(t).display_path().to_owned(),
                    }
                }
                DefMeaning::QueueError(c) => ViolationKind::QueueOverflow {
                    connection: model.connections[c].name.clone(),
                },
                DefMeaning::LatencyMiss(i) => ViolationKind::LatencyExceeded { observer: i },
            };
            if !violations.contains(&v) {
                violations.push(v);
            }
        }
    }
    if violations.is_empty() {
        violations.push(ViolationKind::Unknown);
    }

    FailingScenario {
        violations,
        at_quantum: timeline.len(),
        final_events: pending,
        timeline,
    }
}

impl FailingScenario {
    /// Render the scenario as the "convenient time line form" of §5.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(out, "VIOLATION: {v}");
        }
        let _ = writeln!(out, "failing scenario ({} quanta):", self.at_quantum);
        for (t, row) in self.timeline.iter().enumerate() {
            for e in &row.events {
                let _ = writeln!(out, "  t={t:<4} ! {e}");
            }
            let mut acts: Vec<String> = row
                .activities
                .iter()
                .map(|(p, a)| match a {
                    Activity::Computing => format!("{p} runs"),
                    Activity::Completing => format!("{p} runs (final)"),
                    Activity::Preempted => format!("{p} preempted"),
                    Activity::CriticalSection { data } => {
                        format!("{p} runs (cs of `{data}`)")
                    }
                    Activity::PreemptedHolding { data } => {
                        format!("{p} preempted holding `{data}`")
                    }
                    Activity::Blocked { on, by: Some(h) } => {
                        format!("{p} blocked on `{on}` by `{h}`")
                    }
                    Activity::Blocked { on, by: None } => {
                        format!("{p} blocked on `{on}`")
                    }
                })
                .collect();
            if acts.is_empty() {
                acts.push("all idle".to_owned());
            }
            let _ = writeln!(out, "  t={t:<4} | {}", acts.join(", "));
        }
        for e in &self.final_events {
            let _ = writeln!(out, "  t={:<4} ! {e}", self.at_quantum);
        }
        let _ = writeln!(out, "  t={:<4} DEADLOCK", self.at_quantum);
        out
    }
}

#[cfg(test)]
mod walker_tests {
    use super::*;
    use acsr::prelude::*;

    #[test]
    fn invoke_heads_are_active() {
        let mut env = Env::new();
        let a = env.declare("WalkA", 0);
        let b = env.declare("WalkB", 0);
        let p = par([invoke(a, []), invoke(b, [])]);
        let defs = active_defs(&p);
        assert_eq!(defs, vec![a, b]);
    }

    #[test]
    fn prefix_continuations_are_not_active() {
        let mut env = Env::new();
        let a = env.declare("WalkC", 0);
        // The invocation sits behind a prefix: control has not reached it.
        let p = act([(Res::new("walk_r"), 1)], invoke(a, []));
        assert!(active_defs(&p).is_empty());
    }

    #[test]
    fn expired_scope_exposes_its_timeout() {
        let mut env = Env::new();
        let violation = env.declare("WalkViolation", 0);
        let live = scope(
            nil(),
            TimeBound::Finite(Expr::c(3)),
            None,
            Some(invoke(violation, [])),
            None,
        );
        // Active scope: the timeout continuation is not yet reachable.
        assert!(active_defs(&live).is_empty());
        let expired = scope(
            nil(),
            TimeBound::Finite(Expr::c(0)),
            None,
            Some(invoke(violation, [])),
            None,
        );
        assert_eq!(active_defs(&expired), vec![violation]);
    }

    #[test]
    fn restriction_and_guards_are_transparent() {
        let mut env = Env::new();
        let a = env.declare("WalkD", 0);
        let p = restrict(
            guard(BExpr::t(), invoke(a, [])),
            [Symbol::new("walk_ev")],
        );
        assert_eq!(active_defs(&p), vec![a]);
        let q = guard(BExpr::f(), invoke(a, []));
        assert!(active_defs(&q).is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, AnalysisOptions};
    use crate::translate::TranslateOptions;
    use aadl::examples::cruise_control_overloaded;
    use aadl::instance::instantiate;
    use aadl::properties::TimeVal;

    fn overloaded_verdict() -> (InstanceModel, crate::analysis::AnalysisOutcome) {
        let pkg = cruise_control_overloaded();
        let m = instantiate(&pkg, "CruiseControl.impl").unwrap();
        let v = analyze(
            &m,
            &TranslateOptions {
                quantum: Some(TimeVal::ms(5)),
                ..Default::default()
            },
            &AnalysisOptions::default(),
        )
        .unwrap();
        (m, v)
    }

    #[test]
    fn overloaded_cruise_control_names_the_missing_thread() {
        let (_m, v) = overloaded_verdict();
        assert!(!v.schedulable());
        let sc = v.scenario().expect("failing scenario produced");
        // Cruise2 has the larger period: under RMS it is the one preempted
        // past its deadline by the overloaded Cruise1.
        assert!(
            sc.violations.iter().any(|vk| matches!(
                vk,
                ViolationKind::DeadlineMiss { thread } if thread == "ccl.cruise2"
            )),
            "violations: {:?}",
            sc.violations
        );
    }

    #[test]
    fn timeline_shows_dispatches_and_activity() {
        let (_m, v) = overloaded_verdict();
        let sc = v.scenario().unwrap();
        assert!(!sc.timeline.is_empty());
        // The first row carries the initial dispatch events of all 6 threads.
        assert!(sc.timeline[0]
            .events
            .iter()
            .any(|e| e.starts_with("dispatch ")));
        assert_eq!(
            sc.timeline[0]
                .events
                .iter()
                .filter(|e| e.starts_with("dispatch "))
                .count(),
            6
        );
        // Somewhere, cruise2 sits preempted while cruise1 runs.
        assert!(sc.timeline.iter().any(|row| {
            row.activities
                .iter()
                .any(|(p, a)| p == "ccl.cruise2" && *a == Activity::Preempted)
                && row
                    .activities
                    .iter()
                    .any(|(p, a)| p == "ccl.cruise1" && *a == Activity::Computing)
        }));
    }

    #[test]
    fn render_produces_a_timeline() {
        let (_m, v) = overloaded_verdict();
        let sc = v.scenario().unwrap();
        let text = sc.render();
        assert!(text.contains("VIOLATION: thread `ccl.cruise2` missed its deadline"));
        assert!(text.contains("DEADLOCK"));
        assert!(text.contains("dispatch ccl.cruise1"));
        assert!(text.lines().count() > sc.at_quantum);
    }

    #[test]
    fn deadlock_happens_at_the_deadline_quantum() {
        let (_m, v) = overloaded_verdict();
        let sc = v.scenario().unwrap();
        // Cruise2: deadline 100 ms = 20 quanta — BFS finds a shortest
        // counterexample, which cannot be later than the first deadline miss
        // on the CCL processor (cruise1's deadline is 10 quanta).
        assert!(sc.at_quantum <= 20, "deadlocked at {}", sc.at_quantum);
        assert!(sc.at_quantum >= 9);
    }
}
