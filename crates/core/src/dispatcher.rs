//! The thread dispatchers of Fig. 6.
//!
//! One dispatcher process per thread, generated from its dispatch protocol:
//!
//! * **Periodic** (Fig. 6a): "In the initial state, Dispatcher_p sends the
//!   dispatch event. Note that the dispatcher cannot idle in this state and
//!   has to send this event immediately." It then waits for `done` inside a
//!   deadline scope (timeout ⇒ blocked process ⇒ model-wide deadlock, the
//!   timing violation), idles out the rest of the period inside a period
//!   scope, and repeats.
//! * **Aperiodic** (Fig. 6b): idles until an `e_deq` event arrives from a
//!   queue process, dispatches, and waits for `done` before the deadline.
//!   With several incoming connections, the choice is resolved by priorities
//!   from each connection's `Urgency` property (§4.3).
//! * **Sporadic** (Fig. 6c): like the aperiodic dispatcher, but the next
//!   dequeue cannot happen until the minimum separation `p` has elapsed since
//!   the dispatch — encoded by nesting the deadline scope inside a
//!   period-length scope whose timeout returns to the listening state.
//! * **Background**: dispatches immediately and never watches a deadline.

use aadl::instance::CompId;
use acsr::{
    act, choice, evt_recv, evt_send, invoke, nil, scope, DefId, Env, Expr, Res, Symbol, TimeBound,
    P,
};

use crate::modes::Gate;
use crate::names::{DefMeaning, NameMap};

/// Dispatcher flavour, with timing in quanta.
pub enum DispatcherKind {
    /// Fig. 6a.
    Periodic {
        /// Period.
        period_q: i64,
        /// Deadline (≤ period).
        deadline_q: i64,
    },
    /// Fig. 6b. `triggers` are the `e_deq` events of the thread's incoming
    /// queued connections, with their urgencies.
    Aperiodic {
        /// Deadline.
        deadline_q: i64,
        /// `(e_deq label, urgency)` per incoming connection.
        triggers: Vec<(Symbol, i64)>,
    },
    /// Fig. 6c.
    Sporadic {
        /// Minimum separation between dispatches.
        separation_q: i64,
        /// Deadline (≤ separation).
        deadline_q: i64,
        /// `(e_deq label, urgency)` per incoming connection.
        triggers: Vec<(Symbol, i64)>,
    },
    /// Dispatched once, immediately; no deadline.
    Background,
}

/// Generated dispatcher definitions.
pub struct DispatcherDefs {
    /// `Dispatcher_<stem>` — the dispatcher's active initial state.
    pub disp_def: DefId,
    /// `Miss_<stem>` — the blocked state entered on deadline timeout.
    pub miss_def: Option<DefId>,
    /// The process to compose: `Dispatcher_<stem>` or, for a mode-gated
    /// thread that is inactive in the initial mode, `Inactive_<stem>`.
    pub initial: P,
}

/// Declare and define the dispatcher of a thread.
#[allow(clippy::too_many_arguments)]
pub fn build_dispatcher(
    env: &mut Env,
    nm: &mut NameMap,
    thread: CompId,
    stem: &str,
    dispatch: Symbol,
    done: Symbol,
    idle_def: DefId,
    kind: &DispatcherKind,
    gate: Option<&Gate>,
) -> DispatcherDefs {
    let disp_def = env.declare(&format!("Dispatcher_{stem}"), 0);

    // Mode gating (modes extension): an `Inactive` state the dispatcher can
    // be switched into/out of at its listening boundaries, and the extra
    // `deact?` alternative added to those boundaries.
    let (inactive_def, deact_alt) = match gate {
        Some(g) => {
            let inactive = env.declare(&format!("Inactive_{stem}"), 0);
            env.set_body(
                inactive,
                choice([
                    act([] as [(Res, Expr); 0], invoke(inactive, [])),
                    evt_recv(g.activate, 1, invoke(disp_def, [])),
                ]),
            );
            (
                Some(inactive),
                Some(evt_recv(g.deactivate, 1, invoke(inactive, []))),
            )
        }
        None => (None, None),
    };
    let initial = match (gate, inactive_def) {
        (Some(g), Some(inactive)) if !g.initially_active => invoke(inactive, []),
        _ => invoke(disp_def, []),
    };

    // Shared wait-for-done loop: idles, offering done? (the scope exception
    // intercepts the receive).
    let mut make_wait = |deadline_q: i64, after_done: P| -> (P, DefId) {
        let dw = env.declare(&format!("DoneWait_{stem}"), 0);
        env.set_body(
            dw,
            choice([
                act([] as [(Res, Expr); 0], invoke(dw, [])),
                evt_recv(done, 1, nil()),
            ]),
        );
        let miss = env.define(&format!("Miss_{stem}"), 0, nil());
        nm.add_def(miss, DefMeaning::DeadlineMiss(thread));
        (
            scope(
                invoke(dw, []),
                TimeBound::Finite(Expr::c(deadline_q)),
                Some((done, after_done)),
                Some(invoke(miss, [])),
                None,
            ),
            miss,
        )
    };

    match kind {
        DispatcherKind::Periodic {
            period_q,
            deadline_q,
        } => {
            let (inner, miss) = make_wait(*deadline_q, invoke(idle_def, []));
            let outer = scope(
                inner,
                TimeBound::Finite(Expr::c(*period_q)),
                None,
                Some(invoke(disp_def, [])),
                None,
            );
            let mut alts = vec![evt_send(dispatch, 1, outer)];
            alts.extend(deact_alt.clone());
            env.set_body(disp_def, choice(alts));
            DispatcherDefs {
                disp_def,
                miss_def: Some(miss),
                initial,
            }
        }
        DispatcherKind::Aperiodic {
            deadline_q,
            triggers,
        } => {
            let (inner, miss) = make_wait(*deadline_q, invoke(disp_def, []));
            let mut alts = vec![act([] as [(Res, Expr); 0], invoke(disp_def, []))];
            for (trig, urgency) in triggers {
                alts.push(evt_recv(
                    *trig,
                    *urgency,
                    evt_send(dispatch, 1, inner.clone()),
                ));
            }
            alts.extend(deact_alt.clone());
            env.set_body(disp_def, choice(alts));
            DispatcherDefs {
                disp_def,
                miss_def: Some(miss),
                initial,
            }
        }
        DispatcherKind::Sporadic {
            separation_q,
            deadline_q,
            triggers,
        } => {
            let (inner, miss) = make_wait(*deadline_q, invoke(idle_def, []));
            let outer = scope(
                inner,
                TimeBound::Finite(Expr::c(*separation_q)),
                None,
                Some(invoke(disp_def, [])),
                None,
            );
            let mut alts = vec![act([] as [(Res, Expr); 0], invoke(disp_def, []))];
            for (trig, urgency) in triggers {
                alts.push(evt_recv(
                    *trig,
                    *urgency,
                    evt_send(dispatch, 1, outer.clone()),
                ));
            }
            alts.extend(deact_alt.clone());
            env.set_body(disp_def, choice(alts));
            DispatcherDefs {
                disp_def,
                miss_def: Some(miss),
                initial,
            }
        }
        DispatcherKind::Background => {
            // Background threads are dispatched once, immediately; mode
            // gating is not supported for them (documented restriction).
            env.set_body(disp_def, evt_send(dispatch, 1, invoke(idle_def, [])));
            DispatcherDefs {
                disp_def,
                miss_def: None,
                initial,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acsr::{par, prioritized_steps, restrict, steps, Label};

    fn env_with_idle() -> (Env, DefId) {
        let mut env = Env::new();
        let idle = env.declare("Idle", 0);
        env.set_body(idle, act([] as [(Res, Expr); 0], invoke(idle, [])));
        (env, idle)
    }

    /// A fake thread that accepts dispatch and sends done after exactly
    /// `quanta` time steps.
    fn fake_thread(env: &mut Env, stem: &str, dispatch: Symbol, done: Symbol, quanta: i64) -> P {
        let wait = env.declare(&format!("FakeWait_{stem}"), 0);
        let run = env.declare(&format!("FakeRun_{stem}"), 1);
        env.set_body(
            wait,
            choice([
                act([] as [(Res, Expr); 0], invoke(wait, [])),
                evt_recv(dispatch, 1, invoke(run, [Expr::c(quanta)])),
            ]),
        );
        env.set_body(
            run,
            choice([
                acsr::guard(
                    acsr::BExpr::gt(Expr::p(0), Expr::c(0)),
                    act(
                        [(Res::new("fake_cpu"), 1)],
                        invoke(run, [Expr::p(0).sub(Expr::c(1))]),
                    ),
                ),
                acsr::guard(
                    acsr::BExpr::eq(Expr::p(0), Expr::c(0)),
                    evt_send(done, 1, invoke(wait, [])),
                ),
            ]),
        );
        invoke(wait, [])
    }

    #[test]
    fn periodic_dispatcher_cannot_idle_initially() {
        let (mut env, idle) = env_with_idle();
        let mut nm = NameMap::default();
        let dispatch = Symbol::new("dispatch_pd");
        let done = Symbol::new("done_pd");
        let defs = build_dispatcher(
            &mut env,
            &mut nm,
            CompId(0),
            "pd",
            dispatch,
            done,
            idle,
            &DispatcherKind::Periodic {
                period_q: 4,
                deadline_q: 3,
            }, None,);
        let s = steps(&env, &invoke(defs.disp_def, []));
        assert_eq!(s.len(), 1);
        assert!(matches!(&s[0].0, Label::E { label, .. } if *label == dispatch));
    }

    #[test]
    fn periodic_dispatcher_cycle_is_deadlock_free_when_thread_is_fast() {
        let (mut env, idle) = env_with_idle();
        let mut nm = NameMap::default();
        let dispatch = Symbol::new("dispatch_pc");
        let done = Symbol::new("done_pc");
        let defs = build_dispatcher(
            &mut env,
            &mut nm,
            CompId(0),
            "pc",
            dispatch,
            done,
            idle,
            &DispatcherKind::Periodic {
                period_q: 4,
                deadline_q: 3,
            }, None,);
        let thread = fake_thread(&mut env, "pc", dispatch, done, 2); // 2 ≤ 3
        let sys = restrict(par([invoke(defs.disp_def, []), thread]), [dispatch, done]);
        let ex = versa::explore(&env, &sys, &versa::Options::default());
        assert!(
            ex.deadlock_free(),
            "fast thread meets the deadline every period"
        );
        // The cycle is periodic: finitely many states.
        assert!(ex.num_states() <= 32);
    }

    #[test]
    fn periodic_dispatcher_deadlocks_when_thread_is_slow() {
        let (mut env, idle) = env_with_idle();
        let mut nm = NameMap::default();
        let dispatch = Symbol::new("dispatch_ps");
        let done = Symbol::new("done_ps");
        let defs = build_dispatcher(
            &mut env,
            &mut nm,
            CompId(7),
            "ps",
            dispatch,
            done,
            idle,
            &DispatcherKind::Periodic {
                period_q: 4,
                deadline_q: 2,
            }, None,);
        let thread = fake_thread(&mut env, "ps", dispatch, done, 3); // 3 > 2
        let sys = restrict(par([invoke(defs.disp_def, []), thread]), [dispatch, done]);
        let ex = versa::explore(&env, &sys, &versa::Options::default());
        assert_eq!(ex.deadlocks.len(), 1);
        let t = ex.first_deadlock_trace().unwrap();
        // Deadlock at the deadline: τ@dispatch + 2 quanta.
        assert_eq!(t.elapsed_quanta(), 2);
        assert_eq!(
            nm.def(defs.miss_def.unwrap()),
            Some(DefMeaning::DeadlineMiss(CompId(7)))
        );
    }

    #[test]
    fn completion_at_exactly_the_deadline_is_allowed() {
        let (mut env, idle) = env_with_idle();
        let mut nm = NameMap::default();
        let dispatch = Symbol::new("dispatch_px");
        let done = Symbol::new("done_px");
        let defs = build_dispatcher(
            &mut env,
            &mut nm,
            CompId(0),
            "px",
            dispatch,
            done,
            idle,
            &DispatcherKind::Periodic {
                period_q: 4,
                deadline_q: 2,
            }, None,);
        let thread = fake_thread(&mut env, "px", dispatch, done, 2); // exactly d
        let sys = restrict(par([invoke(defs.disp_def, []), thread]), [dispatch, done]);
        let ex = versa::explore(&env, &sys, &versa::Options::default());
        assert!(ex.deadlock_free());
    }

    #[test]
    fn sporadic_dispatcher_enforces_minimum_separation() {
        let (mut env, idle) = env_with_idle();
        let mut nm = NameMap::default();
        let dispatch = Symbol::new("dispatch_sp");
        let done = Symbol::new("done_sp");
        let trig = Symbol::new("deq_sp");
        let defs = build_dispatcher(
            &mut env,
            &mut nm,
            CompId(0),
            "sp",
            dispatch,
            done,
            idle,
            &DispatcherKind::Sporadic {
                separation_q: 5,
                deadline_q: 3,
                triggers: vec![(trig, 1)],
            }, None,);
        // Initially the dispatcher offers idle + the dequeue receive.
        let s = steps(&env, &invoke(defs.disp_def, []));
        assert_eq!(s.len(), 2);
        let (_, after_trig) = s
            .iter()
            .find(|(l, _)| matches!(l, Label::E { .. }))
            .unwrap();
        // After the trigger, the dispatch must fire immediately.
        let s = steps(&env, after_trig);
        assert_eq!(s.len(), 1);
        assert!(matches!(&s[0].0, Label::E { label, .. } if *label == dispatch));
        // Inside the separation scope the trigger is NOT offered: only timed
        // steps and the done receive.
        let (_, in_sep) = &s[0];
        let inside = steps(&env, in_sep);
        assert!(inside
            .iter()
            .all(|(l, _)| !matches!(l, Label::E { label, .. } if *label == trig)));
    }

    #[test]
    fn aperiodic_dispatcher_relistens_after_done() {
        let (mut env, idle) = env_with_idle();
        let mut nm = NameMap::default();
        let dispatch = Symbol::new("dispatch_ap");
        let done = Symbol::new("done_ap");
        let trig = Symbol::new("deq_ap");
        let defs = build_dispatcher(
            &mut env,
            &mut nm,
            CompId(0),
            "ap",
            dispatch,
            done,
            idle,
            &DispatcherKind::Aperiodic {
                deadline_q: 3,
                triggers: vec![(trig, 1)],
            }, None,);
        // trigger → dispatch → (done) → back to listening.
        let s = steps(&env, &invoke(defs.disp_def, []));
        let (_, a) = s
            .iter()
            .find(|(l, _)| matches!(l, Label::E { .. }))
            .unwrap();
        let s = steps(&env, a);
        let (_, b) = &s[0]; // dispatch!
        let s = steps(&env, b);
        let (_, c) = s
            .iter()
            .find(|(l, _)| matches!(l, Label::E { label, .. } if *label == done))
            .unwrap();
        assert_eq!(c, &invoke(defs.disp_def, []));
    }

    #[test]
    fn urgency_resolves_trigger_choice() {
        let (mut env, idle) = env_with_idle();
        let mut nm = NameMap::default();
        let dispatch = Symbol::new("dispatch_ur");
        let done = Symbol::new("done_ur");
        let lo = Symbol::new("deq_lo");
        let hi = Symbol::new("deq_hi");
        let defs = build_dispatcher(
            &mut env,
            &mut nm,
            CompId(0),
            "ur",
            dispatch,
            done,
            idle,
            &DispatcherKind::Aperiodic {
                deadline_q: 3,
                triggers: vec![(lo, 1), (hi, 5)],
            }, None,);
        // Compose with two senders offering both events; the higher-urgency
        // sync should win under prioritization.
        let senders = par([
            evt_send(lo, 1, nil()),
            evt_send(hi, 1, nil()),
            invoke(defs.disp_def, []),
        ]);
        let sys = restrict(senders, [lo, hi]);
        let s = prioritized_steps(&env, &sys);
        // Only the hi sync (priority 1+5) survives; the lo sync (1+1) is a
        // lower-priority τ.
        let taus: Vec<_> = s.iter().filter(|(l, _)| l.is_tau()).collect();
        assert_eq!(taus.len(), 1);
        assert!(matches!(taus[0].0, Label::Tau { prio: 6, .. }));
    }

    #[test]
    fn background_dispatcher_fires_once() {
        let (mut env, idle) = env_with_idle();
        let mut nm = NameMap::default();
        let dispatch = Symbol::new("dispatch_bg");
        let done = Symbol::new("done_bg");
        let defs = build_dispatcher(
            &mut env,
            &mut nm,
            CompId(0),
            "bg",
            dispatch,
            done,
            idle,
            &DispatcherKind::Background, None,);
        assert!(defs.miss_def.is_none());
        let s = steps(&env, &invoke(defs.disp_def, []));
        assert_eq!(s.len(), 1);
        assert!(matches!(&s[0].0, Label::E { label, .. } if *label == dispatch));
        // Afterwards: idle forever.
        let s = steps(&env, &s[0].1);
        assert_eq!(s.len(), 1);
        assert!(s[0].0.is_timed());
    }
}
