//! Whole-model translation — Algorithm 1 of the paper.
//!
//! Orchestrates the per-thread generators ([`skeleton`](crate::skeleton),
//! [`dispatcher`](crate::dispatcher)), the per-connection queue processes
//! ([`queue`](crate::queue)) and the optional latency observers
//! ([`observer`](crate::observer)) into one parallel composition, with every
//! internal event restricted so that communication can only happen as
//! synchronisation:
//!
//! ```text
//! ( S_t1 ∥ D_t1 ∥ S_t2 ∥ D_t2 ∥ … ∥ Q_e1 ∥ … ∥ Gen_dev ∥ … ∥ Obs ) \ {dispatch_*, done_*, q_*, deq_*, obs_*}
//! ```
//!
//! Decisions the paper leaves to the tool, made explicit here:
//!
//! * **Queues** are generated for semantic event / event-data connections
//!   whose destination thread is dispatched by events (aperiodic, sporadic).
//!   Periodic threads "are dispatched by a timer and therefore ignore
//!   external events" (§2) — no process consumes their queues, so none are
//!   generated (and no `e_q!` is added to the source, avoiding an artificial
//!   block on the restricted send).
//! * **Devices** that are ultimate sources of queued connections get a
//!   stimulus generator: periodic if the device declares a `Period`,
//!   otherwise a *free* generator that may raise the event at any instant —
//!   which makes the exploration exhaustive over arrival patterns.
//! * **Event sends** default to completion time (§4.4: "a common behavior of
//!   a periodic thread is to send data at the end of its computation
//!   period"); [`SendPattern::Anytime`] switches to the conservative
//!   raise-at-any-time self-loop.
//! * **Compact mode** (`TranslateOptions::compact`) drops the redundant
//!   skeleton deadline scope and the elapsed-time parameter where no dynamic
//!   priority needs them — the state-space reduction the paper lists as
//!   future work (§7). Defaults to the faithful Fig. 4/5 structure.

use aadl::check::{validate, ValidationError};
use aadl::instance::{CompId, InstanceModel};
use aadl::model::Category;
use aadl::properties::{DispatchProtocol, TimeVal};
use acsr::{
    act, choice, evt_send, invoke, par, restrict, scope, Env, Expr, Res, Symbol, TermStore,
    TimeBound, P,
};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::compute::ComputeSpec;
use crate::dispatcher::{build_dispatcher, DispatcherKind};
use crate::modes::build_mode_manager;
use crate::names::{ComponentRole, EventMeaning, NameMap, ThreadNames};
use crate::observer::{build_observer, LatencyObserver};
use crate::policy::assign_priorities;
use crate::quantum::{derive_quantum, thread_timing};
use crate::queue::{build_queue, initial_queue};
use crate::skeleton::{build_skeleton, SkeletonSpec};

/// Errors from the translation.
#[derive(Debug)]
pub enum TranslateError {
    /// The instance model violates the §4.1 assumptions.
    Validation(Vec<ValidationError>),
    /// A construct outside the supported fragment.
    Unsupported(String),
    /// Quantum derivation failed.
    Quantum(String),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::Validation(errs) => {
                writeln!(f, "the model violates the translation's assumptions (§4.1):")?;
                for e in errs {
                    writeln!(f, "  - {e}")?;
                }
                Ok(())
            }
            TranslateError::Unsupported(s) => write!(f, "unsupported: {s}"),
            TranslateError::Quantum(s) => write!(f, "quantum: {s}"),
        }
    }
}

impl std::error::Error for TranslateError {}

/// When does a thread raise its output events? (§4.4)
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum SendPattern {
    /// At the end of the computation (the paper's default for data event
    /// connections of periodic threads).
    #[default]
    AtCompletion,
    /// At any time while computing (the conservative default the paper
    /// describes for unrefined threads — "analysis results can be very
    /// conservative").
    Anytime,
}

/// Translation options.
#[derive(Clone, Debug, Default)]
pub struct TranslateOptions {
    /// Drop the redundant skeleton deadline scope and the elapsed-time
    /// parameter where possible (the "more compact state spaces" direction of
    /// §7). For purely periodic models the dispatcher already tracks elapsed
    /// time, so this shrinks each state's *term* (cheaper hashing, smaller
    /// memory) rather than the reachable state count; verdicts are identical.
    pub compact: bool,
    /// Override the scheduling quantum (defaults to `Scheduling_Quantum` or
    /// the GCD of all timing properties, §4.1).
    pub quantum: Option<TimeVal>,
    /// Output-event timing.
    pub send_pattern: SendPattern,
    /// End-to-end latency observers to weave into the model (§5).
    pub observers: Vec<LatencyObserver>,
    /// Accept root-level modes and generate the mode manager (extension; the
    /// paper's translation is single-mode, §4). When false, moded models are
    /// rejected by validation.
    pub enable_modes: bool,
    /// Replace the declared `Concurrency_Control_Protocol` of every
    /// critical-section-managed data component (§7 extension) — the
    /// `aadlsched --protocol` experiment hook for comparing verdicts under
    /// `None_Specified` / `Priority_Inheritance` / `Priority_Ceiling` without
    /// editing the model. Protocol-specific requirements (static priorities)
    /// are then checked against the override and surface as
    /// [`TranslateError::Unsupported`].
    pub protocol_override: Option<aadl::ConcurrencyControlProtocol>,
    /// Canonicalize the composed term through this shared, long-lived store
    /// (e.g. the daemon's warm store, reused across requests so structurally
    /// identical subterms intern once) instead of a fresh private one.
    pub store: Option<Arc<TermStore>>,
    /// Observability recorder; defaults to disabled (no-op). May be a
    /// request-scoped clone ([`obs::Recorder::scoped`]) — the `translate`
    /// span then parents under the caller's anchor span and carries the
    /// request tag.
    pub obs: obs::Recorder,
}

impl TranslateOptions {
    /// Canonical fingerprint of every option that changes the *generated
    /// model* (the term and environment), in a fixed field order. Two option
    /// values with equal fingerprints translate any given instance model to
    /// semantically identical ACSR; anything that could change a verdict
    /// changes the string. The `store` and `obs` handles are deliberately
    /// excluded — they change where subterms intern and what gets recorded,
    /// never what is generated.
    ///
    /// The analysis layer mixes this string into `cas` store keys (see
    /// `versa::Options::cas_context`), which is why stability of the format
    /// matters: reordering or renaming fields orphans every artifact
    /// deposited under the old rendering.
    pub fn canonical(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "compact={};quantum_ps={};send={:?};modes={};protocol={:?};observers=[",
            self.compact,
            self.quantum.map_or(-1, |q| q.as_ps()),
            self.send_pattern,
            self.enable_modes,
            self.protocol_override,
        );
        for (i, o) in self.observers.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}->{}@{}", o.from.index(), o.to.index(), o.bound.as_ps());
        }
        s.push(']');
        s
    }
}

/// Counts of the generated processes — §4.1 reports this inventory for the
/// cruise-control example (6 threads, 6 dispatchers, no queues).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Inventory {
    /// Thread skeleton processes.
    pub threads: usize,
    /// Dispatcher processes.
    pub dispatchers: usize,
    /// Queue processes.
    pub queues: usize,
    /// Device stimulus generators.
    pub device_gens: usize,
    /// Latency observers.
    pub observers: usize,
    /// Mode managers (0 or 1; modes extension).
    pub mode_managers: usize,
}

/// The result of translating an AADL instance model.
pub struct TranslatedModel {
    /// The ACSR definition environment.
    pub env: Env,
    /// The composed, restricted initial term, canonicalized through `store`.
    pub initial: P,
    /// The hash-consed term store seeded with the initial term. Analysis
    /// passes it to the explorer so subterms shared between the initial term
    /// and reachable states intern to the same [`acsr::TermId`]s.
    pub store: Arc<TermStore>,
    /// The AADL ↔ ACSR name map for diagnostics.
    pub names: NameMap,
    /// The scheduling quantum in picoseconds.
    pub quantum_ps: i64,
    /// Process inventory.
    pub inventory: Inventory,
    /// [`TranslateOptions::canonical`] of the options this model was
    /// generated under — the context string the analysis layer mixes into
    /// persistent `cas` store keys.
    pub options_canon: String,
}

/// Translate a validated, fully bound instance model into ACSR.
pub fn translate(
    model: &InstanceModel,
    opts: &TranslateOptions,
) -> Result<TranslatedModel, TranslateError> {
    let mut errs = validate(model);
    if opts.enable_modes {
        // The modes extension lifts the single-mode restriction for the root.
        let root = model.root();
        errs.retain(|e| {
            !matches!(e, ValidationError::MultiMode { component }
                if *component == model.component(root).display_path())
        });
    }
    if !errs.is_empty() {
        return Err(TranslateError::Validation(errs));
    }

    let quantum_ps = match opts.quantum {
        Some(q) if q.as_ps() > 0 => q.as_ps(),
        Some(q) => return Err(TranslateError::Quantum(format!("quantum {q} must be positive"))),
        None => derive_quantum(model)?,
    };

    // Opened only after the fallible validation/quantum phase, so rejected
    // models never leave a half-recorded span behind.
    let span = opts.obs.span("translate");

    let mut env = Env::new();
    let mut nm = NameMap::default();
    let mut inventory = Inventory::default();

    // Shared idle process.
    let idle_def = env.declare("Idle", 0);
    env.set_body(idle_def, act([] as [(Res, Expr); 0], invoke(idle_def, [])));

    // ------------------------------------------------------------------
    // Queued connections (§4.4) and the event plumbing they induce.
    // ------------------------------------------------------------------
    let mut queue_names = Vec::new();
    // thread → events to send at completion, in connection order.
    let mut sends_of: HashMap<CompId, Vec<(Symbol, i64)>> = HashMap::new();
    // event-driven thread → dispatch triggers (deq, urgency).
    let mut triggers_of: HashMap<CompId, Vec<(Symbol, i64)>> = HashMap::new();
    // device → events its generator raises.
    let mut device_sends: HashMap<CompId, Vec<(Symbol, i64)>> = HashMap::new();

    for (ci, conn) in model.connections.iter().enumerate() {
        if !conn.kind.is_queued() {
            continue;
        }
        let dst = model.component(conn.dst.0);
        if dst.category != Category::Thread
            || !dst
                .properties
                .dispatch_protocol()
                .is_some_and(DispatchProtocol::is_event_driven)
        {
            // Periodic destinations ignore events (§2); nothing consumes the
            // queue, so none is generated.
            continue;
        }
        let stem = format!("c{ci}_{}", conn.name.replace(['/', '.'], "_"));
        let size = conn.properties.queue_size();
        let overflow = conn.properties.overflow_handling();
        let urgency = conn.properties.urgency().max(1);
        let names = build_queue(&mut env, &mut nm, ci, &stem, size, overflow, urgency);
        triggers_of
            .entry(conn.dst.0)
            .or_default()
            .push((names.dequeue, urgency));
        let src = model.component(conn.src.0);
        match src.category {
            Category::Thread => sends_of
                .entry(conn.src.0)
                .or_default()
                .push((names.enqueue, 1)),
            Category::Device => device_sends
                .entry(conn.src.0)
                .or_default()
                .push((names.enqueue, 1)),
            _ => {}
        }
        queue_names.push(names);
        inventory.queues += 1;
    }

    // ------------------------------------------------------------------
    // Latency observers: register probe events and attach them to the
    // completion chains of the observed threads (§5).
    // ------------------------------------------------------------------
    let mut observer_defs = Vec::new();
    for (oi, obs) in opts.observers.iter().enumerate() {
        let start = Symbol::new(&format!("obs{oi}_start"));
        let end = Symbol::new(&format!("obs{oi}_end"));
        nm.add_event(start, EventMeaning::ObserverStart(oi));
        nm.add_event(end, EventMeaning::ObserverEnd(oi));
        let bound_q = (obs.bound.as_ps() / quantum_ps).max(1);
        let def = build_observer(&mut env, &mut nm, oi, start, end, bound_q);
        sends_of.entry(obs.from).or_default().push((start, 1));
        sends_of.entry(obs.to).or_default().push((end, 1));
        observer_defs.push(def);
        inventory.observers += 1;
    }

    // ------------------------------------------------------------------
    // Modes extension: the mode manager and per-thread gates.
    // ------------------------------------------------------------------
    let mode_setup = if opts.enable_modes {
        build_mode_manager(&mut env, &mut nm, model)?
    } else {
        None
    };
    if let Some(setup) = &mode_setup {
        for (tid, sends) in &setup.trigger_sends {
            sends_of.entry(*tid).or_default().extend(sends.iter().copied());
        }
    }

    // ------------------------------------------------------------------
    // Per processor, per thread: skeleton + dispatcher (Algorithm 1).
    // ------------------------------------------------------------------
    let mut components: Vec<P> = Vec::new();

    // First pass: per-processor scheduling plans (thread sets, timings,
    // priorities). Computed up front because concurrency-control resolution
    // needs the priorities of *all* accessors of a shared data component —
    // ceilings cross processor boundaries.
    struct ProcPlan {
        threads: Vec<CompId>,
        timings: Vec<crate::quantum::ThreadTiming>,
        prios: Vec<crate::policy::PrioSpec>,
        cpu: Res,
    }
    let mut plans: Vec<ProcPlan> = Vec::new();
    let processors: Vec<CompId> = model.processors().map(|p| p.id).collect();
    for &proc in &processors {
        let threads = model.threads_on(proc);
        if threads.is_empty() {
            continue;
        }
        let protocol = model
            .component(proc)
            .properties
            .scheduling_protocol()
            .ok_or_else(|| {
                TranslateError::Unsupported(format!(
                    "processor `{}` has no recognizable Scheduling_Protocol",
                    model.component(proc).display_path()
                ))
            })?;
        let timings = threads
            .iter()
            .map(|&t| thread_timing(model, t, quantum_ps))
            .collect::<Result<Vec<_>, _>>()?;
        let prios = assign_priorities(model, protocol, &threads, &timings)?;
        let cpu = Res::new(&format!("cpu_{}", crate::names::stem_of(model, proc)));
        plans.push(ProcPlan {
            threads,
            timings,
            prios,
            cpu,
        });
    }

    // Concurrency-control resolution (§7 extension): one CsSpec per thread
    // with a critical section on a shared data component.
    let mut prio_of = HashMap::new();
    let mut cmin_of = HashMap::new();
    for plan in &plans {
        for ((&tid, timing), prio) in plan.threads.iter().zip(&plan.timings).zip(&plan.prios) {
            prio_of.insert(tid, prio.clone());
            cmin_of.insert(tid, timing.cmin_q);
        }
    }
    let mut cs_of = crate::protocol::resolve_protocols(
        model,
        &mut nm,
        opts.protocol_override,
        quantum_ps,
        &prio_of,
        &cmin_of,
    )?;
    let cs_threads = cs_of.len();
    if opts.obs.is_enabled() {
        let cs_quanta = opts.obs.histogram("protocol.cs_quanta");
        for cs in cs_of.values() {
            cs_quanta.observe(cs.cs_q as u64);
        }
    }

    // Second pass: generate skeleton + dispatcher per thread (Algorithm 1).
    for plan in &plans {
        let cpu = plan.cpu;
        for ((&tid, timing), prio) in plan.threads.iter().zip(&plan.timings).zip(&plan.prios) {
            let stem = crate::names::stem_of(model, tid);
            let dispatch = Symbol::new(&format!("dispatch_{stem}"));
            let done = Symbol::new(&format!("done_{stem}"));
            nm.add_event(dispatch, EventMeaning::Dispatch(tid));
            nm.add_event(done, EventMeaning::Done(tid));

            // Bus resources of bus-bound outgoing semantic connections (§4.2).
            let mut final_resources: Vec<Res> = Vec::new();
            for conn in model.connections_from(tid) {
                for &b in &conn.buses {
                    let r = Res::new(&format!("bus_{}", crate::names::stem_of(model, b)));
                    if !final_resources.contains(&r) {
                        final_resources.push(r);
                    }
                }
            }

            // Shared data resources of the thread's access connections — the
            // `R` set of Fig. 5. Data managed by this thread's critical
            // section is excluded: the CS states claim its lock themselves.
            let cs_spec = cs_of.remove(&tid);
            let mut shared_resources: Vec<Res> = Vec::new();
            for acc in model.accesses_of(tid) {
                if cs_spec.as_ref().is_some_and(|c| c.data == acc.data) {
                    continue;
                }
                let r = Res::new(&format!("data_{}", crate::names::stem_of(model, acc.data)));
                if !shared_resources.contains(&r) {
                    shared_resources.push(r);
                }
            }

            let thread_sends = sends_of.get(&tid).cloned().unwrap_or_default();
            let (sends, anytime_sends) = match opts.send_pattern {
                SendPattern::AtCompletion => (thread_sends, Vec::new()),
                // Observer probes must stay deterministic at completion;
                // only connection events move to the self-loop.
                SendPattern::Anytime => {
                    let (probes, conns): (Vec<_>, Vec<_>) =
                        thread_sends.into_iter().partition(|(s, _)| {
                            matches!(
                                nm.event(*s),
                                Some(EventMeaning::ObserverStart(_))
                                    | Some(EventMeaning::ObserverEnd(_))
                            )
                        });
                    // Anytime raises are nondeterministic, not urgent:
                    // priority 0 so the τ never preempts time (an urgent τ
                    // self-loop on a saturated dropping queue would stop the
                    // clock).
                    (probes, conns.into_iter().map(|(s, _)| (s, 0)).collect())
                }
            };

            let needs_elapsed = prio.needs_elapsed();
            let faithful = !opts.compact || needs_elapsed;
            let track_elapsed = needs_elapsed || faithful;

            let skel = build_skeleton(
                &mut env,
                &mut nm,
                tid,
                &stem,
                SkeletonSpec {
                    compute: ComputeSpec {
                        cpu,
                        prio,
                        cmin_q: timing.cmin_q,
                        cmax_q: timing.cmax_q,
                        final_resources,
                        shared_resources,
                        sends,
                        anytime_sends,
                        done,
                        after_done: acsr::nil(), // overwritten by build_skeleton
                        track_elapsed,
                        critical_section: cs_spec,
                    },
                    dispatch_protocol: timing.dispatch,
                    dispatch,
                    deadline_q: timing.deadline_q,
                    faithful_scope: faithful,
                    idle_def,
                },
            );

            let kind = match timing.dispatch {
                DispatchProtocol::Periodic => DispatcherKind::Periodic {
                    period_q: timing.period_q.expect("validated"),
                    deadline_q: timing.deadline_q.expect("validated"),
                },
                DispatchProtocol::Aperiodic => DispatcherKind::Aperiodic {
                    deadline_q: timing.deadline_q.expect("validated"),
                    triggers: triggers_of.get(&tid).cloned().unwrap_or_default(),
                },
                DispatchProtocol::Sporadic => DispatcherKind::Sporadic {
                    separation_q: timing.period_q.expect("validated"),
                    deadline_q: timing.deadline_q.expect("validated"),
                    triggers: triggers_of.get(&tid).cloned().unwrap_or_default(),
                },
                DispatchProtocol::Background => DispatcherKind::Background,
            };
            let gate = mode_setup.as_ref().and_then(|ms| ms.gates.get(&tid));
            let disp = build_dispatcher(
                &mut env, &mut nm, tid, &stem, dispatch, done, idle_def, &kind, gate,
            );

            nm.threads.push(ThreadNames {
                thread: tid,
                stem: stem.clone(),
                dispatch,
                done,
                skel_def: skel.skel_def,
                compute_def: skel.compute_def,
                preempted_def: skel.preempted_def,
                violation_def: skel.violation_def,
                disp_def: disp.disp_def,
                miss_def: disp.miss_def,
            });

            components.push(invoke(skel.skel_def, []));
            nm.roles.push(ComponentRole::Skeleton(tid));
            components.push(disp.initial.clone());
            nm.roles.push(ComponentRole::Dispatcher(tid));
            inventory.threads += 1;
            inventory.dispatchers += 1;
        }
    }

    // ------------------------------------------------------------------
    // Queues, device generators, observers.
    // ------------------------------------------------------------------
    for names in &queue_names {
        components.push(initial_queue(names));
        nm.roles.push(ComponentRole::Queue(names.conn));
    }
    nm.conns = queue_names;

    for (dev, sends) in {
        let mut v: Vec<_> = device_sends.into_iter().collect();
        v.sort_by_key(|(d, _)| *d);
        v
    } {
        let stem = crate::names::stem_of(model, dev);
        let gen_def = env.declare(&format!("DevGen_{stem}"), 0);
        let period_q = model
            .component(dev)
            .properties
            .period()
            .map(|p| (p.as_ps() / quantum_ps).max(1));
        let body = match period_q {
            Some(p) => {
                // Emit all events now, then idle out the period and repeat.
                let wait_def = env.declare(&format!("DevWait_{stem}"), 0);
                env.set_body(
                    wait_def,
                    act([] as [(Res, Expr); 0], invoke(wait_def, [])),
                );
                let mut chain = scope(
                    invoke(wait_def, []),
                    TimeBound::Finite(Expr::c(p)),
                    None,
                    Some(invoke(gen_def, [])),
                    None,
                );
                for (sym, prio) in sends.iter().rev() {
                    chain = evt_send(*sym, *prio, chain);
                }
                chain
            }
            None => {
                // Free generator: raise any of the events at any instant —
                // exhaustive over arrival patterns. Priority 0: the arrival
                // is nondeterministic, never urgent (see the queue comment).
                let mut alts = vec![act([] as [(Res, Expr); 0], invoke(gen_def, []))];
                for (sym, _) in &sends {
                    alts.push(evt_send(*sym, 0, invoke(gen_def, [])));
                }
                choice(alts)
            }
        };
        env.set_body(gen_def, body);
        components.push(invoke(gen_def, []));
        nm.roles.push(ComponentRole::DeviceGen(dev));
        inventory.device_gens += 1;
    }

    for (oi, def) in observer_defs.iter().enumerate() {
        components.push(invoke(*def, []));
        nm.roles.push(ComponentRole::Observer(oi));
    }

    if let Some(setup) = &mode_setup {
        components.push(setup.manager_initial.clone());
        nm.roles.push(ComponentRole::ModeManager);
        inventory.mode_managers += 1;
    }

    let restricted = nm.restricted();
    let initial = restrict(par(components), restricted);
    debug_assert!(env.check_complete().is_ok());

    // Canonicalize the composed term so the explorer starts from a store
    // already holding every subterm of the initial state.
    let store = opts
        .store
        .clone()
        .unwrap_or_else(|| Arc::new(TermStore::new()));
    let initial = store.intern(&initial).into_term();

    if opts.obs.is_enabled() {
        let skel_sizes = opts.obs.histogram("translate.skeleton_size");
        let disp_sizes = opts.obs.histogram("translate.dispatcher_size");
        for t in &nm.threads {
            skel_sizes.observe(def_size(&env, t.skel_def));
            disp_sizes.observe(def_size(&env, t.disp_def));
        }
        let queue_sizes = opts.obs.histogram("translate.queue_size");
        for q in &nm.conns {
            queue_sizes.observe(def_size(&env, q.queue_def));
        }
        opts.obs
            .histogram("translate.initial_term_size")
            .observe(term_size(&initial));
    }
    span.set("threads", inventory.threads as i64);
    span.set("dispatchers", inventory.dispatchers as i64);
    span.set("queues", inventory.queues as i64);
    span.set("device_gens", inventory.device_gens as i64);
    span.set("observers", inventory.observers as i64);
    span.set("mode_managers", inventory.mode_managers as i64);
    span.set("cs_threads", cs_threads as i64);
    span.set("defs", env.num_defs() as i64);
    span.set("quantum_ps", quantum_ps);
    span.end();

    Ok(TranslatedModel {
        env,
        initial,
        store,
        names: nm,
        quantum_ps,
        inventory,
        options_canon: opts.canonical(),
    })
}

/// Structural size (node count) of an ACSR term — the proxy for per-state
/// memory and hashing cost that the observability report tracks per
/// generated process.
pub fn term_size(p: &acsr::Proc) -> u64 {
    match p {
        acsr::Proc::Nil | acsr::Proc::Invoke { .. } => 1,
        acsr::Proc::Act { next, .. } | acsr::Proc::Evt { next, .. } => 1 + term_size(next),
        acsr::Proc::Choice(v) | acsr::Proc::Par(v) => {
            1 + v.iter().map(|c| term_size(c)).sum::<u64>()
        }
        acsr::Proc::Guard { then, .. } => 1 + term_size(then),
        acsr::Proc::Scope {
            body,
            exception,
            timeout,
            interrupt,
            ..
        } => {
            1 + term_size(body)
                + exception.as_ref().map_or(0, |(_, h)| term_size(h))
                + timeout.as_ref().map_or(0, |t| term_size(t))
                + interrupt.as_ref().map_or(0, |i| term_size(i))
        }
        acsr::Proc::Restrict { body, .. } | acsr::Proc::Close { body, .. } => 1 + term_size(body),
    }
}

fn def_size(env: &Env, def: acsr::DefId) -> u64 {
    env.def(def).body.as_ref().map_or(0, |b| term_size(b))
}

impl fmt::Debug for TranslatedModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TranslatedModel")
            .field("quantum_ps", &self.quantum_ps)
            .field("inventory", &self.inventory)
            .field("defs", &self.env.num_defs())
            .field("unique_subterms", &self.store.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use acsr::DefId;
    use super::*;
    use aadl::examples::{cruise_control_model, producer_handler};
    use aadl::instance::instantiate;

    #[test]
    fn cruise_control_inventory_matches_the_paper() {
        // §4.1: "the translation produces six ACSR processes that represent
        // threads and six ACSR processes that represent dispatchers for each
        // thread. All connections in the example are data connections, thus
        // no queue processes are introduced."
        let m = cruise_control_model();
        let tm = translate(&m, &TranslateOptions::default()).unwrap();
        assert_eq!(tm.inventory.threads, 6);
        assert_eq!(tm.inventory.dispatchers, 6);
        assert_eq!(tm.inventory.queues, 0);
        assert_eq!(tm.inventory.device_gens, 0);
        assert_eq!(tm.names.roles.len(), 12);
    }

    #[test]
    fn cruise_control_quantum_is_5ms() {
        let m = cruise_control_model();
        let tm = translate(&m, &TranslateOptions::default()).unwrap();
        assert_eq!(tm.quantum_ps, TimeVal::ms(5).as_ps());
    }

    #[test]
    fn bus_bound_threads_get_bus_resources_in_final_step() {
        let m = cruise_control_model();
        let tm = translate(&m, &TranslateOptions::default()).unwrap();
        // Inspect the compute defs of ref_speed (bus-bound) and cruise2 (not).
        let rs = tm
            .names
            .threads
            .iter()
            .find(|t| t.stem == "hci_ref_speed")
            .unwrap();
        let c2 = tm
            .names
            .threads
            .iter()
            .find(|t| t.stem == "ccl_cruise2")
            .unwrap();
        let bus = Res::new("bus_bus0");
        let uses_bus = |def: DefId| -> bool {
            let body = tm.env.def(def).body.as_ref().unwrap();
            fn walk(p: &acsr::Proc, bus: Res) -> bool {
                match p {
                    acsr::Proc::Act { action, next, .. } => {
                        action.uses.iter().any(|(r, _)| *r == bus) || walk(next, bus)
                    }
                    acsr::Proc::Evt { next, .. } => walk(next, bus),
                    acsr::Proc::Choice(v) | acsr::Proc::Par(v) => {
                        v.iter().any(|c| walk(c, bus))
                    }
                    acsr::Proc::Guard { then, .. } => walk(then, bus),
                    acsr::Proc::Scope { body, .. } => walk(body, bus),
                    acsr::Proc::Restrict { body, .. } | acsr::Proc::Close { body, .. } => {
                        walk(body, bus)
                    }
                    _ => false,
                }
            }
            walk(body, bus)
        };
        assert!(uses_bus(rs.compute_def), "ref_speed's final step uses the bus");
        assert!(!uses_bus(c2.compute_def), "cruise2 never touches the bus");
    }

    #[test]
    fn producer_handler_generates_a_queue() {
        let pkg = producer_handler(2, "Error");
        let m = instantiate(&pkg, "Top.impl").unwrap();
        let tm = translate(&m, &TranslateOptions::default()).unwrap();
        assert_eq!(tm.inventory.queues, 1);
        assert_eq!(tm.names.conns.len(), 1);
        assert!(tm.names.conns[0].error_def.is_some());
        // 2 threads + 2 dispatchers + 1 queue.
        assert_eq!(tm.names.roles.len(), 5);
    }

    #[test]
    fn invalid_model_is_rejected_with_validation_errors() {
        let pkg = aadl::builder::PackageBuilder::new("Bad")
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| i)
            .build();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        match translate(&m, &TranslateOptions::default()) {
            Err(TranslateError::Validation(errs)) => assert!(!errs.is_empty()),
            other => panic!("expected validation failure, got {other:?}"),
        }
    }

    #[test]
    fn compact_mode_drops_violation_defs_for_static_policies() {
        let m = cruise_control_model();
        let faithful = translate(&m, &TranslateOptions::default()).unwrap();
        assert!(faithful
            .names
            .threads
            .iter()
            .all(|t| t.violation_def.is_some()));
        let compact = translate(
            &m,
            &TranslateOptions {
                compact: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(compact
            .names
            .threads
            .iter()
            .all(|t| t.violation_def.is_none()));
    }

    #[test]
    fn scoped_recorder_tags_the_translate_span() {
        // Under a request-scoped recorder (`obs::Recorder::scoped`) the
        // `translate` span parents under the serving layer's anchor and
        // carries the request tag alongside its inventory fields.
        let m = cruise_control_model();
        let rec = obs::Recorder::with_clock(Box::new(obs::FakeClock::new(1)));
        let anchor = rec.span("served.exec");
        let scoped = rec.scoped(&anchor, 9);
        translate(
            &m,
            &TranslateOptions {
                obs: scoped,
                ..Default::default()
            },
        )
        .unwrap();
        anchor.end();
        let run = rec.finish();
        let anchor_id = run.spans.iter().find(|s| s.name == "served.exec").unwrap().id;
        let span = run.spans.iter().find(|s| s.name == "translate").unwrap();
        assert_eq!(span.parent, Some(anchor_id));
        assert!(span.fields.contains(&("req".to_string(), 9)));
        assert!(span.fields.contains(&("threads".to_string(), 6)));
    }

    #[test]
    fn quantum_override_applies() {
        let m = cruise_control_model();
        let tm = translate(
            &m,
            &TranslateOptions {
                quantum: Some(TimeVal::ms(10)),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(tm.quantum_ps, TimeVal::ms(10).as_ps());
    }
}

