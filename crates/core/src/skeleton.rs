//! The thread skeleton of Fig. 4.
//!
//! The full semantic automaton of the AADL standard contains activation,
//! deactivation, finalization and recovery subprocesses; per §4.2, for
//! single-mode models — the only ones the paper's translation covers —
//! `ThreadActivate`/`ThreadDeactivate` are absent, and with instantaneous
//! initialization the skeleton reduces to the dispatch cycle:
//!
//! ```text
//! AwaitDispatch --dispatch?--> [ Compute ]Δ^deadline --done!--> AwaitDispatch
//!                                   │ timeout
//!                                   ▼
//!                               Violation (deadlocks the model)
//! ```
//!
//! * `AwaitDispatch` idles (time may pass) while offering the `dispatch?`
//!   event to its dispatcher.
//! * The computation runs inside a temporal scope bounded by the thread's
//!   deadline (Fig. 4's `computeDeadline` timeout into `Violation`); the
//!   scope's exception exit is the `done` event, returning to
//!   `AwaitDispatch`.
//! * Background threads are "dispatched immediately upon initialization"
//!   (§4.2, dashed edges of Fig. 4) and have no deadline: their computation
//!   runs unscoped and the thread halts after completion.
//!
//! In *compact* mode the skeleton scope is omitted — the dispatcher's own
//! deadline scope (Fig. 6) already induces the deadlock — trading the
//! faithful Fig. 4 structure for a smaller state space (the ablation of
//! experiment Q1b).

use aadl::instance::CompId;
use aadl::properties::DispatchProtocol;
use acsr::{act, choice, evt_recv, invoke, nil, scope, DefId, Env, Expr, Res, TimeBound};

use crate::compute::{build_compute, initial_compute, ComputeSpec};
use crate::names::{DefMeaning, NameMap};

/// Everything needed to generate one thread's skeleton.
pub struct SkeletonSpec<'a> {
    /// The compute-process specification (Fig. 5 inputs).
    pub compute: ComputeSpec<'a>,
    /// Dispatch protocol (background threads skip the deadline scope).
    pub dispatch_protocol: DispatchProtocol,
    /// The `dispatch` event received from the dispatcher.
    pub dispatch: acsr::Symbol,
    /// Deadline in quanta (`None` for background threads).
    pub deadline_q: Option<i64>,
    /// Generate the faithful Fig. 4 deadline scope (`true`) or rely on the
    /// dispatcher's deadline scope alone (`false`, compact mode).
    pub faithful_scope: bool,
    /// Shared idle definition (`Idle = {} : Idle`) for halted threads.
    pub idle_def: DefId,
}

/// Generated skeleton definitions for one thread.
pub struct SkeletonDefs {
    /// `AwaitDispatch_<stem>` — the skeleton's initial state.
    pub skel_def: DefId,
    /// `Compute_<stem>`.
    pub compute_def: DefId,
    /// `Preempted_<stem>`.
    pub preempted_def: DefId,
    /// `Violation_<stem>` when the faithful scope is generated.
    pub violation_def: Option<DefId>,
}

/// Declare and define the skeleton of a thread.
pub fn build_skeleton(
    env: &mut Env,
    nm: &mut NameMap,
    thread: CompId,
    stem: &str,
    mut spec: SkeletonSpec<'_>,
) -> SkeletonDefs {
    let skel_def = env.declare(&format!("AwaitDispatch_{stem}"), 0);
    let background = spec.dispatch_protocol == DispatchProtocol::Background;
    let scoped = spec.faithful_scope && spec.deadline_q.is_some() && !background;

    // Where control goes after `done!`: swallowed by the scope's exception
    // exit in faithful mode; explicit continuation otherwise.
    spec.compute.after_done = if scoped {
        nil()
    } else if background {
        invoke(spec.idle_def, [])
    } else {
        invoke(skel_def, [])
    };

    let (compute_def, preempted_def) = build_compute(env, nm, thread, stem, &spec.compute);
    let enter = initial_compute(compute_def, spec.compute.track_elapsed);

    let (computing, violation_def) = if scoped {
        let violation_def = env.define(&format!("Violation_{stem}"), 0, nil());
        nm.add_def(violation_def, DefMeaning::Violation(thread));
        let d = spec.deadline_q.expect("scoped implies deadline");
        (
            scope(
                enter,
                TimeBound::Finite(Expr::c(d)),
                Some((spec.compute.done, invoke(skel_def, []))),
                Some(invoke(violation_def, [])),
                None,
            ),
            Some(violation_def),
        )
    } else {
        (enter, None)
    };

    // AwaitDispatch = {} : AwaitDispatch + (dispatch?, 1) . computing
    env.set_body(
        skel_def,
        choice([
            act([] as [(Res, Expr); 0], invoke(skel_def, [])),
            evt_recv(spec.dispatch, 1, computing),
        ]),
    );

    SkeletonDefs {
        skel_def,
        compute_def,
        preempted_def,
        violation_def,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PrioSpec;
    use acsr::{par, prioritized_steps, restrict, steps, Label, Res, Symbol};

    fn make(
        stem: &str,
        cmin: i64,
        cmax: i64,
        deadline: Option<i64>,
        faithful: bool,
        protocol: DispatchProtocol,
        prio: &PrioSpec,
    ) -> (Env, NameMap, SkeletonDefs, Symbol, Symbol) {
        let mut env = Env::new();
        let mut nm = NameMap::default();
        let idle = env.declare("Idle", 0);
        env.set_body(idle, act([] as [(Res, Expr); 0], invoke(idle, [])));
        let dispatch = Symbol::new(&format!("dispatch_{stem}"));
        let done = Symbol::new(&format!("done_{stem}"));
        let spec = SkeletonSpec {
            compute: ComputeSpec {
                cpu: Res::new("cpu_skel"),
                prio,
                cmin_q: cmin,
                cmax_q: cmax,
                final_resources: vec![],
                shared_resources: vec![],
                sends: vec![],
                anytime_sends: vec![],
                done,
                after_done: nil(),
                track_elapsed: prio.needs_elapsed() || faithful,
                critical_section: None,
            },
            dispatch_protocol: protocol,
            dispatch,
            deadline_q: deadline,
            faithful_scope: faithful,
            idle_def: idle,
        };
        let defs = build_skeleton(&mut env, &mut nm, CompId(0), stem, spec);
        (env, nm, defs, dispatch, done)
    }

    #[test]
    fn await_dispatch_idles_and_accepts_dispatch() {
        let prio = PrioSpec::Static(2);
        let (env, _nm, defs, dispatch, _) = make(
            "s1",
            1,
            2,
            Some(5),
            true,
            DispatchProtocol::Periodic,
            &prio,
        );
        let p = invoke(defs.skel_def, []);
        let s = steps(&env, &p);
        assert_eq!(s.len(), 2);
        assert!(s.iter().any(|(l, _)| l.is_timed()));
        assert!(s
            .iter()
            .any(|(l, _)| matches!(l, Label::E { label, .. } if *label == dispatch)));
    }

    #[test]
    fn faithful_skeleton_violates_at_deadline() {
        // cmin = cmax = 3, deadline 2: can never finish ⇒ after the dispatch
        // the thread deadlocks within 2 quanta.
        let prio = PrioSpec::Static(2);
        let (env, nm, defs, _dispatch, _) = make(
            "s2",
            3,
            3,
            Some(2),
            true,
            DispatchProtocol::Periodic,
            &prio,
        );
        assert!(defs.violation_def.is_some());
        assert_eq!(
            nm.def(defs.violation_def.unwrap()),
            Some(DefMeaning::Violation(CompId(0)))
        );
        // Drive: dispatch, then keep taking the (unique prioritized) compute
        // step until stuck.
        let p = invoke(defs.skel_def, []);
        let s = steps(&env, &p);
        let (_, after_dispatch) = s
            .iter()
            .find(|(l, _)| matches!(l, Label::E { .. }))
            .unwrap();
        let mut cur = after_dispatch.clone();
        let mut quanta = 0;
        loop {
            let succs = prioritized_steps(&env, &cur);
            if succs.is_empty() {
                break;
            }
            assert!(succs[0].0.is_timed());
            cur = succs[0].1.clone();
            quanta += 1;
            assert!(quanta <= 2, "should deadlock by the deadline");
        }
        assert_eq!(quanta, 2);
    }

    #[test]
    fn done_returns_to_await_dispatch() {
        let prio = PrioSpec::Static(2);
        let (env, _nm, defs, dispatch, done) = make(
            "s3",
            1,
            1,
            Some(3),
            true,
            DispatchProtocol::Periodic,
            &prio,
        );
        // Pair the skeleton with a driver that dispatches then waits for done.
        let driver = acsr::evt_send(
            dispatch,
            1,
            choice([
                act([] as [(Res, Expr); 0], nil()),
                // after one quantum: accept done then stop
            ]),
        );
        let _ = driver;
        // Simpler: drive by hand. dispatch…
        let p = invoke(defs.skel_def, []);
        let s = steps(&env, &p);
        let (_, in_scope) = s
            .iter()
            .find(|(l, _)| matches!(l, Label::E { .. }))
            .unwrap();
        // one (final) compute quantum
        let s = prioritized_steps(&env, in_scope);
        let (_, after_final) = s.iter().find(|(l, _)| l.is_timed()).unwrap();
        // done! exits the scope back to AwaitDispatch
        let s = steps(&env, after_final);
        assert_eq!(s.len(), 1);
        assert!(matches!(&s[0].0, Label::E { label, .. } if *label == done));
        assert_eq!(s[0].1, invoke(defs.skel_def, []));
    }

    #[test]
    fn compact_skeleton_has_no_scope_and_returns_via_chain() {
        let prio = PrioSpec::Static(2);
        let (env, _nm, defs, _dispatch, _done) = make(
            "s4",
            1,
            1,
            Some(3),
            false,
            DispatchProtocol::Periodic,
            &prio,
        );
        assert!(defs.violation_def.is_none());
        let p = invoke(defs.skel_def, []);
        let s = steps(&env, &p);
        let (_, computing) = s
            .iter()
            .find(|(l, _)| matches!(l, Label::E { .. }))
            .unwrap();
        let s = prioritized_steps(&env, computing);
        let (_, after_final) = s.iter().find(|(l, _)| l.is_timed()).unwrap();
        let s = steps(&env, after_final);
        // done! leads straight back to AwaitDispatch.
        assert_eq!(s[0].1, invoke(defs.skel_def, []));
    }

    #[test]
    fn background_thread_halts_after_completion() {
        let prio = PrioSpec::Static(1);
        let (env, _nm, defs, dispatch, done) = make(
            "s5",
            2,
            2,
            None,
            true, // requested faithful, but background never gets a scope
            DispatchProtocol::Background,
            &prio,
        );
        assert!(defs.violation_def.is_none());
        // Compose with a background dispatcher surrogate: dispatch now, then
        // idle forever, accepting done.
        let mut env2 = env.clone();
        let drv_idle = env2.declare("DrvIdle", 0);
        env2.set_body(
            drv_idle,
            choice([
                act([] as [(Res, Expr); 0], invoke(drv_idle, [])),
                evt_recv(done, 1, invoke(drv_idle, [])),
            ]),
        );
        let drv = acsr::evt_send(dispatch, 1, invoke(drv_idle, []));
        let sys = restrict(par([invoke(defs.skel_def, []), drv]), [dispatch, done]);
        // Explore: must be deadlock free (runs once, then idles forever).
        let ex = versa::explore(&env2, &sys, &versa::Options::default());
        assert!(ex.deadlock_free(), "background thread should halt cleanly");
    }
}
