//! The discrete-time abstraction of §4.1.
//!
//! > We assume that time is discrete. That is, time is partitioned into
//! > fixed-size scheduling quanta and all scheduling decisions are made at
//! > quantum boundaries. […] As a result of this assumption, analysis will
//! > overapproximate timing behavior of a thread and may result in false
//! > reports of deadline violations. Precision of the timing analysis can be
//! > improved by making scheduling quanta smaller, which tends to increase
//! > the size of the state space that needs to be explored.
//!
//! The quantum is taken from the extension property `Scheduling_Quantum` on
//! the root instance when present, and otherwise defaults to the GCD of every
//! timing property in the model (the finest quantum that represents all
//! values exactly). Conversions round **conservatively**: worst-case
//! execution times round up, best-case execution times round down (widening
//! the nondeterministic execution-time window), deadlines round down, and
//! periods round down (more frequent dispatches) — so a "schedulable" verdict
//! at any quantum is trustworthy, while an "unschedulable" verdict at a
//! coarse quantum may be a false report that a finer quantum refutes
//! (experiment Q1 measures exactly this trade-off).

use aadl::instance::{CompId, InstanceModel};
use aadl::properties::{names, DispatchProtocol, TimeVal};

use crate::translate::TranslateError;

/// Gcd helper over picosecond magnitudes.
fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Derive the scheduling quantum (in picoseconds) for a model: the
/// `Scheduling_Quantum` property of the root instance if present, otherwise
/// the GCD of all periods, deadlines and execution-time bounds of all
/// threads, devices and latency bounds.
pub fn derive_quantum(model: &InstanceModel) -> Result<i64, TranslateError> {
    let root = model.component(model.root());
    if let Some(q) = root
        .properties
        .get(names::SCHEDULING_QUANTUM)
        .and_then(|v| v.as_time())
    {
        if q.as_ps() <= 0 {
            return Err(TranslateError::Quantum(format!(
                "Scheduling_Quantum must be positive, got {q}"
            )));
        }
        return Ok(q.as_ps());
    }
    let mut g: i64 = 0;
    let mut fold = |t: TimeVal| g = gcd(g, t.as_ps());
    for c in model.components() {
        if let Some(p) = c.properties.period() {
            fold(p);
        }
        if let Some(d) = c.properties.compute_deadline() {
            fold(d);
        }
        if let Some((lo, hi)) = c.properties.compute_execution_time() {
            fold(lo);
            fold(hi);
        }
        if let Some(cs) = c.properties.critical_section_time() {
            fold(cs);
        }
    }
    // Critical-section times on access connections (§7 extension) count too:
    // a quantum that mis-rounds the section length would move the blocking
    // window the analysis is meant to expose.
    for acc in &model.accesses {
        if let Some(cs) = acc.properties.critical_section_time() {
            fold(cs);
        }
    }
    if g <= 0 {
        return Err(TranslateError::Quantum(
            "no timing properties found to derive a scheduling quantum from".into(),
        ));
    }
    Ok(g)
}

/// A thread's timing parameters, converted to quanta.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadTiming {
    /// Dispatch protocol.
    pub dispatch: DispatchProtocol,
    /// Period / minimum separation in quanta (periodic and sporadic threads).
    pub period_q: Option<i64>,
    /// Best-case execution time in quanta (≥ 1).
    pub cmin_q: i64,
    /// Worst-case execution time in quanta (≥ cmin).
    pub cmax_q: i64,
    /// Deadline in quanta (absent only for background threads).
    pub deadline_q: Option<i64>,
    /// Explicit priority (HPF).
    pub priority: Option<i64>,
}

fn ceil_div(a: i64, b: i64) -> i64 {
    (a + b - 1) / b
}

/// Convert a thread's timing properties to quanta with the conservative
/// rounding documented in the module docs. The §4.1 assumptions must have
/// been validated beforehand; missing properties are reported as
/// [`TranslateError::Unsupported`] rather than panicking.
pub fn thread_timing(
    model: &InstanceModel,
    thread: CompId,
    quantum_ps: i64,
) -> Result<ThreadTiming, TranslateError> {
    let t = model.component(thread);
    let path = t.display_path();
    let dispatch = t.properties.dispatch_protocol().ok_or_else(|| {
        TranslateError::Unsupported(format!("thread `{path}` has no Dispatch_Protocol"))
    })?;
    let (lo, hi) = t.properties.compute_execution_time().ok_or_else(|| {
        TranslateError::Unsupported(format!("thread `{path}` has no Compute_Execution_Time"))
    })?;
    let cmin_q = (lo.as_ps() / quantum_ps).max(1);
    let cmax_q = ceil_div(hi.as_ps(), quantum_ps).max(cmin_q);

    let deadline_q = match t.properties.compute_deadline() {
        Some(d) => Some((d.as_ps() / quantum_ps).max(1)),
        None if dispatch == DispatchProtocol::Background => None,
        None => {
            return Err(TranslateError::Unsupported(format!(
                "thread `{path}` has no Compute_Deadline"
            )))
        }
    };
    let period_q = t
        .properties
        .period()
        .map(|p| (p.as_ps() / quantum_ps).max(1));
    if matches!(
        dispatch,
        DispatchProtocol::Periodic | DispatchProtocol::Sporadic
    ) && period_q.is_none()
    {
        return Err(TranslateError::Unsupported(format!(
            "{dispatch} thread `{path}` has no Period"
        )));
    }
    // The dispatcher of Fig. 6 nests the deadline scope inside the period
    // scope, which requires d ≤ p.
    if let (Some(d), Some(p)) = (deadline_q, period_q) {
        if dispatch != DispatchProtocol::Aperiodic && d > p {
            return Err(TranslateError::Unsupported(format!(
                "thread `{path}`: Compute_Deadline ({d} quanta) exceeds Period ({p} quanta); \
                 the Fig. 6 dispatcher requires deadline ≤ period"
            )));
        }
    }
    Ok(ThreadTiming {
        dispatch,
        period_q,
        cmin_q,
        cmax_q,
        deadline_q,
        priority: t.properties.priority(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadl::builder::PackageBuilder;
    use aadl::instance::instantiate;
    use aadl::model::Category;
    use aadl::properties::{PropertyValue, TimeUnit};

    fn one_thread(period_ms: i64, lo_ms: i64, hi_ms: i64, dl_ms: i64) -> InstanceModel {
        let pkg = PackageBuilder::new("Q")
            .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
            .periodic_thread(
                "T",
                TimeVal::ms(period_ms),
                (TimeVal::ms(lo_ms), TimeVal::ms(hi_ms)),
                TimeVal::ms(dl_ms),
            )
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("t", Category::Thread, "T")
                    .bind_processor("t", "cpu")
            })
            .build();
        instantiate(&pkg, "Top.impl").unwrap()
    }

    #[test]
    fn quantum_is_gcd_of_timing() {
        let m = one_thread(50, 5, 10, 50);
        let q = derive_quantum(&m).unwrap();
        assert_eq!(q, TimeVal::ms(5).as_ps());
    }

    #[test]
    fn explicit_quantum_overrides_gcd() {
        let pkg = PackageBuilder::new("Q2")
            .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
            .periodic_thread(
                "T",
                TimeVal::ms(50),
                (TimeVal::ms(5), TimeVal::ms(10)),
                TimeVal::ms(50),
            )
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("t", Category::Thread, "T")
                    .bind_processor("t", "cpu")
                    .prop(
                        names::SCHEDULING_QUANTUM,
                        PropertyValue::Time(TimeVal::ms(10)),
                    )
            })
            .build();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        assert_eq!(derive_quantum(&m).unwrap(), TimeVal::ms(10).as_ps());
    }

    #[test]
    fn thread_timing_converts_exactly_at_fine_quantum() {
        let m = one_thread(50, 5, 10, 50);
        let tid = m.find("t").unwrap();
        let tt = thread_timing(&m, tid, TimeVal::ms(5).as_ps()).unwrap();
        assert_eq!(tt.period_q, Some(10));
        assert_eq!(tt.cmin_q, 1);
        assert_eq!(tt.cmax_q, 2);
        assert_eq!(tt.deadline_q, Some(10));
    }

    #[test]
    fn coarse_quantum_rounds_conservatively() {
        // quantum 4 ms: period 50 → 12 (floor), cmin 5 → 1 (floor),
        // cmax 10 → 3 (ceil), deadline 50 → 12 (floor).
        let m = one_thread(50, 5, 10, 50);
        let tid = m.find("t").unwrap();
        let tt = thread_timing(&m, tid, TimeVal::new(4, TimeUnit::Ms).as_ps()).unwrap();
        assert_eq!(tt.period_q, Some(12));
        assert_eq!(tt.cmin_q, 1);
        assert_eq!(tt.cmax_q, 3);
        assert_eq!(tt.deadline_q, Some(12));
    }

    #[test]
    fn tiny_execution_time_still_takes_one_quantum() {
        let m = one_thread(50, 5, 10, 50);
        let tid = m.find("t").unwrap();
        // Huge quantum: everything collapses but stays ≥ 1 / ordered.
        let tt = thread_timing(&m, tid, TimeVal::ms(40).as_ps()).unwrap();
        assert_eq!(tt.cmin_q, 1);
        assert_eq!(tt.cmax_q, 1);
        assert_eq!(tt.period_q, Some(1));
        assert_eq!(tt.deadline_q, Some(1));
    }

    #[test]
    fn deadline_beyond_period_is_rejected() {
        let m = one_thread(50, 5, 10, 80); // d > p
        let tid = m.find("t").unwrap();
        let err = thread_timing(&m, tid, TimeVal::ms(5).as_ps()).unwrap_err();
        assert!(matches!(err, TranslateError::Unsupported(_)));
    }

    #[test]
    fn zero_quantum_rejected() {
        let pkg = PackageBuilder::new("Z")
            .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
            .periodic_thread(
                "T",
                TimeVal::ms(50),
                (TimeVal::ms(5), TimeVal::ms(10)),
                TimeVal::ms(50),
            )
            .system("Top", |s| s)
            .implementation("Top.impl", Category::System, |i| {
                i.sub("cpu", Category::Processor, "cpu_t")
                    .sub("t", Category::Thread, "T")
                    .bind_processor("t", "cpu")
                    .prop(
                        names::SCHEDULING_QUANTUM,
                        PropertyValue::Time(TimeVal::ms(0)),
                    )
            })
            .build();
        let m = instantiate(&pkg, "Top.impl").unwrap();
        assert!(derive_quantum(&m).is_err());
    }
}
