//! Byte-for-byte snapshot of the JSON report under the fake clock.
//!
//! The report format is a contract with external consumers (the benchmark
//! trajectory collects `BENCH_*.json`); any change to field order, casing,
//! indentation or numeric rendering must show up here as a deliberate diff.

use obs::{FakeClock, Json, JsonLinesSink, Recorder, Report, Sink};

/// A fixed instrumentation sequence, as the pipeline would produce it.
fn record() -> Recorder {
    let rec = Recorder::with_clock(Box::new(FakeClock::new(1_000)));
    let translate = rec.span("translate");
    translate.set("threads", 2);
    translate.end();
    let explore = rec.span("explore");
    for (level, frontier) in [(1i64, 1i64), (2, 2)] {
        let lvl = explore.child("explore.level");
        lvl.set("level", level);
        lvl.set("frontier", frontier);
        lvl.end();
    }
    explore.set("states", 3);
    explore.end();
    rec.counter("explore.dedup_hits").add(1);
    rec.gauge("explore.states").set(3);
    rec.histogram("translate.skeleton_size").observe(40);
    rec.event(
        "verdict",
        [
            ("schedulable", Json::Bool(true)),
            ("truncated", Json::Bool(false)),
        ],
    );
    rec
}

const EXPECTED_REPORT: &str = r#"{
  "schema": "aadlsched-metrics",
  "version": 6,
  "run_id": "e0721772aeb595b6",
  "tool": "snapshot-test",
  "duration_ns": 10000,
  "spans": [
    {
      "id": 0,
      "parent": null,
      "name": "translate",
      "start_ns": 1000,
      "duration_ns": 1000,
      "fields": {
        "threads": 2
      }
    },
    {
      "id": 1,
      "parent": null,
      "name": "explore",
      "start_ns": 3000,
      "duration_ns": 5000,
      "fields": {
        "states": 3
      }
    },
    {
      "id": 2,
      "parent": 1,
      "name": "explore.level",
      "start_ns": 4000,
      "duration_ns": 1000,
      "fields": {
        "level": 1,
        "frontier": 1
      }
    },
    {
      "id": 3,
      "parent": 1,
      "name": "explore.level",
      "start_ns": 6000,
      "duration_ns": 1000,
      "fields": {
        "level": 2,
        "frontier": 2
      }
    }
  ],
  "events": [
    {
      "ts_ns": 9000,
      "name": "verdict",
      "schedulable": true,
      "truncated": false
    }
  ],
  "counters": {
    "explore.dedup_hits": 1
  },
  "gauges": {
    "explore.states": {
      "value": 3,
      "peak": 3
    }
  },
  "histograms": {
    "translate.skeleton_size": {
      "count": 1,
      "sum": 40,
      "max": 40,
      "p50": 40,
      "p90": 40,
      "p99": 40,
      "buckets": [
        [
          6,
          1
        ]
      ]
    }
  }
}
"#;

#[test]
fn report_is_byte_stable_under_the_fake_clock() {
    let rec = record();
    let mut report = Report::new(&obs::run_id(&[b"snapshot", b"inputs"]), "snapshot-test");
    report.attach_run(&rec.finish());
    assert_eq!(report.to_json(), EXPECTED_REPORT);
}

#[test]
fn two_identical_runs_render_identically() {
    let render = |rec: Recorder| {
        let mut report = Report::new("fixed", "snapshot-test");
        report.attach_run(&rec.finish());
        report.to_json()
    };
    assert_eq!(render(record()), render(record()));

    // The JSON-lines stream is deterministic too.
    let jsonl = |rec: Recorder| {
        let mut out = Vec::new();
        JsonLinesSink.emit(&rec.finish(), &mut out).unwrap();
        out
    };
    assert_eq!(jsonl(record()), jsonl(record()));
}
