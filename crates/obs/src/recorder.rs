//! The central recorder: span/metric/event registry behind a cheap handle.
//!
//! A [`Recorder`] is either *disabled* (the default — every operation is a
//! branch on `None`, no allocation, nothing observable in benchmarks) or
//! *enabled* (an `Arc`-shared store: atomic instruments, `Mutex`-guarded
//! span and event logs, and an optional rate-limited progress emitter).
//!
//! ## Naming conventions (see DESIGN.md, "Observability")
//!
//! Span and metric names are lowercase, dot-separated, rooted at the
//! pipeline stage: `translate`, `explore`, `explore.level`, `analysis`,
//! `diagnose.raise`; instruments extend the stage name
//! (`explore.dedup_hits`, `explore.lock_contention`,
//! `translate.skeleton_size`). Per-worker instruments interpose the worker
//! index: `explore.worker.3.expanded`.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use crate::clock::{Clock, MonotonicClock};
use crate::json::Json;
use crate::metrics::{Counter, Gauge, GaugeCell, Histogram, HistogramCell, HistogramSnapshot};

/// One recorded (possibly still open) span.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Dense span id (index into the span log; root spans first-come).
    pub id: u64,
    /// Parent span id, if this span was opened via [`Span::child`].
    pub parent: Option<u64>,
    /// Dot-separated span name.
    pub name: String,
    /// Clock reading at open.
    pub start_ns: u64,
    /// Clock reading at close (`None` while open).
    pub end_ns: Option<u64>,
    /// Integer fields attached with [`Span::set`], in attachment order.
    pub fields: Vec<(String, i64)>,
}

/// One instantaneous event with structured fields.
#[derive(Clone, Debug)]
pub struct EventRecord {
    /// Clock reading at emission.
    pub ts_ns: u64,
    /// Dot-separated event name.
    pub name: String,
    /// Structured payload, in attachment order.
    pub fields: Vec<(String, Json)>,
}

/// Everything one run recorded, in deterministic order: metrics sorted by
/// name (the registry is a `BTreeMap`), spans and events in creation order.
#[derive(Clone, Debug, Default)]
pub struct RunData {
    /// Clock reading when the recorder was created.
    pub start_ns: u64,
    /// Clock reading when [`Recorder::finish`] was called.
    pub end_ns: u64,
    /// Spans discarded because the span log hit its cap (see
    /// [`Recorder::with_span_cap`]); `0` when uncapped.
    pub spans_dropped: u64,
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, current, peak)` for every gauge, sorted by name.
    pub gauges: Vec<(String, i64, i64)>,
    /// `(name, snapshot)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// All spans, in open order.
    pub spans: Vec<SpanRecord>,
    /// All events, in emission order.
    pub events: Vec<EventRecord>,
}

struct ProgressState {
    /// Emit the next line when the state count reaches this threshold; the
    /// threshold doubles after each line, so output volume is logarithmic in
    /// the state count and — because it depends only on the count, never on
    /// wall-clock — deterministic.
    next: u64,
}

struct Inner {
    clock: Box<dyn Clock>,
    start_ns: u64,
    counters: Mutex<std::collections::BTreeMap<String, Arc<std::sync::atomic::AtomicU64>>>,
    gauges: Mutex<std::collections::BTreeMap<String, Arc<GaugeCell>>>,
    histograms: Mutex<std::collections::BTreeMap<String, Arc<HistogramCell>>>,
    spans: Mutex<Vec<SpanRecord>>,
    events: Mutex<Vec<EventRecord>>,
    progress: Option<Mutex<ProgressState>>,
    /// Hard cap on the span log; spans opened past it are silently dropped
    /// (counted in `spans_dropped`) so a long-lived process cannot grow the
    /// log without bound. Metrics are fixed-size and keep recording.
    span_cap: usize,
    spans_dropped: std::sync::atomic::AtomicU64,
}

/// A request scope a recorder handle can carry (see [`Recorder::scoped`]):
/// spans opened through the scoped handle default-parent under the scope's
/// anchor span and are tagged with the request sequence number.
#[derive(Clone)]
struct Scope {
    parent: u64,
    req: i64,
}

/// Handle to the observability store; clone freely (it is an `Arc` or
/// nothing). The [`Default`] handle is disabled.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
    scope: Option<Scope>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.inner.is_some() {
            "Recorder(enabled)"
        } else {
            "Recorder(disabled)"
        })
    }
}

/// First progress line fires when the exploration reaches this many states;
/// subsequent lines at each doubling.
pub const PROGRESS_FIRST_THRESHOLD: u64 = 64;

impl Recorder {
    /// The no-op recorder: every instrument it hands out is inert.
    pub fn disabled() -> Recorder {
        Recorder {
            inner: None,
            scope: None,
        }
    }

    /// An enabled recorder on the production monotonic clock.
    pub fn enabled() -> Recorder {
        Recorder::with_clock(Box::new(MonotonicClock::new()))
    }

    /// An enabled recorder on an explicit clock (use
    /// [`FakeClock`](crate::FakeClock) for byte-stable reports).
    pub fn with_clock(clock: Box<dyn Clock>) -> Recorder {
        let start_ns = clock.now_ns();
        Recorder {
            inner: Some(Arc::new(Inner {
                clock,
                start_ns,
                counters: Mutex::new(Default::default()),
                gauges: Mutex::new(Default::default()),
                histograms: Mutex::new(Default::default()),
                spans: Mutex::new(Vec::new()),
                events: Mutex::new(Vec::new()),
                progress: None,
                span_cap: usize::MAX,
                spans_dropped: std::sync::atomic::AtomicU64::new(0),
            })),
            scope: None,
        }
    }

    /// Cap the span log at `cap` entries. Spans opened past the cap are
    /// dropped (their handles are inert) and counted in
    /// [`RunData::spans_dropped`]; counters, gauges and histograms — all
    /// fixed-size — keep recording. Long-lived processes (the serving
    /// daemon) use this so per-request tracing cannot grow memory without
    /// bound. Call before handing out clones, like
    /// [`Recorder::with_progress`].
    pub fn with_span_cap(mut self, cap: usize) -> Recorder {
        if let Some(inner) = self.inner.take() {
            let inner = Arc::try_unwrap(inner).unwrap_or_else(rebuild_inner);
            self.inner = Some(Arc::new(Inner {
                span_cap: cap,
                ..inner
            }));
        }
        self
    }

    /// Turn on rate-limited progress reporting (stderr lines emitted by
    /// [`Recorder::progress`], doubling thresholds from
    /// [`PROGRESS_FIRST_THRESHOLD`]). Call before handing the recorder to the
    /// exploration.
    pub fn with_progress(mut self) -> Recorder {
        if let Some(inner) = self.inner.take() {
            // The recorder was just built and has a single owner; rebuild the
            // Inner with progress armed.
            let inner = Arc::try_unwrap(inner).unwrap_or_else(rebuild_inner);
            self.inner = Some(Arc::new(Inner {
                progress: Some(Mutex::new(ProgressState {
                    next: PROGRESS_FIRST_THRESHOLD,
                })),
                ..inner
            }));
        }
        self
    }

    /// Whether instruments handed out by this recorder actually record.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Get-or-create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            None => Counter(None),
            Some(inner) => {
                let mut reg = inner.counters.lock().expect("counter registry");
                Counter(Some(Arc::clone(
                    reg.entry(name.to_string()).or_default(),
                )))
            }
        }
    }

    /// Get-or-create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            None => Gauge(None),
            Some(inner) => {
                let mut reg = inner.gauges.lock().expect("gauge registry");
                Gauge(Some(Arc::clone(reg.entry(name.to_string()).or_default())))
            }
        }
    }

    /// Get-or-create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            None => Histogram(None),
            Some(inner) => {
                let mut reg = inner.histograms.lock().expect("histogram registry");
                Histogram(Some(Arc::clone(
                    reg.entry(name.to_string()).or_default(),
                )))
            }
        }
    }

    /// Open a root span. Close it with [`Span::end`]; fields with
    /// [`Span::set`]. Under a scoped handle (see [`Recorder::scoped`]) the
    /// span parents under the scope's anchor instead of being a root.
    pub fn span(&self, name: &str) -> Span {
        self.open_span(name, None, None)
    }

    /// Open a span with an explicit start timestamp instead of reading the
    /// clock — for callers that already stamped the moment of interest
    /// (e.g. the serving layer stamps request receipt once and builds the
    /// whole stage tree from stored stamps, keeping the number of clock
    /// reads per request fixed and fake-clock runs byte-stable).
    pub fn span_at(&self, name: &str, start_ns: u64) -> Span {
        self.open_span(name, None, Some(start_ns))
    }

    /// Read the recorder's clock (`0` when disabled). This is the clock the
    /// span log is stamped with; pair with [`Recorder::span_at`] /
    /// [`Span::end_at`].
    pub fn now_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.now_ns())
    }

    /// The clock reading when the recorder was created (`0` when disabled).
    pub fn start_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.start_ns)
    }

    /// A clone of this handle whose root spans parent under `anchor` and
    /// carry a `req` field — the request-scoping hook of the serving layer:
    /// hand the engine a scoped clone and every span the engine opens
    /// (`translate`, `explore`, `explore.level`, `diagnose.raise`, …) lands
    /// in that request's span tree, tagged with its request sequence
    /// number, without the engine knowing anything about requests. Returns
    /// an unscoped clone when the anchor span is inert (disabled recorder
    /// or a span dropped by the cap).
    pub fn scoped(&self, anchor: &Span, req: i64) -> Recorder {
        let mut rec = self.clone();
        rec.scope = anchor.id.map(|parent| Scope { parent, req });
        rec
    }

    /// Rebuild a [`Span`] handle from a span id previously obtained with
    /// [`Span::id`]. The id must come from this recorder; handing back an
    /// id from another recorder attaches children to an unrelated span.
    pub fn span_handle(&self, id: u64) -> Span {
        Span {
            rec: self.clone(),
            id: self.inner.is_some().then_some(id),
        }
    }

    fn open_span(&self, name: &str, parent: Option<u64>, start: Option<u64>) -> Span {
        match &self.inner {
            None => Span {
                rec: Recorder::disabled(),
                id: None,
            },
            Some(inner) => {
                let parent = parent.or(self.scope.as_ref().map(|s| s.parent));
                let start_ns = start.unwrap_or_else(|| inner.clock.now_ns());
                let mut spans = inner.spans.lock().expect("span log");
                if spans.len() >= inner.span_cap {
                    drop(spans);
                    inner.spans_dropped.fetch_add(1, Ordering::Relaxed);
                    return Span {
                        rec: Recorder::disabled(),
                        id: None,
                    };
                }
                let id = spans.len() as u64;
                let fields = match &self.scope {
                    Some(s) => vec![("req".to_string(), s.req)],
                    None => Vec::new(),
                };
                spans.push(SpanRecord {
                    id,
                    parent,
                    name: name.to_string(),
                    start_ns,
                    end_ns: None,
                    fields,
                });
                Span {
                    rec: self.clone(),
                    id: Some(id),
                }
            }
        }
    }

    /// Emit an instantaneous structured event.
    pub fn event(&self, name: &str, fields: impl IntoIterator<Item = (&'static str, Json)>) {
        if let Some(inner) = &self.inner {
            let ts_ns = inner.clock.now_ns();
            let rec = EventRecord {
                ts_ns,
                name: name.to_string(),
                fields: fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            };
            inner.events.lock().expect("event log").push(rec);
        }
    }

    /// Progress hook for long explorations: when progress reporting is armed
    /// (see [`Recorder::with_progress`]) and `states` has crossed the next
    /// doubling threshold, emit one stderr line. Rate limiting is purely by
    /// state count, so the set of lines a given exploration produces is
    /// deterministic.
    pub fn progress(&self, states: u64, level: u64, frontier: u64) {
        if let Some(inner) = &self.inner {
            if let Some(progress) = &inner.progress {
                let mut p = progress.lock().expect("progress state");
                if states >= p.next {
                    while p.next <= states {
                        p.next *= 2;
                    }
                    eprintln!(
                        "progress: {states} states, level {level}, frontier {frontier}"
                    );
                }
            }
        }
    }

    /// Snapshot the metric registries only — counters, gauges and
    /// histograms in name order — without reading the clock or touching the
    /// span/event logs. This is what the daemon's `stats` wire command
    /// renders: because no clock is read and nothing is mutated, two
    /// consecutive snapshots with no traffic in between are byte-identical
    /// even under the real clock.
    pub fn metrics_data(&self) -> RunData {
        match &self.inner {
            None => RunData::default(),
            Some(inner) => RunData {
                start_ns: inner.start_ns,
                end_ns: inner.start_ns,
                spans_dropped: inner.spans_dropped.load(Ordering::Relaxed),
                counters: inner
                    .counters
                    .lock()
                    .expect("counter registry")
                    .iter()
                    .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                    .collect(),
                gauges: inner
                    .gauges
                    .lock()
                    .expect("gauge registry")
                    .iter()
                    .map(|(k, g)| {
                        (
                            k.clone(),
                            g.value.load(Ordering::Relaxed),
                            g.peak.load(Ordering::Relaxed),
                        )
                    })
                    .collect(),
                histograms: inner
                    .histograms
                    .lock()
                    .expect("histogram registry")
                    .iter()
                    .map(|(k, h)| (k.clone(), Histogram(Some(Arc::clone(h))).snapshot()))
                    .collect(),
                spans: Vec::new(),
                events: Vec::new(),
            },
        }
    }

    /// Close out the run: read the final clock and snapshot everything in
    /// deterministic order.
    pub fn finish(&self) -> RunData {
        match &self.inner {
            None => RunData::default(),
            Some(inner) => RunData {
                start_ns: inner.start_ns,
                end_ns: inner.clock.now_ns(),
                spans_dropped: inner.spans_dropped.load(Ordering::Relaxed),
                counters: inner
                    .counters
                    .lock()
                    .expect("counter registry")
                    .iter()
                    .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                    .collect(),
                gauges: inner
                    .gauges
                    .lock()
                    .expect("gauge registry")
                    .iter()
                    .map(|(k, g)| {
                        (
                            k.clone(),
                            g.value.load(Ordering::Relaxed),
                            g.peak.load(Ordering::Relaxed),
                        )
                    })
                    .collect(),
                histograms: inner
                    .histograms
                    .lock()
                    .expect("histogram registry")
                    .iter()
                    .map(|(k, h)| (k.clone(), Histogram(Some(Arc::clone(h))).snapshot()))
                    .collect(),
                spans: inner.spans.lock().expect("span log").clone(),
                events: inner.events.lock().expect("event log").clone(),
            },
        }
    }
}

/// Rebuild an [`Inner`] whose `Arc` still has other owners (the
/// `with_*` builders are meant to run before clones are handed out, but
/// must stay correct if they do not).
fn rebuild_inner(arc: Arc<Inner>) -> Inner {
    Inner {
        clock: Box::new(MonotonicClock::new()),
        start_ns: arc.start_ns,
        counters: Mutex::new(arc.counters.lock().unwrap().clone()),
        gauges: Mutex::new(arc.gauges.lock().unwrap().clone()),
        histograms: Mutex::new(arc.histograms.lock().unwrap().clone()),
        spans: Mutex::new(arc.spans.lock().unwrap().clone()),
        events: Mutex::new(arc.events.lock().unwrap().clone()),
        progress: None,
        span_cap: arc.span_cap,
        spans_dropped: std::sync::atomic::AtomicU64::new(
            arc.spans_dropped.load(Ordering::Relaxed),
        ),
    }
}

/// An open span; hierarchical via [`Span::child`]. Spans are closed
/// explicitly with [`Span::end`] (dropping an open span leaves `end_ns`
/// empty, which the sinks render as an unclosed span rather than guessing a
/// duration).
#[derive(Debug)]
pub struct Span {
    rec: Recorder,
    id: Option<u64>,
}

impl Span {
    /// Open a child span.
    pub fn child(&self, name: &str) -> Span {
        match self.id {
            None => Span {
                rec: Recorder::disabled(),
                id: None,
            },
            Some(id) => self.rec.open_span(name, Some(id), None),
        }
    }

    /// Open a child span with an explicit start timestamp (no clock read);
    /// see [`Recorder::span_at`].
    pub fn child_at(&self, name: &str, start_ns: u64) -> Span {
        match self.id {
            None => Span {
                rec: Recorder::disabled(),
                id: None,
            },
            Some(id) => self.rec.open_span(name, Some(id), Some(start_ns)),
        }
    }

    /// This span's id in the recorder's span log (`None` for an inert
    /// handle). Feed it to [`Recorder::span_handle`] to rebuild a handle in
    /// another thread.
    pub fn id(&self) -> Option<u64> {
        self.id
    }

    /// Attach an integer field (last write wins per key at render time; keys
    /// are kept in attachment order).
    pub fn set(&self, key: &str, value: i64) {
        if let (Some(id), Some(inner)) = (self.id, &self.rec.inner) {
            let mut spans = inner.spans.lock().expect("span log");
            let rec = &mut spans[id as usize];
            if let Some(slot) = rec.fields.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                rec.fields.push((key.to_string(), value));
            }
        }
    }

    /// Close the span, stamping its end time.
    pub fn end(self) {
        if let (Some(id), Some(inner)) = (self.id, &self.rec.inner) {
            let end = inner.clock.now_ns();
            let mut spans = inner.spans.lock().expect("span log");
            spans[id as usize].end_ns = Some(end);
        }
    }

    /// Close the span at an explicit end timestamp (no clock read); see
    /// [`Recorder::span_at`].
    pub fn end_at(self, end_ns: u64) {
        if let (Some(id), Some(inner)) = (self.id, &self.rec.inner) {
            let mut spans = inner.spans.lock().expect("span log");
            spans[id as usize].end_ns = Some(end_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::FakeClock;

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        let span = rec.span("explore");
        let child = span.child("explore.level");
        child.set("frontier", 3);
        child.end();
        span.end();
        rec.event("verdict", [("schedulable", Json::Bool(true))]);
        rec.counter("c").inc();
        let run = rec.finish();
        assert!(run.spans.is_empty());
        assert!(run.events.is_empty());
        assert!(run.counters.is_empty());
    }

    #[test]
    fn spans_nest_and_time_deterministically() {
        let rec = Recorder::with_clock(Box::new(FakeClock::new(10)));
        // Clock reads: start=0, span open=10, child open=20, child end=30,
        // span end=40, finish=50.
        let span = rec.span("explore");
        let child = span.child("explore.level");
        child.set("frontier", 5);
        child.set("frontier", 7); // overwrite, not duplicate
        child.end();
        span.end();
        let run = rec.finish();
        assert_eq!(run.start_ns, 0);
        assert_eq!(run.end_ns, 50);
        assert_eq!(run.spans.len(), 2);
        assert_eq!(run.spans[0].name, "explore");
        assert_eq!(run.spans[0].start_ns, 10);
        assert_eq!(run.spans[0].end_ns, Some(40));
        assert_eq!(run.spans[1].parent, Some(0));
        assert_eq!(run.spans[1].fields, vec![("frontier".to_string(), 7)]);
    }

    #[test]
    fn metrics_snapshot_in_name_order() {
        let rec = Recorder::with_clock(Box::new(FakeClock::new(1)));
        rec.counter("z").add(1);
        rec.counter("a").add(2);
        rec.gauge("g").set(9);
        rec.histogram("h").observe(3);
        let run = rec.finish();
        assert_eq!(
            run.counters,
            vec![("a".to_string(), 2), ("z".to_string(), 1)]
        );
        assert_eq!(run.gauges, vec![("g".to_string(), 9, 9)]);
        assert_eq!(run.histograms[0].0, "h");
        assert_eq!(run.histograms[0].1.count, 1);
    }

    #[test]
    fn counter_handles_alias_by_name() {
        let rec = Recorder::enabled();
        let a = rec.counter("same");
        let b = rec.counter("same");
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
    }

    #[test]
    fn progress_thresholds_double() {
        // No assertion on stderr contents (captured by the harness); this
        // exercises the threshold arithmetic for panics / infinite loops.
        let rec = Recorder::enabled().with_progress();
        for states in [1u64, 63, 64, 65, 127, 128, 1024, 1_000_000] {
            rec.progress(states, 1, 1);
        }
    }

    #[test]
    fn scoped_recorder_parents_and_tags_root_spans() {
        let rec = Recorder::with_clock(Box::new(FakeClock::new(10)));
        let anchor = rec.span("served.exec");
        let scoped = rec.scoped(&anchor, 7);
        // A "root" span opened through the scoped handle parents under the
        // anchor and carries the request tag — and so do its children,
        // because `child` goes through the same scoped handle.
        let engine = scoped.span("explore");
        let level = engine.child("explore.level");
        level.end();
        engine.end();
        anchor.end();
        let run = rec.finish();
        assert_eq!(run.spans[1].name, "explore");
        assert_eq!(run.spans[1].parent, Some(0));
        assert_eq!(run.spans[1].fields, vec![("req".to_string(), 7)]);
        assert_eq!(run.spans[2].parent, Some(1));
        assert_eq!(run.spans[2].fields, vec![("req".to_string(), 7)]);
        // Scoping an inert anchor yields an unscoped handle.
        let unscoped = Recorder::disabled();
        let inert = unscoped.span("x");
        let s = rec.scoped(&inert, 1);
        let root = s.span("y");
        assert_eq!(run.spans.len(), 3); // snapshot above unaffected
        root.end();
        let run2 = rec.finish();
        assert_eq!(run2.spans[3].parent, None);
        assert!(run2.spans[3].fields.is_empty());
    }

    #[test]
    fn explicit_timestamps_skip_the_clock() {
        let rec = Recorder::with_clock(Box::new(FakeClock::new(1_000)));
        // Clock reads: creation only (start=0) — every stamp is explicit.
        let root = rec.span_at("served.request", 42);
        let root_id = root.id().unwrap();
        let child = root.child_at("served.parse", 43);
        child.end_at(44);
        root.end_at(50);
        let handle = rec.span_handle(root_id);
        let late = handle.child_at("served.serialize", 45);
        late.end_at(49);
        let run = rec.finish();
        assert_eq!(run.spans[0].start_ns, 42);
        assert_eq!(run.spans[0].end_ns, Some(50));
        assert_eq!(run.spans[1].start_ns, 43);
        assert_eq!(run.spans[2].parent, Some(0));
        // finish() was the first clock read after creation.
        assert_eq!(run.end_ns, 1_000);
    }

    #[test]
    fn span_cap_drops_spans_but_keeps_metrics() {
        let rec = Recorder::with_clock(Box::new(FakeClock::new(1))).with_span_cap(2);
        let a = rec.span("a");
        let b = rec.span("b");
        let c = rec.span("c"); // dropped
        c.set("ignored", 1);
        c.end();
        rec.counter("still.counting").inc();
        a.end();
        b.end();
        let run = rec.finish();
        assert_eq!(run.spans.len(), 2);
        assert_eq!(run.spans_dropped, 1);
        assert_eq!(run.counters[0], ("still.counting".to_string(), 1));
    }

    #[test]
    fn metrics_data_reads_no_clock() {
        let rec = Recorder::with_clock(Box::new(FakeClock::new(1_000)));
        rec.counter("c").add(2);
        rec.histogram("h").observe(9);
        let a = rec.metrics_data();
        let b = rec.metrics_data();
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.histograms, b.histograms);
        assert!(a.spans.is_empty() && a.events.is_empty());
        // The next real clock read proves metrics_data consumed none.
        assert_eq!(rec.now_ns(), 1_000);
    }

    #[test]
    fn events_carry_fields_in_order() {
        let rec = Recorder::with_clock(Box::new(FakeClock::new(5)));
        rec.event(
            "verdict",
            [
                ("schedulable", Json::Bool(false)),
                ("deadlock_depth", Json::UInt(9)),
            ],
        );
        let run = rec.finish();
        assert_eq!(run.events.len(), 1);
        assert_eq!(run.events[0].ts_ns, 5);
        assert_eq!(run.events[0].fields[0].0, "schedulable");
        assert_eq!(run.events[0].fields[1].1, Json::UInt(9));
    }
}
