//! Time sources for the recorder.
//!
//! All timestamps in this crate are `u64` nanoseconds since an arbitrary,
//! monotonically non-decreasing origin (the construction of the clock). Two
//! implementations exist:
//!
//! * [`MonotonicClock`] — wraps [`std::time::Instant`]; the production clock.
//! * [`FakeClock`] — advances by a fixed tick on every read, so any code path
//!   that reads the clock a deterministic number of times produces
//!   byte-identical timestamps run after run. This is what makes snapshot
//!   tests of the JSON report stable (see `tests/snapshot.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond time source.
pub trait Clock: Send + Sync {
    /// Nanoseconds since the clock's origin. Must never decrease.
    fn now_ns(&self) -> u64;
}

/// The production clock: [`Instant`]-based, origin = construction time.
///
/// # Examples
///
/// ```
/// use obs::{Clock, MonotonicClock};
///
/// let c = MonotonicClock::new();
/// let a = c.now_ns();
/// assert!(c.now_ns() >= a);
/// ```
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is *now*.
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> MonotonicClock {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // Saturates at u64::MAX after ~584 years of uptime.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A deterministic clock: every read returns the current value and advances
/// it by a fixed tick.
///
/// # Examples
///
/// ```
/// use obs::{Clock, FakeClock};
///
/// let c = FakeClock::new(1_000);
/// assert_eq!(c.now_ns(), 0);
/// assert_eq!(c.now_ns(), 1_000);
/// assert_eq!(c.now_ns(), 2_000);
/// ```
#[derive(Debug)]
pub struct FakeClock {
    now: AtomicU64,
    tick: u64,
}

impl FakeClock {
    /// A fake clock starting at 0 that advances by `tick_ns` per read.
    pub fn new(tick_ns: u64) -> FakeClock {
        FakeClock {
            now: AtomicU64::new(0),
            tick: tick_ns,
        }
    }
}

impl Clock for FakeClock {
    fn now_ns(&self) -> u64 {
        self.now.fetch_add(self.tick, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fake_clock_is_deterministic() {
        let c = FakeClock::new(7);
        let reads: Vec<u64> = (0..4).map(|_| c.now_ns()).collect();
        assert_eq!(reads, vec![0, 7, 14, 21]);
    }

    #[test]
    fn monotonic_clock_never_decreases() {
        let c = MonotonicClock::new();
        let mut prev = 0;
        for _ in 0..100 {
            let t = c.now_ns();
            assert!(t >= prev);
            prev = t;
        }
    }
}
