//! # obs — vendored tracing + metrics for the exploration pipeline
//!
//! The paper's value proposition is state-space exploration at scale (§7
//! reports state counts and blow-up as the model grows), so this workspace
//! treats run observability as first-class tool output, like the AADL
//! verification tools around it. `obs` is the std-only (hermetic — no
//! external dependencies, enforced by `tools/check_hermetic.sh`)
//! observability layer the rest of the workspace instruments against:
//!
//! * **[`Recorder`]** — the central handle. Disabled by default: every
//!   instrument it hands out is a no-op behind an `Option` branch, so
//!   instrumented hot paths cost nothing observable when observability is
//!   off (verified against the tier-1 benches; see EXPERIMENTS.md).
//! * **Spans** ([`Span`]) — hierarchical, monotonically timed regions
//!   (`translate`, `explore`, `explore.level`, `diagnose.raise`).
//! * **Metrics** ([`Counter`], [`Gauge`], [`Histogram`]) — lock-free atomic
//!   instruments, safe to update from exploration worker threads.
//! * **Sinks** ([`SummarySink`], [`JsonLinesSink`], and the [`Report`]) —
//!   pure renderings of a finished run: human summary, JSON-lines event
//!   stream, and the schema-versioned end-of-run JSON report
//!   (`BENCH_exploration.json`).
//! * **Clocks** ([`MonotonicClock`], [`FakeClock`]) — production `Instant`
//!   timing vs. a deterministic tick-per-read clock that makes snapshot
//!   tests of the JSON report byte-stable.
//!
//! ## End-to-end
//!
//! ```
//! use obs::{FakeClock, Json, Recorder, Report};
//!
//! let rec = Recorder::with_clock(Box::new(FakeClock::new(1_000)));
//! let explore = rec.span("explore");
//! let level = explore.child("explore.level");
//! level.set("frontier", 1);
//! level.end();
//! rec.counter("explore.dedup_hits").add(3);
//! explore.end();
//!
//! let mut report = Report::new(&obs::run_id(&[b"model", b"opts"]), "doctest");
//! report.set("verdict", Json::obj([("schedulable", Json::Bool(true))]));
//! report.attach_run(&rec.finish());
//! let a = report.to_json();
//! assert!(a.contains("\"explore.level\""));
//! assert!(a.contains("\"explore.dedup_hits\": 3"));
//! ```

pub mod clock;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod report;
pub mod sink;

pub use clock::{Clock, FakeClock, MonotonicClock};
pub use flight::{FlightEvent, FlightRecorder};
pub use json::{Json, JsonParseError};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use recorder::{
    EventRecord, Recorder, RunData, Span, SpanRecord, PROGRESS_FIRST_THRESHOLD,
};
pub use report::{histogram_json, run_id, Report, SCHEMA, SCHEMA_VERSION};
pub use sink::{JsonLinesSink, Sink, SummarySink};
