//! Pluggable output sinks over a finished [`RunData`].
//!
//! A sink is a pure function from run data to bytes — rendering never
//! mutates the recorder, so several sinks can consume the same run (the CLI
//! writes a JSON report *and* a JSON-lines stream *and* a stderr summary
//! from one recorder).

use std::io::{self, Write};

use crate::json::Json;
use crate::recorder::RunData;
use crate::report::span_json;

/// Render run data to a writer.
pub trait Sink {
    /// Write the rendering of `run` to `out`.
    fn emit(&self, run: &RunData, out: &mut dyn Write) -> io::Result<()>;
}

/// Human-readable one-screen summary: span tree with durations, then
/// counters/gauges/histograms.
///
/// # Examples
///
/// ```
/// use obs::{FakeClock, Recorder, Sink, SummarySink};
///
/// let rec = Recorder::with_clock(Box::new(FakeClock::new(1_000_000)));
/// let s = rec.span("explore");
/// s.set("states", 42);
/// s.end();
/// rec.counter("explore.dedup_hits").add(7);
/// let mut out = Vec::new();
/// SummarySink.emit(&rec.finish(), &mut out).unwrap();
/// let text = String::from_utf8(out).unwrap();
/// assert!(text.contains("explore"));
/// assert!(text.contains("explore.dedup_hits"));
/// ```
pub struct SummarySink;

impl Sink for SummarySink {
    fn emit(&self, run: &RunData, out: &mut dyn Write) -> io::Result<()> {
        writeln!(
            out,
            "run: {} ns recorded",
            run.end_ns.saturating_sub(run.start_ns)
        )?;
        if !run.spans.is_empty() {
            writeln!(out, "spans:")?;
            // Children directly follow their parent in open order only for
            // sequential instrumentation, so render by explicit depth.
            for s in &run.spans {
                let depth = {
                    let mut d = 0;
                    let mut cur = s.parent;
                    while let Some(p) = cur {
                        d += 1;
                        cur = run.spans[p as usize].parent;
                    }
                    d
                };
                let dur = s
                    .end_ns
                    .map(|e| format!("{} ns", e.saturating_sub(s.start_ns)))
                    .unwrap_or_else(|| "open".to_string());
                let fields = if s.fields.is_empty() {
                    String::new()
                } else {
                    let parts: Vec<String> = s
                        .fields
                        .iter()
                        .map(|(k, v)| format!("{k}={v}"))
                        .collect();
                    format!("  [{}]", parts.join(", "))
                };
                writeln!(
                    out,
                    "  {:indent$}{:<24} {:>14}{}",
                    "",
                    s.name,
                    dur,
                    fields,
                    indent = depth * 2
                )?;
            }
        }
        if !run.counters.is_empty() {
            writeln!(out, "counters:")?;
            for (k, v) in &run.counters {
                writeln!(out, "  {k:<32} {v}")?;
            }
        }
        if !run.gauges.is_empty() {
            writeln!(out, "gauges:")?;
            for (k, value, peak) in &run.gauges {
                writeln!(out, "  {k:<32} {value} (peak {peak})")?;
            }
        }
        if !run.histograms.is_empty() {
            writeln!(out, "histograms:")?;
            for (k, snap) in &run.histograms {
                let mean = if snap.count == 0 {
                    0
                } else {
                    snap.sum / snap.count
                };
                writeln!(
                    out,
                    "  {k:<32} n={} sum={} max={} mean={}",
                    snap.count, snap.sum, snap.max, mean
                )?;
            }
        }
        Ok(())
    }
}

/// Machine-readable event stream: one compact JSON object per line, in
/// timestamp order — spans (with durations) interleaved with events.
///
/// # Examples
///
/// ```
/// use obs::{FakeClock, Json, Recorder, JsonLinesSink, Sink};
///
/// let rec = Recorder::with_clock(Box::new(FakeClock::new(1)));
/// let s = rec.span("translate");
/// s.end();
/// rec.event("verdict", [("schedulable", Json::Bool(true))]);
/// let mut out = Vec::new();
/// JsonLinesSink.emit(&rec.finish(), &mut out).unwrap();
/// let text = String::from_utf8(out).unwrap();
/// assert_eq!(text.lines().count(), 2);
/// assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
/// ```
pub struct JsonLinesSink;

impl Sink for JsonLinesSink {
    fn emit(&self, run: &RunData, out: &mut dyn Write) -> io::Result<()> {
        // Merge spans and events, keyed by (timestamp, kind, log index) for a
        // deterministic total order.
        let mut lines: Vec<(u64, u8, u64, Json)> = Vec::new();
        for s in &run.spans {
            let mut obj = match span_json(s) {
                Json::Obj(pairs) => pairs,
                _ => unreachable!("span_json returns an object"),
            };
            obj.insert(0, ("type".to_string(), Json::from("span")));
            lines.push((s.start_ns, 0, s.id, Json::Obj(obj)));
        }
        for (i, e) in run.events.iter().enumerate() {
            let mut pairs = vec![
                ("type".to_string(), Json::from("event")),
                ("ts_ns".to_string(), Json::UInt(e.ts_ns)),
                ("name".to_string(), Json::from(e.name.as_str())),
            ];
            pairs.extend(e.fields.iter().cloned());
            lines.push((e.ts_ns, 1, i as u64, Json::Obj(pairs)));
        }
        lines.sort_by_key(|(ts, kind, idx, _)| (*ts, *kind, *idx));
        for (_, _, _, json) in &lines {
            writeln!(out, "{}", json.to_compact())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::FakeClock;
    use crate::recorder::Recorder;

    fn sample_run() -> RunData {
        let rec = Recorder::with_clock(Box::new(FakeClock::new(10)));
        let root = rec.span("explore");
        let lvl = root.child("explore.level");
        lvl.set("frontier", 2);
        lvl.end();
        root.end();
        rec.event("verdict", [("schedulable", Json::Bool(false))]);
        rec.counter("explore.dedup_hits").add(5);
        rec.gauge("explore.states").set(12);
        rec.histogram("explore.worker_chunk").observe(8);
        rec.finish()
    }

    #[test]
    fn summary_renders_nested_spans() {
        let mut out = Vec::new();
        SummarySink.emit(&sample_run(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("explore"));
        assert!(text.contains("  explore.level"), "{text}");
        assert!(text.contains("frontier=2"));
        assert!(text.contains("explore.states"));
    }

    #[test]
    fn jsonl_is_one_object_per_line_in_time_order() {
        let mut out = Vec::new();
        JsonLinesSink.emit(&sample_run(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"name\":\"explore\""));
        assert!(lines[1].contains("\"name\":\"explore.level\""));
        assert!(lines[2].contains("\"type\":\"event\""));
        // Deterministic: emitting twice gives identical bytes.
        let mut out2 = Vec::new();
        JsonLinesSink.emit(&sample_run(), &mut out2).unwrap();
        assert_eq!(text.as_bytes(), &out2[..]);
    }
}
