//! The flight recorder: a fixed-size, lock-light ring buffer of the last N
//! structured request events.
//!
//! Tracing every request to disk is too expensive for a serving daemon, but
//! the *interesting* requests — the one that timed out, the ones right
//! before a panic, the burst that filled the queue — must leave evidence.
//! The flight recorder keeps a bounded window of recent
//! [`FlightEvent`]s in memory; the daemon dumps it to stderr when something
//! goes wrong (panic-retry, timeout, queue-full), serves it on demand via
//! the `flight` wire command, and drains it into the fleet report on
//! graceful shutdown.
//!
//! Concurrency: one atomic fetch-add claims a slot, then one uncontended
//! per-slot mutex stores the event — writers only collide on a slot after a
//! full lap of the ring. [`FlightRecorder::snapshot`] locks each slot
//! briefly and orders by sequence number, so readers never stall writers
//! for more than one slot at a time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json::Json;

/// One recorded request, as kept in the ring and rendered by the `flight`
/// wire command and the fleet report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global sequence number, assigned by [`FlightRecorder::record`]
    /// (whatever the caller sets is overwritten).
    pub seq: u64,
    /// The daemon-wide request sequence number (the `req` span field).
    pub req: u64,
    /// The client's correlation id.
    pub id: String,
    /// The job digest.
    pub job: String,
    /// Terminal outcome: a verdict (`schedulable`, `unschedulable`), an
    /// interruption (`timeout`, `cancelled`, `state-budget`), or a serving
    /// disposition (`cache-hit`, `queue-full`, `rejected`, `error`).
    pub outcome: String,
    /// The wire `code` delivered for the request.
    pub code: u8,
    /// Per-stage durations in ns, in stage order (`parse`, `dispatch`,
    /// `queue_wait` / `coalesce_wait`, `exec`, `serialize`).
    pub stages: Vec<(&'static str, u64)>,
}

impl FlightEvent {
    /// Render one event with a fixed field order (the wire and report
    /// contract).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seq", Json::UInt(self.seq)),
            ("req", Json::UInt(self.req)),
            ("id", Json::from(self.id.as_str())),
            ("job", Json::from(self.job.as_str())),
            ("outcome", Json::from(self.outcome.as_str())),
            ("code", Json::UInt(u64::from(self.code))),
            (
                "stages",
                Json::Obj(
                    self.stages
                        .iter()
                        .map(|(k, v)| (k.to_string(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
        ])
    }
}

/// The bounded ring of recent [`FlightEvent`]s.
///
/// # Examples
///
/// ```
/// use obs::{FlightEvent, FlightRecorder};
///
/// let ring = FlightRecorder::new(2);
/// for i in 0..3u64 {
///     ring.record(FlightEvent {
///         seq: 0,
///         req: i,
///         id: format!("r{i}"),
///         job: "0000000000000000".into(),
///         outcome: "schedulable".into(),
///         code: 0,
///         stages: vec![("exec", 10)],
///     });
/// }
/// // Capacity 2: the first event fell out of the window.
/// let window = ring.snapshot();
/// assert_eq!(window.len(), 2);
/// assert_eq!((window[0].seq, window[0].req), (1, 1));
/// assert_eq!((window[1].seq, window[1].req), (2, 2));
/// ```
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<FlightEvent>>>,
    cursor: AtomicU64,
}

impl FlightRecorder {
    /// A ring holding the last `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    /// The window size.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (recorded − capacity ≤ retained).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Record one event, overwriting the oldest slot once the ring is full.
    /// Returns the assigned sequence number.
    pub fn record(&self, mut event: FlightEvent) -> u64 {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        event.seq = seq;
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        *slot.lock().expect("flight slot poisoned") = Some(event);
        seq
    }

    /// The current window, oldest first. Concurrent recording may leave
    /// holes; ordering is by sequence number, never by slot position.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        let mut events: Vec<FlightEvent> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().expect("flight slot poisoned").clone())
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// The window as JSON: `{"capacity": N, "recorded": M, "events": [...]}`
    /// — the body of the `flight` wire response and the `flight` section of
    /// the fleet report.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("capacity", Json::UInt(self.capacity() as u64)),
            ("recorded", Json::UInt(self.recorded())),
            (
                "events",
                Json::Arr(self.snapshot().iter().map(FlightEvent::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(req: u64, outcome: &str) -> FlightEvent {
        FlightEvent {
            seq: 0,
            req,
            id: format!("r{req}"),
            job: "aabbccdd00112233".into(),
            outcome: outcome.into(),
            code: 0,
            stages: vec![("parse", 1), ("exec", 2)],
        }
    }

    #[test]
    fn empty_ring_snapshots_empty() {
        let ring = FlightRecorder::new(4);
        assert!(ring.snapshot().is_empty());
        assert_eq!(ring.recorded(), 0);
        assert_eq!(
            ring.to_json().to_compact(),
            r#"{"capacity":4,"recorded":0,"events":[]}"#
        );
    }

    #[test]
    fn ring_wraps_and_keeps_the_newest_window() {
        let ring = FlightRecorder::new(4);
        for i in 0..10 {
            assert_eq!(ring.record(event(i, "schedulable")), i);
        }
        let window = ring.snapshot();
        assert_eq!(window.len(), 4);
        assert_eq!(
            window.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(ring.recorded(), 10);
    }

    #[test]
    fn event_json_has_a_fixed_field_order() {
        let mut e = event(3, "timeout");
        e.seq = 5;
        e.code = 3;
        assert_eq!(
            e.to_json().to_compact(),
            r#"{"seq":5,"req":3,"id":"r3","job":"aabbccdd00112233","outcome":"timeout","code":3,"stages":{"parse":1,"exec":2}}"#
        );
    }

    #[test]
    fn concurrent_recording_is_safe_and_lossless_in_count() {
        let ring = std::sync::Arc::new(FlightRecorder::new(8));
        std::thread::scope(|s| {
            for t in 0..4 {
                let ring = ring.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        ring.record(event(t * 100 + i, "schedulable"));
                    }
                });
            }
        });
        assert_eq!(ring.recorded(), 400);
        let window = ring.snapshot();
        assert_eq!(window.len(), 8);
        // Slot overwrites can race (a slow writer may land after a later
        // lap), so the exact window contents are not asserted — only that
        // it is full, ordered, and duplicate-free.
        let seqs: Vec<u64> = window.iter().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "{seqs:?}");
        assert!(seqs.iter().all(|&s| s < 400));
    }
}
