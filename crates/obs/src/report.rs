//! The end-of-run JSON report (the `BENCH_exploration.json` schema).
//!
//! A [`Report`] is an ordered set of top-level JSON fields seeded with the
//! schema identity (`schema`, `version`, `run_id`); the caller adds
//! tool-specific sections (`model`, `translation`, `exploration`,
//! `verdict`, …) and finally attaches the recorder's [`RunData`] (spans,
//! counters, gauges, histograms, events). Reports are reproducible and
//! diffable by construction: the run id hashes the *inputs* (model source +
//! options), never the wall clock, and rendering is insertion-ordered with
//! no floats.

use crate::json::Json;
use crate::metrics::HistogramSnapshot;
use crate::recorder::{RunData, SpanRecord};

/// The schema family name every report carries.
pub const SCHEMA: &str = "aadlsched-metrics";

/// Version of the report schema. Bump when a field changes meaning or moves;
/// consumers reject reports whose version they do not know.
///
/// * v2 — the `exploration` section gained the hash-consing fields
///   (`memo_hits`, `memo_misses`, `memo_evictions`, `unique_subterms`) and
///   `BENCH_exploration.json` gained the `interning` A/B section.
/// * v3 — every histogram gained `p50`/`p90`/`p99` quantile estimates
///   (bucket-midpoint estimation over the power-of-two buckets, see
///   [`HistogramSnapshot::quantile`]); reports may carry a top-level
///   `spans_dropped` count when the span log was capped, and the daemon's
///   fleet report gained a `flight` section (the drained flight-recorder
///   window).
/// * v4 — the cross-run artifact store: runs configured with `--store`
///   record `cas.hits` / `cas.misses` / `cas.writes` / `cas.invalidations`
///   counters, the daemon's fleet-report `config` section gained `store`
///   and `store_readonly`, and `BENCH_exploration.json` gained the `cas`
///   warm-vs-cold section. Store-less runs emit none of these, so their
///   reports are shaped exactly as in v3.
/// * v5 — delay-zone exploration: zone-mode runs record `zone.delay_steps`
///   / `zone.quanta_collapsed` / `zone.singleton_steps` counters, the
///   `explore` span gained a `zones` field, the daemon's fleet-report
///   `config` section gained `zones`, and `BENCH_exploration.json` gained
///   the `zones` A/B section. Concrete-mode runs emit none of these, so
///   their reports are shaped exactly as in v4.
/// * v6 — closed-form delay advance: zone-mode runs under the default
///   `closed` strategy record `zone.closed_form_advances` /
///   `zone.replay_fallbacks` / `zone.shapes_derived` counters and a
///   `zone.shape_cache` gauge, the CLI's canonical option string (hashed
///   into the run id) gained `zone_cap` and `zone_advance`, the daemon's
///   fleet-report `config` section gained the same two fields, and
///   `BENCH_exploration.json` gained the `zone_advance` closed-vs-replay
///   section. Replay-mode and concrete-mode runs emit none of the new
///   instruments.
pub const SCHEMA_VERSION: u64 = 6;

/// Deterministic run identifier: FNV-1a (64-bit) over the given byte slices,
/// rendered as 16 lowercase hex digits. Feed it the model source and the
/// canonical option string — *not* timestamps — so the same inputs always
/// produce the same id and two reports are diffable.
///
/// # Examples
///
/// ```
/// let a = obs::run_id(&[b"model source", b"--exhaustive"]);
/// let b = obs::run_id(&[b"model source", b"--exhaustive"]);
/// assert_eq!(a, b);
/// assert_eq!(a.len(), 16);
/// assert_ne!(a, obs::run_id(&[b"model source", b"--threads 4"]));
/// ```
pub fn run_id(parts: &[&[u8]]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        // Hash each part's length too, so ["ab","c"] != ["a","bc"].
        for b in (part.len() as u64).to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        for &b in *part {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// A schema-versioned, machine-readable run report.
///
/// # Examples
///
/// ```
/// use obs::{Json, Report};
///
/// let mut r = Report::new("deadbeefdeadbeef", "aadlsched");
/// r.set("model", Json::obj([("file", Json::from("m.aadl"))]));
/// let text = r.to_json();
/// assert!(text.starts_with("{\n  \"schema\": \"aadlsched-metrics\""));
/// assert!(text.contains("\"version\": 6"));
/// ```
#[derive(Clone, Debug)]
pub struct Report {
    fields: Vec<(String, Json)>,
}

impl Report {
    /// A report seeded with the schema identity and the producing tool.
    pub fn new(run_id: &str, tool: &str) -> Report {
        Report {
            fields: vec![
                ("schema".into(), Json::from(SCHEMA)),
                ("version".into(), Json::UInt(SCHEMA_VERSION)),
                ("run_id".into(), Json::from(run_id)),
                ("tool".into(), Json::from(tool)),
            ],
        }
    }

    /// Set a top-level field (replacing an earlier value for the same key in
    /// place, preserving its position).
    pub fn set(&mut self, key: &str, value: Json) {
        if let Some(slot) = self.fields.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.fields.push((key.to_string(), value));
        }
    }

    /// Attach a recorder's run data as the `spans`, `events`, `counters`,
    /// `gauges` and `histograms` sections.
    pub fn attach_run(&mut self, run: &RunData) {
        self.set("duration_ns", Json::UInt(run.end_ns.saturating_sub(run.start_ns)));
        if run.spans_dropped > 0 {
            self.set("spans_dropped", Json::UInt(run.spans_dropped));
        }
        self.set(
            "spans",
            Json::Arr(run.spans.iter().map(span_json).collect()),
        );
        self.set(
            "events",
            Json::Arr(
                run.events
                    .iter()
                    .map(|e| {
                        let mut pairs = vec![
                            ("ts_ns".to_string(), Json::UInt(e.ts_ns)),
                            ("name".to_string(), Json::from(e.name.as_str())),
                        ];
                        pairs.extend(e.fields.iter().cloned());
                        Json::Obj(pairs)
                    })
                    .collect(),
            ),
        );
        self.set(
            "counters",
            Json::Obj(
                run.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                    .collect(),
            ),
        );
        self.set(
            "gauges",
            Json::Obj(
                run.gauges
                    .iter()
                    .map(|(k, value, peak)| {
                        (
                            k.clone(),
                            Json::obj([
                                ("value", Json::Int(*value)),
                                ("peak", Json::Int(*peak)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        );
        self.set(
            "histograms",
            Json::Obj(
                run.histograms
                    .iter()
                    .map(|(k, snap)| (k.clone(), histogram_json(snap)))
                    .collect(),
            ),
        );
    }

    /// Render the report as pretty-printed JSON (two-space indent, trailing
    /// newline) — the on-disk `BENCH_exploration.json` format.
    pub fn to_json(&self) -> String {
        Json::Obj(self.fields.clone()).to_pretty()
    }
}

/// Render one span (shared by the report and the JSON-lines sink).
pub(crate) fn span_json(s: &SpanRecord) -> Json {
    let mut pairs = vec![
        ("id".to_string(), Json::UInt(s.id)),
        (
            "parent".to_string(),
            s.parent.map_or(Json::Null, Json::UInt),
        ),
        ("name".to_string(), Json::from(s.name.as_str())),
        ("start_ns".to_string(), Json::UInt(s.start_ns)),
        (
            "duration_ns".to_string(),
            s.end_ns
                .map_or(Json::Null, |e| Json::UInt(e.saturating_sub(s.start_ns))),
        ),
    ];
    if !s.fields.is_empty() {
        pairs.push((
            "fields".to_string(),
            Json::Obj(
                s.fields
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Int(*v)))
                    .collect(),
            ),
        ));
    }
    Json::Obj(pairs)
}

/// Render one histogram with its quantile estimates — the shared shape of
/// the report's `histograms` section and the daemon's `stats` response.
/// Quantiles are integers (bucket-midpoint estimates clamped to the
/// observed maximum; see [`HistogramSnapshot::quantile`]) because the JSON
/// dialect has no floats.
pub fn histogram_json(snap: &HistogramSnapshot) -> Json {
    Json::obj([
        ("count", Json::UInt(snap.count)),
        ("sum", Json::UInt(snap.sum)),
        ("max", Json::UInt(snap.max)),
        ("p50", Json::UInt(snap.quantile(0.5))),
        ("p90", Json::UInt(snap.quantile(0.9))),
        ("p99", Json::UInt(snap.quantile(0.99))),
        (
            "buckets",
            Json::Arr(
                snap.buckets
                    .iter()
                    .map(|(i, n)| Json::Arr(vec![Json::UInt(*i as u64), Json::UInt(*n)]))
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::FakeClock;
    use crate::recorder::Recorder;

    #[test]
    fn run_id_is_input_determined() {
        assert_eq!(run_id(&[b"x"]), run_id(&[b"x"]));
        assert_ne!(run_id(&[b"x"]), run_id(&[b"y"]));
        assert_ne!(run_id(&[b"ab", b"c"]), run_id(&[b"a", b"bc"]));
    }

    #[test]
    fn report_carries_schema_identity_first() {
        let r = Report::new("0000000000000000", "test");
        let text = r.to_json();
        let schema_pos = text.find("\"schema\"").unwrap();
        let version_pos = text.find("\"version\"").unwrap();
        assert!(schema_pos < version_pos);
    }

    #[test]
    fn set_replaces_in_place() {
        let mut r = Report::new("0", "t");
        r.set("a", Json::UInt(1));
        r.set("b", Json::UInt(2));
        r.set("a", Json::UInt(3));
        let text = r.to_json();
        assert!(text.find("\"a\": 3").unwrap() < text.find("\"b\": 2").unwrap());
        assert!(!text.contains("\"a\": 1"));
    }

    #[test]
    fn attach_run_renders_all_sections() {
        let rec = Recorder::with_clock(Box::new(FakeClock::new(1)));
        rec.counter("c").add(4);
        rec.gauge("g").set(-2);
        rec.histogram("h").observe(10);
        let s = rec.span("stage");
        s.set("f", 1);
        s.end();
        rec.event("done", [("ok", Json::Bool(true))]);
        let mut r = Report::new("id", "t");
        r.attach_run(&rec.finish());
        let text = r.to_json();
        for key in [
            "\"spans\"",
            "\"events\"",
            "\"counters\"",
            "\"gauges\"",
            "\"histograms\"",
            "\"duration_ns\"",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
        assert!(text.contains("\"c\": 4"));
        assert!(text.contains("\"value\": -2"));
    }
}
