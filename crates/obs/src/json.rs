//! A minimal, deterministic JSON value and writer.
//!
//! The hermetic build has no `serde`; this module is the whole JSON story.
//! Objects are ordered `Vec<(String, Json)>` pairs — insertion order is
//! preserved exactly, so a report built the same way renders byte-for-byte
//! identically. Floats are deliberately absent from the value enum: every
//! quantity the pipeline reports (counts, nanoseconds, ids) is integral, and
//! integers render identically on every platform.

use std::fmt::Write as _;

/// A JSON value (no floats — see the module docs).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (durations, counts).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl Json {
    /// Build an object from key/value pairs.
    ///
    /// # Examples
    ///
    /// ```
    /// use obs::Json;
    ///
    /// let o = Json::obj([("a", Json::from(1i64)), ("b", Json::from(true))]);
    /// assert_eq!(o.to_compact(), r#"{"a":1,"b":true}"#);
    /// ```
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Render without any whitespace (one line; for JSON-lines streams).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render indented with two spaces per level, trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Json::Obj(pairs) => write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                let (k, v) = &pairs[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.write(out, indent, depth + 1);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Json::obj([
            ("n", Json::Int(-3)),
            ("u", Json::UInt(7)),
            ("s", Json::from("hi")),
            ("a", Json::Arr(vec![Json::Null, Json::Bool(false)])),
            ("e", Json::Obj(Vec::new())),
        ]);
        assert_eq!(
            v.to_compact(),
            r#"{"n":-3,"u":7,"s":"hi","a":[null,false],"e":{}}"#
        );
    }

    #[test]
    fn pretty_rendering_is_stable() {
        let v = Json::obj([("a", Json::Arr(vec![Json::UInt(1), Json::UInt(2)]))]);
        assert_eq!(v.to_pretty(), "{\n  \"a\": [\n    1,\n    2\n  ]\n}\n");
    }

    #[test]
    fn strings_are_escaped() {
        let v = Json::from("a\"b\\c\nd\u{0001}");
        assert_eq!(v.to_compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn insertion_order_is_preserved() {
        let v = Json::obj([("z", Json::UInt(1)), ("a", Json::UInt(2))]);
        assert_eq!(v.to_compact(), r#"{"z":1,"a":2}"#);
    }
}
