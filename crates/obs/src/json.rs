//! A minimal, deterministic JSON value, writer and reader.
//!
//! The hermetic build has no `serde`; this module is the whole JSON story.
//! Objects are ordered `Vec<(String, Json)>` pairs — insertion order is
//! preserved exactly, so a report built the same way renders byte-for-byte
//! identically. Floats are deliberately absent from the value enum: every
//! quantity the pipeline reports (counts, nanoseconds, ids) is integral, and
//! integers render identically on every platform. The reader ([`Json::parse`])
//! accepts exactly the values the writer can produce — in particular a float
//! literal is a parse *error*, not a lossy conversion, which keeps the
//! `aadlschedd` wire protocol round-trippable byte for byte.

use std::fmt;
use std::fmt::Write as _;

/// A JSON value (no floats — see the module docs).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (durations, counts).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl Json {
    /// Build an object from key/value pairs.
    ///
    /// # Examples
    ///
    /// ```
    /// use obs::Json;
    ///
    /// let o = Json::obj([("a", Json::from(1i64)), ("b", Json::from(true))]);
    /// assert_eq!(o.to_compact(), r#"{"a":1,"b":true}"#);
    /// ```
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Render without any whitespace (one line; for JSON-lines streams).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render indented with two spaces per level, trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    /// Parse a JSON text into a [`Json`] value.
    ///
    /// Accepts the subset this module can render: `null`, booleans, integers
    /// (`i64` when negative, `u64` otherwise), strings with the standard
    /// escapes (including `\uXXXX` and surrogate pairs), arrays and objects.
    /// Duplicate object keys are kept in order (last lookup wins through
    /// [`Json::get`]). Floats, `NaN`, leading zeros and trailing garbage are
    /// errors — the wire protocol is integral by design.
    ///
    /// # Examples
    ///
    /// ```
    /// use obs::Json;
    ///
    /// let v = Json::parse(r#"{"type":"analyze","n":3,"ok":true}"#).unwrap();
    /// assert_eq!(v.get("type").and_then(Json::as_str), Some("analyze"));
    /// assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
    /// assert!(Json::parse("1.5").is_err()); // floats are rejected
    /// ```
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(text, bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters after the JSON value"));
        }
        Ok(value)
    }

    /// Object field lookup (last occurrence wins). `None` for non-objects
    /// and missing keys.
    ///
    /// # Examples
    ///
    /// ```
    /// use obs::Json;
    ///
    /// let v = Json::parse(r#"{"a":1}"#).unwrap();
    /// assert!(v.get("a").is_some());
    /// assert!(v.get("b").is_none());
    /// ```
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a [`Json::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            Json::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::UInt(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Json::Obj(pairs) => write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                let (k, v) = &pairs[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.write(out, indent, depth + 1);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure: byte offset plus a static description.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JsonParseError {
    /// Byte offset into the input where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Maximum container nesting the reader accepts. The parser is recursive
/// descent, so unbounded nesting would let a short hostile input (e.g. a
/// line of `[` characters over the daemon's TCP socket) overflow the
/// thread's stack — an uncatchable process abort. Nothing the writer
/// produces comes anywhere near this deep.
const MAX_PARSE_DEPTH: usize = 128;

fn err(at: usize, message: &'static str) -> JsonParseError {
    JsonParseError { at, message }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, b: u8, message: &'static str) -> Result<(), JsonParseError> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, message))
    }
}

fn parse_value(
    text: &str,
    bytes: &[u8],
    pos: &mut usize,
    depth: usize,
) -> Result<Json, JsonParseError> {
    if depth > MAX_PARSE_DEPTH {
        return Err(err(*pos, "nesting too deep"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => parse_literal(bytes, pos, b"null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false", Json::Bool(false)),
        Some(b'"') => parse_string(text, bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(text, bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected `,` or `]` in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(text, bytes, pos)?;
                skip_ws(bytes, pos);
                expect_byte(bytes, pos, b':', "expected `:` after object key")?;
                let value = parse_value(text, bytes, pos, depth + 1)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(err(*pos, "expected `,` or `}` in object")),
                }
            }
        }
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(_) => Err(err(*pos, "unexpected character")),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &'static [u8],
    value: Json,
) -> Result<Json, JsonParseError> {
    if bytes.len() >= *pos + word.len() && &bytes[*pos..*pos + word.len()] == word {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, "invalid literal (expected null/true/false)"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonParseError> {
    let start = *pos;
    let negative = bytes.get(*pos) == Some(&b'-');
    if negative {
        *pos += 1;
    }
    let digits_start = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if *pos == digits_start {
        return Err(err(*pos, "expected a digit"));
    }
    if bytes[digits_start] == b'0' && *pos - digits_start > 1 {
        return Err(err(start, "leading zeros are not allowed"));
    }
    if matches!(bytes.get(*pos), Some(b'.' | b'e' | b'E')) {
        return Err(err(*pos, "floats are not supported (integral protocol)"));
    }
    // SAFETY of the ASCII slice: everything consumed is `-` or a digit.
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number");
    if negative {
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| err(start, "integer out of i64 range"))
    } else {
        text.parse::<u64>()
            .map(Json::UInt)
            .map_err(|_| err(start, "integer out of u64 range"))
    }
}

fn parse_string(text: &str, bytes: &[u8], pos: &mut usize) -> Result<String, JsonParseError> {
    expect_byte(bytes, pos, b'"', "expected `\"`")?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        *pos += 1;
                        let hi = parse_hex4(bytes, pos)?;
                        let c = if (0xd800..0xdc00).contains(&hi) {
                            // High surrogate: require the paired `\uXXXX` low
                            // surrogate and combine.
                            if bytes.get(*pos) != Some(&b'\\') || bytes.get(*pos + 1) != Some(&b'u')
                            {
                                return Err(err(*pos, "unpaired surrogate escape"));
                            }
                            *pos += 2;
                            let lo = parse_hex4(bytes, pos)?;
                            if !(0xdc00..0xe000).contains(&lo) {
                                return Err(err(*pos, "invalid low surrogate"));
                            }
                            let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                            char::from_u32(code).ok_or(err(*pos, "invalid surrogate pair"))?
                        } else {
                            char::from_u32(hi).ok_or(err(*pos, "invalid \\u escape"))?
                        };
                        out.push(c);
                        continue; // pos already advanced past the hex digits
                    }
                    _ => return Err(err(*pos, "unknown escape")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => return Err(err(*pos, "raw control character in string")),
            Some(_) => {
                // Consume one full UTF-8 scalar from the source text.
                let rest = &text[*pos..];
                let c = rest.chars().next().expect("in-bounds char");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonParseError> {
    if bytes.len() < *pos + 4 {
        return Err(err(*pos, "truncated \\u escape"));
    }
    let mut value = 0u32;
    for _ in 0..4 {
        let d = match bytes[*pos] {
            b @ b'0'..=b'9' => u32::from(b - b'0'),
            b @ b'a'..=b'f' => u32::from(b - b'a') + 10,
            b @ b'A'..=b'F' => u32::from(b - b'A') + 10,
            _ => return Err(err(*pos, "invalid hex digit in \\u escape")),
        };
        value = value * 16 + d;
        *pos += 1;
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Json::obj([
            ("n", Json::Int(-3)),
            ("u", Json::UInt(7)),
            ("s", Json::from("hi")),
            ("a", Json::Arr(vec![Json::Null, Json::Bool(false)])),
            ("e", Json::Obj(Vec::new())),
        ]);
        assert_eq!(
            v.to_compact(),
            r#"{"n":-3,"u":7,"s":"hi","a":[null,false],"e":{}}"#
        );
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        // Within the limit: parses fine.
        let depth = MAX_PARSE_DEPTH;
        let ok = format!("{}0{}", "[".repeat(depth), "]".repeat(depth));
        assert!(Json::parse(&ok).is_ok());
        // One past the limit: a parse error, not a crash.
        let over = format!("{}0{}", "[".repeat(depth + 1), "]".repeat(depth + 1));
        assert_eq!(Json::parse(&over).unwrap_err().message, "nesting too deep");
        // A hostile flood of opens (the remote-DoS shape) errors cleanly
        // long before the recursion could touch the stack guard.
        let flood = "[".repeat(200_000);
        assert_eq!(Json::parse(&flood).unwrap_err().message, "nesting too deep");
        let objs = "{\"k\":".repeat(200_000);
        assert_eq!(Json::parse(&objs).unwrap_err().message, "nesting too deep");
    }

    #[test]
    fn pretty_rendering_is_stable() {
        let v = Json::obj([("a", Json::Arr(vec![Json::UInt(1), Json::UInt(2)]))]);
        assert_eq!(v.to_pretty(), "{\n  \"a\": [\n    1,\n    2\n  ]\n}\n");
    }

    #[test]
    fn strings_are_escaped() {
        let v = Json::from("a\"b\\c\nd\u{0001}");
        assert_eq!(v.to_compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn insertion_order_is_preserved() {
        let v = Json::obj([("z", Json::UInt(1)), ("a", Json::UInt(2))]);
        assert_eq!(v.to_compact(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn parse_round_trips_the_writer() {
        let v = Json::obj([
            ("n", Json::Int(-3)),
            ("u", Json::UInt(u64::MAX)),
            ("s", Json::from("a\"b\\c\nd\u{0001}é")),
            ("a", Json::Arr(vec![Json::Null, Json::Bool(false), Json::Bool(true)])),
            ("e", Json::Obj(Vec::new())),
            ("ea", Json::Arr(Vec::new())),
        ]);
        assert_eq!(Json::parse(&v.to_compact()).unwrap(), v);
        assert_eq!(Json::parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn parse_scalars_and_sign_conventions() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        // Non-negative integers come back as UInt, negative as Int.
        assert_eq!(Json::parse("7").unwrap(), Json::UInt(7));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("0").unwrap(), Json::UInt(0));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
        assert_eq!(
            Json::parse("-9223372036854775808").unwrap(),
            Json::Int(i64::MIN)
        );
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(Json::parse(r#""A""#).unwrap(), Json::from("A"));
        // Surrogate pair for U+1F600.
        assert_eq!(
            Json::parse(r#""😀""#).unwrap(),
            Json::from("\u{1f600}")
        );
        assert!(Json::parse(r#""\ud83d""#).is_err()); // unpaired
    }

    #[test]
    fn parse_rejects_floats_and_garbage() {
        for bad in [
            "1.5", "1e3", "-0.1", "01", "nul", "truth", "\"unterminated",
            "{\"a\":1,}", "[1,]", "{\"a\" 1}", "1 2", "{\"a\":}", "",
            "\"ctrl\u{0001}\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn get_and_accessors() {
        let v = Json::parse(r#"{"a":1,"b":"x","c":true,"a":2}"#).unwrap();
        // Duplicate keys: last wins through get.
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("a").and_then(Json::as_i64), Some(2));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Json::as_bool), Some(true));
        assert!(v.get("d").is_none());
        assert!(Json::Null.get("a").is_none());
        assert_eq!(Json::Int(-1).as_u64(), None);
        assert_eq!(Json::UInt(u64::MAX).as_i64(), None);
    }
}
