//! Lock-free metric instruments: counters, gauges, and histograms.
//!
//! Instruments are cheap `Clone` handles. A *disabled* handle (the default)
//! carries no allocation and every operation on it is a branch on a `None` —
//! the zero-cost-when-disabled contract of the crate. An *enabled* handle
//! shares an atomic cell registered in a [`Recorder`](crate::Recorder);
//! updates are relaxed atomic operations, safe to hammer from exploration
//! worker threads without locks.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonically increasing event count.
///
/// # Examples
///
/// ```
/// use obs::Recorder;
///
/// let rec = Recorder::enabled();
/// let c = rec.counter("explore.dedup_hits");
/// c.add(3);
/// c.inc();
/// assert_eq!(c.get(), 4);
///
/// // Disabled recorders hand out no-op handles.
/// let off = Recorder::disabled().counter("anything");
/// off.inc();
/// assert_eq!(off.get(), 0);
/// ```
#[derive(Clone, Default, Debug)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// Add `n` to the counter (no-op when disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// The shared cell behind an enabled [`Gauge`].
#[derive(Default, Debug)]
pub struct GaugeCell {
    pub(crate) value: AtomicI64,
    pub(crate) peak: AtomicI64,
}

/// A point-in-time level that also tracks its peak (e.g. the live state-store
/// size of an exploration).
///
/// # Examples
///
/// ```
/// use obs::Recorder;
///
/// let rec = Recorder::enabled();
/// let g = rec.gauge("explore.states");
/// g.set(10);
/// g.set(4);
/// assert_eq!((g.get(), g.peak()), (4, 10));
/// ```
#[derive(Clone, Default, Debug)]
pub struct Gauge(pub(crate) Option<Arc<GaugeCell>>);

impl Gauge {
    /// Set the current level, updating the peak (no-op when disabled).
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.value.store(v, Ordering::Relaxed);
            g.peak.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current level (0 when disabled).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.value.load(Ordering::Relaxed))
    }

    /// Highest level ever set (0 when disabled).
    pub fn peak(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.peak.load(Ordering::Relaxed))
    }
}

/// Number of power-of-two histogram buckets: bucket `i` counts observations
/// `v` with `i` significant bits, i.e. `2^(i-1) <= v < 2^i` (bucket 0 is
/// exactly `v == 0`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The shared cell behind an enabled [`Histogram`].
#[derive(Debug)]
pub struct HistogramCell {
    pub(crate) buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
    pub(crate) max: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> HistogramCell {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A power-of-two-bucketed distribution (chunk sizes, per-worker work, term
/// sizes). Lock-free: one relaxed add per bucket/aggregate.
///
/// # Examples
///
/// ```
/// use obs::Recorder;
///
/// let rec = Recorder::enabled();
/// let h = rec.histogram("explore.worker_chunk");
/// h.observe(0);
/// h.observe(5);
/// h.observe(5);
/// let snap = h.snapshot();
/// assert_eq!((snap.count, snap.sum, snap.max), (3, 10, 5));
/// // 5 has 3 significant bits -> bucket 3 (range 4..8).
/// assert_eq!(snap.buckets, vec![(0, 1), (3, 2)]);
/// ```
#[derive(Clone, Default, Debug)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCell>>);

/// An owned, point-in-time view of a histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// `(bucket index, count)` for every non-empty bucket, ascending.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) from the power-of-two
    /// buckets by **bucket-midpoint estimation**:
    ///
    /// 1. The target rank is the smallest `r` with `r >= ceil(q * count)`,
    ///    clamped to `1 ..= count`.
    /// 2. Walk the buckets in ascending order until the cumulative count
    ///    reaches the rank; the estimate is that bucket's midpoint — `0` for
    ///    bucket 0 (exactly the value 0), `1` for bucket 1, and
    ///    `3 * 2^(i-2)` for bucket `i >= 2` (the midpoint of the covered
    ///    range `2^(i-1) .. 2^i`).
    /// 3. The estimate is clamped to the observed maximum, so a saturated
    ///    top bucket (every observation in the highest non-empty bucket)
    ///    never reports a value larger than anything actually observed.
    ///
    /// The estimate is exact when every observation in the selected bucket
    /// equals its midpoint and is otherwise off by at most a factor of two —
    /// the inherent resolution of power-of-two buckets. Returns `0` for an
    /// empty histogram. Monotone in `q` by construction (a larger `q` never
    /// selects an earlier bucket), which the serving layer's
    /// p50 ≤ p90 ≤ p99 CI assertion relies on.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut cumulative = 0u64;
        for &(bucket, n) in &self.buckets {
            cumulative += n;
            if cumulative >= rank {
                return bucket_midpoint(bucket).min(self.max);
            }
        }
        self.max
    }
}

/// Midpoint of bucket `i`: the representative value quantile estimation
/// reports for an observation that landed there.
fn bucket_midpoint(i: usize) -> u64 {
    match i {
        0 => 0,
        1 => 1,
        // Bucket i covers 2^(i-1) .. 2^i; the midpoint is 3 * 2^(i-2).
        // For i = 64 this is 3 * 2^62, which still fits in a u64.
        _ => 3u64 << (i - 2),
    }
}

impl Histogram {
    /// Record one observation (no-op when disabled).
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(h) = &self.0 {
            let bucket = (u64::BITS - v.leading_zeros()) as usize;
            h.buckets[bucket].fetch_add(1, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
            h.sum.fetch_add(v, Ordering::Relaxed);
            h.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Snapshot the current distribution (empty when disabled).
    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.0 {
            None => HistogramSnapshot::default(),
            Some(h) => HistogramSnapshot {
                count: h.count.load(Ordering::Relaxed),
                sum: h.sum.load(Ordering::Relaxed),
                max: h.max.load(Ordering::Relaxed),
                buckets: h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| {
                        let n = b.load(Ordering::Relaxed);
                        (n > 0).then_some((i, n))
                    })
                    .collect(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_instruments_are_inert() {
        let c = Counter::default();
        c.add(100);
        assert_eq!(c.get(), 0);
        let g = Gauge::default();
        g.set(5);
        assert_eq!((g.get(), g.peak()), (0, 0));
        let h = Histogram::default();
        h.observe(9);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let h = Histogram(Some(Arc::new(HistogramCell::default())));
        for v in [0u64, 1, 2, 3, 4, 7, 8, u64::MAX] {
            h.observe(v);
        }
        let snap = h.snapshot();
        // 0 -> b0; 1 -> b1; 2,3 -> b2; 4,7 -> b3; 8 -> b4; MAX -> b64.
        assert_eq!(
            snap.buckets,
            vec![(0, 1), (1, 1), (2, 2), (3, 2), (4, 1), (64, 1)]
        );
        assert_eq!(snap.count, 8);
        assert_eq!(snap.max, u64::MAX);
    }

    #[test]
    fn quantile_of_an_empty_histogram_is_zero() {
        let snap = HistogramSnapshot::default();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), 0);
        }
    }

    #[test]
    fn quantile_of_a_single_observation_is_clamped_to_it() {
        let h = Histogram(Some(Arc::new(HistogramCell::default())));
        h.observe(5);
        let snap = h.snapshot();
        // 5 lands in bucket 3 (range 4..8, midpoint 6); the estimate is
        // clamped to the observed max, so every quantile reports 5 exactly.
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), 5, "q={q}");
        }
    }

    #[test]
    fn quantile_handles_the_saturated_top_bucket() {
        // Every observation in the highest bucket (64, values >= 2^63):
        // the midpoint 3 * 2^62 must not overflow, and must stay <= max.
        let h = Histogram(Some(Arc::new(HistogramCell::default())));
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        h.observe(1u64 << 63);
        let snap = h.snapshot();
        let mid = 3u64 << 62;
        for q in [0.5, 0.9, 0.99] {
            let est = snap.quantile(q);
            assert_eq!(est, mid, "q={q}");
            assert!(est <= snap.max);
        }
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let h = Histogram(Some(Arc::new(HistogramCell::default())));
        for v in [0u64, 1, 3, 9, 17, 300, 5_000, 70_000] {
            h.observe(v);
        }
        let snap = h.snapshot();
        let (p50, p90, p99) = (
            snap.quantile(0.5),
            snap.quantile(0.9),
            snap.quantile(0.99),
        );
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        // A mid-distribution estimate is within the selected bucket's range.
        assert!(p50 >= 8 && p50 <= 32, "{p50}");
    }

    #[test]
    fn counters_are_shared_across_clones() {
        let c = Counter(Some(Arc::new(AtomicU64::new(0))));
        let c2 = c.clone();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c2.get(), 4000);
    }
}
